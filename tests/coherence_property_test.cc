/**
 * @file
 * Randomized property tests: every protocol, driven by a random
 * multiprocessor reference stream over a small, conflict-heavy
 * address space, must satisfy
 *
 *   P1. every read returns the value of the most recent write to that
 *       address (accesses here are serialized, so this is exact);
 *   P2. all valid cached copies of an address agree;
 *   P3. after flushing every cache, memory equals the write history;
 *   P4. (Firefly) a Dirty line is exclusive, and every clean cached
 *       copy equals main memory - the invariants Section 5.1's
 *       argument relies on.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "sim/random.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

struct StressParams
{
    ProtocolKind kind;
    unsigned caches;
    Addr lineBytes;
    unsigned addresses;  ///< size of the shared hot region in words
};

std::string
paramName(const ::testing::TestParamInfo<StressParams> &info)
{
    const auto &p = info.param;
    return std::string(toString(p.kind)) + "_c" +
           std::to_string(p.caches) + "_l" +
           std::to_string(p.lineBytes) + "_a" +
           std::to_string(p.addresses);
}

} // namespace

class CoherenceStress : public ::testing::TestWithParam<StressParams>
{
};

TEST_P(CoherenceStress, RandomTrafficMatchesOracle)
{
    const auto &p = GetParam();
    // Tiny cache (64 lines) to force constant conflict evictions.
    TestRig rig(p.kind, p.caches, {64 * p.lineBytes, p.lineBytes});
    Rng rng(0xc0ffee + p.caches + p.lineBytes + p.addresses);

    std::map<Addr, Word> oracle;
    const Addr base = 0x8000;
    Word next_value = 1;

    for (int step = 0; step < 4000; ++step) {
        const unsigned who = rng.below(p.caches);
        const Addr addr =
            base + 4 * static_cast<Addr>(rng.below(p.addresses));

        if (rng.chance(0.4)) {
            const Word value = next_value++;
            rig.write(who, addr, value);
            oracle[addr] = value;
        } else {
            const Word got = rig.read(who, addr);
            const auto it = oracle.find(addr);
            const Word expect = it == oracle.end() ? 0 : it->second;
            ASSERT_EQ(got, expect)
                << "P1 violated at step " << step << " addr 0x"
                << std::hex << addr;
        }

        if (step % 64 == 0) {
            // P2: copies agree.
            for (const auto &[a, v] : oracle) {
                bool have = false;
                Word seen = 0;
                for (auto &cache : rig.caches) {
                    if (!cache->holds(a))
                        continue;
                    const auto &line = cache->lineAt(a);
                    const Word w = line.data[(a - line.base) / 4];
                    if (!have) {
                        seen = w;
                        have = true;
                    } else {
                        ASSERT_EQ(w, seen) << "P2 violated at 0x"
                                           << std::hex << a;
                    }
                }
            }
        }
    }

    // P3: flush everything; memory must equal the oracle.
    for (auto &cache : rig.caches)
        cache->flushFunctional();
    for (const auto &[a, v] : oracle)
        ASSERT_EQ(rig.memory.read(a), v) << "P3 violated";
}

TEST_P(CoherenceStress, DeterministicGivenSeed)
{
    const auto &p = GetParam();
    auto run = [&](std::uint64_t seed) {
        TestRig rig(p.kind, p.caches, {64 * p.lineBytes, p.lineBytes});
        Rng rng(seed);
        for (int step = 0; step < 500; ++step) {
            const unsigned who = rng.below(p.caches);
            const Addr addr = 0x8000 + 4 * (rng.below(p.addresses));
            if (rng.chance(0.5))
                rig.write(who, addr, step);
            else
                rig.read(who, addr);
        }
        return std::tuple{rig.sim.now(),
                          rig.bus->stats().get("busy_cycles"),
                          rig.caches[0]->fills.value()};
    };
    EXPECT_EQ(run(123), run(123));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceStress,
    ::testing::Values(
        StressParams{ProtocolKind::Firefly, 2, 4, 32},
        StressParams{ProtocolKind::Firefly, 4, 4, 96},
        StressParams{ProtocolKind::Firefly, 7, 4, 200},
        StressParams{ProtocolKind::Firefly, 4, 16, 96},
        StressParams{ProtocolKind::Dragon, 2, 4, 32},
        StressParams{ProtocolKind::Dragon, 4, 4, 96},
        StressParams{ProtocolKind::Dragon, 4, 16, 96},
        StressParams{ProtocolKind::WriteThroughInvalidate, 4, 4, 96},
        StressParams{ProtocolKind::Berkeley, 2, 4, 32},
        StressParams{ProtocolKind::Berkeley, 4, 4, 96},
        StressParams{ProtocolKind::Berkeley, 4, 16, 96},
        StressParams{ProtocolKind::Mesi, 4, 4, 96},
        StressParams{ProtocolKind::Mesi, 7, 16, 200}),
    paramName);

// ---------------------------------------------------------------------------
// Firefly-specific invariants (P4) under random traffic.
// ---------------------------------------------------------------------------

TEST(FireflyInvariants, DirtyImpliesExclusiveAndCleanMatchesMemory)
{
    TestRig rig(ProtocolKind::Firefly, 4, {256, 4});
    Rng rng(77);
    const Addr base = 0x8000;

    for (int step = 0; step < 3000; ++step) {
        const unsigned who = rng.below(4u);
        const Addr addr = base + 4 * (rng.below(48u));
        if (rng.chance(0.45))
            rig.write(who, addr, step);
        else
            rig.read(who, addr);

        if (step % 32 != 0)
            continue;
        for (Addr a = base; a < base + 4 * 48; a += 4) {
            unsigned holders = 0;
            unsigned dirty_holders = 0;
            for (auto &cache : rig.caches) {
                if (!cache->holds(a))
                    continue;
                ++holders;
                const auto &line = cache->lineAt(a);
                if (line.state == LineState::Dirty) {
                    ++dirty_holders;
                } else {
                    // Clean copy must equal main memory.
                    ASSERT_EQ(line.data[0], rig.memory.read(a))
                        << "clean copy differs from memory at 0x"
                        << std::hex << a;
                }
            }
            if (dirty_holders > 0) {
                ASSERT_EQ(holders, 1u)
                    << "dirty line not exclusive at 0x" << std::hex << a;
            }
        }
    }
}

TEST(FireflyInvariants, SharedTagIsConservative)
{
    // The paper: "Shared indicates that some other cache *may* also
    // contain the line."  The converse must hold strictly: if a line
    // is NOT marked Shared, no other cache may hold it (otherwise a
    // silent write would break coherence).
    TestRig rig(ProtocolKind::Firefly, 3, {256, 4});
    Rng rng(99);
    const Addr base = 0x8000;

    for (int step = 0; step < 2000; ++step) {
        const unsigned who = rng.below(3u);
        const Addr addr = base + 4 * (rng.below(32u));
        if (rng.chance(0.45))
            rig.write(who, addr, step);
        else
            rig.read(who, addr);

        if (step % 16 != 0)
            continue;
        for (Addr a = base; a < base + 4 * 32; a += 4) {
            for (unsigned i = 0; i < rig.caches.size(); ++i) {
                if (!rig.caches[i]->holds(a))
                    continue;
                const auto state = rig.caches[i]->lineAt(a).state;
                if (state != LineState::Valid &&
                    state != LineState::Dirty)
                    continue;
                for (unsigned j = 0; j < rig.caches.size(); ++j) {
                    if (j != i) {
                        ASSERT_FALSE(rig.caches[j]->holds(a))
                            << "unshared-tagged line held elsewhere";
                    }
                }
            }
        }
    }
}

TEST(FireflyInvariants, RandomDmaTrafficStaysCoherent)
{
    // Mix DMA through cache 0 (the I/O processor) with CPU traffic
    // on the other caches, Firefly protocol.
    TestRig rig(ProtocolKind::Firefly, 3, {256, 4});
    Rng rng(555);
    std::map<Addr, Word> oracle;
    const Addr base = 0x8000;
    Word next_value = 1;

    auto dma = [&](bool write, Addr addr, Word value) -> Word {
        bool done = false;
        Word got = 0;
        rig.caches[0]->dmaAccess(
            {addr, write ? RefType::DataWrite : RefType::DataRead,
             value},
            [&](Word w) { done = true; got = w; });
        while (!done)
            rig.sim.run(1);
        return got;
    };

    for (int step = 0; step < 3000; ++step) {
        const Addr addr = base + 4 * (rng.below(32u));
        const int action = rng.below(4);
        if (action == 0) {
            const Word v = next_value++;
            dma(true, addr, v);
            oracle[addr] = v;
        } else if (action == 1) {
            const Word got = dma(false, addr, 0);
            const auto it = oracle.find(addr);
            ASSERT_EQ(got, it == oracle.end() ? 0 : it->second)
                << "DMA read incoherent at step " << step;
        } else if (action == 2) {
            const Word v = next_value++;
            rig.write(1 + rng.below(2u), addr, v);
            oracle[addr] = v;
        } else {
            const unsigned who = 1 + rng.below(2u);
            const Word got = rig.read(who, addr);
            const auto it = oracle.find(addr);
            ASSERT_EQ(got, it == oracle.end() ? 0 : it->second)
                << "CPU read incoherent at step " << step;
        }
    }
    for (auto &cache : rig.caches)
        cache->flushFunctional();
    for (const auto &[a, v] : oracle)
        ASSERT_EQ(rig.memory.read(a), v);
}
