/**
 * @file
 * Tests for the parallel sweep harness (src/harness/) and the
 * thread-cleanliness it relies on: the worker pool, runSweep's
 * ordering and exception contract, per-point seed derivation, the
 * thread_local observability context, and the headline guarantee -
 * a sweep's results are byte-identical however many workers ran it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzz.hh"
#include "firefly/system.hh"
#include "harness/sweep.hh"
#include "harness/worker_pool.hh"
#include "obs/text_trace.hh"
#include "obs/trace.hh"

using namespace firefly;

namespace
{

TEST(WorkerPool, RunsEverySubmittedJob)
{
    harness::WorkerPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPool, WaitIsReusable)
{
    harness::WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int round = 1; round <= 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&ran] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), 10 * round);
    }
}

TEST(WorkerPool, DestructionDrainsTheQueue)
{
    std::atomic<int> ran{0};
    {
        harness::WorkerPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                ++ran;
            });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(WorkerPool, JobsRunOffTheCallingThread)
{
    harness::WorkerPool pool(1);
    std::thread::id worker_id;
    pool.submit([&worker_id] { worker_id = std::this_thread::get_id(); });
    pool.wait();
    EXPECT_NE(worker_id, std::this_thread::get_id());
}

TEST(RunSweep, ResultsInInputOrder)
{
    // Later points finish first (decreasing sleep), so any
    // completion-order bug would scramble the result vector.
    std::vector<int> configs;
    for (int i = 0; i < 16; ++i)
        configs.push_back(i);
    const auto results = harness::runSweep(
        configs,
        [](int c) {
            std::this_thread::sleep_for(
                std::chrono::microseconds((16 - c) * 200));
            return c * 10;
        },
        8);
    ASSERT_EQ(results.size(), configs.size());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(results[i], i * 10);
}

TEST(RunSweep, SerialWhenJobsIsOne)
{
    // jobs <= 1 must run on the calling thread, in input order - the
    // byte-identical-to-the-old-loop guarantee.
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<int> order;
    const auto results = harness::runSweep(
        std::vector<int>{1, 2, 3},
        [&](int c) {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(c);
            return c;
        },
        1);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(results, (std::vector<int>{1, 2, 3}));
}

TEST(RunSweep, MoreJobsThanConfigs)
{
    const auto results = harness::runSweep(
        std::vector<int>{7, 8}, [](int c) { return c + 1; }, 64);
    EXPECT_EQ(results, (std::vector<int>{8, 9}));
}

TEST(RunSweep, EmptySweep)
{
    const auto results = harness::runSweep(
        std::vector<int>{}, [](int c) { return c; }, 4);
    EXPECT_TRUE(results.empty());
}

TEST(RunSweep, CallbackMayTakeTheIndex)
{
    const auto results = harness::runSweep(
        std::vector<int>{5, 6, 7},
        [](int c, std::size_t i) {
            return c * 100 + static_cast<int>(i);
        },
        2);
    EXPECT_EQ(results, (std::vector<int>{500, 601, 702}));
}

TEST(RunSweep, ExceptionPropagatesToCaller)
{
    EXPECT_THROW(
        harness::runSweep(
            std::vector<int>{0, 1, 2, 3},
            [](int c) -> int {
                if (c == 2)
                    throw std::runtime_error("point 2 failed");
                return c;
            },
            4),
        std::runtime_error);
}

TEST(RunSweep, LowestIndexExceptionWinsRegardlessOfTiming)
{
    // Point 3 fails immediately, point 1 fails late: the rethrown
    // error must still be point 1's (serial order, not wall-clock).
    try {
        harness::runSweep(
            std::vector<int>{0, 1, 2, 3},
            [](int c) -> int {
                if (c == 1) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    throw std::runtime_error("late failure at 1");
                }
                if (c == 3)
                    throw std::runtime_error("early failure at 3");
                return c;
            },
            4);
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "late failure at 1");
    }
}

TEST(PointSeed, DeterministicAndSaltSensitive)
{
    const auto s = harness::pointSeed(42, 3, 7);
    EXPECT_EQ(s, harness::pointSeed(42, 3, 7));
    std::set<std::uint64_t> seeds{
        harness::pointSeed(42, 3, 7), harness::pointSeed(42, 7, 3),
        harness::pointSeed(42, 3, 8), harness::pointSeed(43, 3, 7),
        harness::pointSeed(42, 3),    harness::pointSeed(42),
    };
    EXPECT_EQ(seeds.size(), 6u) << "salt collisions";
    EXPECT_EQ(harness::pointSeed(42), 42u);
}

TEST(ObsContext, WorkersStartWithNoSink)
{
    // The sink context is thread_local: attaching on the test thread
    // must leave harness workers unobserved (the zero-cost path).
    std::ostringstream os;
    obs::TextTraceSink sink(os);
    obs::ScopedTraceSink scoped(&sink);
    ASSERT_EQ(obs::traceSink(), &sink);

    obs::TraceSink *seen_by_worker = &sink;
    harness::WorkerPool pool(1);
    pool.submit([&seen_by_worker] { seen_by_worker = obs::traceSink(); });
    pool.wait();
    EXPECT_EQ(seen_by_worker, nullptr);
}

TEST(ObsContext, PerThreadSinksAndTimestampsAreIsolated)
{
    // Two threads attach different sinks and publish different
    // timestamps; neither may observe the other's context.
    std::ostringstream os_a, os_b;
    obs::TextTraceSink sink_a(os_a), sink_b(os_b);
    std::atomic<bool> ok_a{false}, ok_b{false};
    std::thread a([&] {
        obs::ScopedTraceSink scoped(&sink_a);
        obs::publishTraceNow(111);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ok_a = obs::traceSink() == &sink_a && obs::traceNow() == 111;
    });
    std::thread b([&] {
        obs::ScopedTraceSink scoped(&sink_b);
        obs::publishTraceNow(222);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ok_b = obs::traceSink() == &sink_b && obs::traceNow() == 222;
    });
    a.join();
    b.join();
    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_b);
    EXPECT_EQ(obs::traceSink(), nullptr);
}

/** Build, run, and serialize one small simulation per point. */
std::string
simulatePoint(unsigned cpus)
{
    auto cfg = FireflyConfig::microVax(cpus);
    FireflySystem sys(cfg);
    SyntheticConfig workload;
    workload.seed = harness::pointSeed(1234, cpus);
    sys.attachSyntheticWorkload(workload);
    sys.run(0.002);
    std::ostringstream os;
    sys.stats().dumpJson(os);
    return os.str();
}

TEST(SweepDeterminism, StatsIdenticalAcrossJobCounts)
{
    // The acceptance contract: same sweep, same seeds => the full
    // stat tree of every point is byte-identical at --jobs 1 and
    // --jobs 4, whatever order the workers ran them in.
    const std::vector<unsigned> cpus = {1, 2, 3, 4, 5, 6};
    const auto serial = harness::runSweep(
        cpus, [](unsigned np) { return simulatePoint(np); }, 1);
    const auto parallel = harness::runSweep(
        cpus, [](unsigned np) { return simulatePoint(np); }, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
    // And the points really differ from one another (the seeds and
    // configs are per-point, not copies of one machine).
    EXPECT_NE(serial[0], serial[1]);
}

TEST(SweepDeterminism, RepeatedParallelRunsAgree)
{
    const std::vector<unsigned> cpus = {2, 4};
    const auto first = harness::runSweep(
        cpus, [](unsigned np) { return simulatePoint(np); }, 2);
    const auto second = harness::runSweep(
        cpus, [](unsigned np) { return simulatePoint(np); }, 2);
    EXPECT_EQ(first, second);
}

/** One full machine, serialized, with fast-forward on or forced off.
 *  The workload halts after a burst so the run has a long idle tail -
 *  the span the fast path actually skips. */
std::string
runSystemStats(bool fast_forward)
{
    auto cfg = FireflyConfig::microVax(4);
    FireflySystem sys(cfg);
    SyntheticConfig workload;
    workload.seed = 0xF00D;
    workload.instructionLimit = 400;
    sys.attachSyntheticWorkload(workload);
    sys.simulator().setFastForward(fast_forward);
    sys.run(0.003);
    std::ostringstream os;
    sys.stats().dumpJson(os);
    return os.str();
}

TEST(FastForwardDeterminism, FullSystemStatsByteIdentical)
{
    // The tentpole invariant: skipping idle cycles changes nothing
    // observable.  Every counter, histogram bucket, and formula in
    // the full system stat tree is byte-identical either way.
    EXPECT_EQ(runSystemStats(true), runSystemStats(false));
}

TEST(FastForwardDeterminism, FuzzCorpusWithFaultsAgrees)
{
    // The fuzz machine (own Simulator, DMA events, fault injection,
    // throwing watchdog) must behave identically with the fast path
    // forced off via the environment switch the perf lane uses.
    check::FuzzConfig cfg;
    cfg.seed = 0xFA57;
    cfg.steps = 1200;
    cfg.recordLoads = true;
    cfg.faults.enabled = true;
    cfg.faults.rates.busParity = 0.01;
    cfg.faults.rates.eccSingle = 0.01;
    cfg.faults.rates.deviceTimeout = 0.005;

    const auto fast = check::runFuzz(cfg);
    ::setenv("FIREFLY_NO_FASTFORWARD", "1", 1);
    const auto slow = check::runFuzz(cfg);
    ::unsetenv("FIREFLY_NO_FASTFORWARD");

    EXPECT_EQ(fast.loadLog, slow.loadLog);
    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.loads, slow.loads);
    EXPECT_EQ(fast.stores, slow.stores);
    EXPECT_EQ(fast.dmaReads, slow.dmaReads);
    EXPECT_EQ(fast.dmaWrites, slow.dmaWrites);
    EXPECT_EQ(fast.parityErrors, slow.parityErrors);
    EXPECT_EQ(fast.parityRecovered, slow.parityRecovered);
    EXPECT_EQ(fast.eccCorrected, slow.eccCorrected);
    EXPECT_EQ(fast.deviceTimeouts, slow.deviceTimeouts);
}

} // namespace
