/**
 * @file
 * Directed DMA-vs-CPU coherence tests, all run under the coherence
 * checker: a DmaEngine write landing on a line cached by several
 * CPUs must be observed by every cache AND by the oracle, and
 * partial DMA writes must never destroy dirty words a cache owns
 * (the data-loss bugs the checker flushed out of the MESI/Berkeley
 * snoop paths and the I/O cache's own DMA-write completion).
 */

#include <gtest/gtest.h>

#include <vector>

#include "io/dma_engine.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::CheckedRig;

namespace
{

constexpr Addr kX = 0x1000;

/** CheckedRig plus a DmaEngine through cache 0 (the I/O position). */
struct DmaRig : CheckedRig
{
    DmaEngine dma;

    explicit DmaRig(ProtocolKind kind, unsigned ncaches = 3,
                    Cache::Geometry geom = {})
        : CheckedRig(kind, ncaches, geom),
          dma(sim, *caches[0], 16 * 1024 * 1024)
    {
    }

    void
    dmaWrite(Addr addr, std::vector<Word> data)
    {
        bool done = false;
        dma.writeWords(addr, std::move(data), [&](IoStatus) { done = true; });
        while (!done)
            sim.run(1);
    }

    std::vector<Word>
    dmaRead(Addr addr, unsigned count)
    {
        bool done = false;
        std::vector<Word> out;
        dma.readWords(addr, count, [&](IoStatus, std::vector<Word> v) {
            done = true;
            out = std::move(v);
        });
        while (!done)
            sim.run(1);
        return out;
    }
};

} // namespace

/**
 * Satellite: the DmaEngine writes a line cached Shared by two CPUs;
 * both caches and the oracle must observe the update.
 */
class DmaSharedLine : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(DmaSharedLine, EngineWriteReachesEverySharerAndTheOracle)
{
    DmaRig rig(GetParam());
    rig.memory.write(kX, 5);
    EXPECT_EQ(rig.read(1, kX), 5u);
    EXPECT_EQ(rig.read(2, kX), 5u);

    rig.dmaWrite(kX, {0xAB});

    // The oracle serialized the DMA write at its bus commit.
    EXPECT_TRUE(rig.checker->oracle().tracked(kX));
    EXPECT_EQ(rig.checker->oracle().current(kX), 0xABu);
    EXPECT_EQ(rig.memory.read(kX), 0xABu);

    // Update protocols refresh the cached copies in place; the
    // invalidation family drops them instead.
    const ProtocolKind kind = GetParam();
    if (kind == ProtocolKind::Firefly || kind == ProtocolKind::Dragon) {
        EXPECT_NE(rig.state(1, kX), LineState::Invalid);
        EXPECT_NE(rig.state(2, kX), LineState::Invalid);
        EXPECT_EQ(rig.caches[1]->lineAt(kX).data[0], 0xABu);
        EXPECT_EQ(rig.caches[2]->lineAt(kX).data[0], 0xABu);
    } else {
        EXPECT_EQ(rig.state(1, kX), LineState::Invalid);
        EXPECT_EQ(rig.state(2, kX), LineState::Invalid);
    }

    // Either way, both CPUs observe the new value (every load below
    // is validated against the oracle).
    EXPECT_EQ(rig.read(1, kX), 0xABu);
    EXPECT_EQ(rig.read(2, kX), 0xABu);
    rig.checker->finalCheck();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DmaSharedLine,
    ::testing::Values(ProtocolKind::Firefly, ProtocolKind::Dragon,
                      ProtocolKind::WriteThroughInvalidate,
                      ProtocolKind::Berkeley, ProtocolKind::Mesi),
    [](const ::testing::TestParamInfo<ProtocolKind> &info) {
        return std::string(toString(info.param));
    });

/**
 * Regression: a 1-word DMA write into an 8-byte line another cache
 * holds Modified used to invalidate the whole line under MESI,
 * orphaning the dirty word the DMA did not touch.  The snoop must
 * merge instead and keep ownership.
 */
TEST(DmaPartialWrite, MesiDirtyLineMergesInsteadOfLosingData)
{
    DmaRig rig(ProtocolKind::Mesi, 3, {256, 8});
    rig.read(1, kX);
    rig.write(1, kX + 4, 0x11);  // silent E -> M
    ASSERT_EQ(rig.state(1, kX), LineState::Dirty);

    rig.dmaWrite(kX, {0x22});

    EXPECT_EQ(rig.state(1, kX), LineState::Dirty);  // still the owner
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[0], 0x22u);
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[1], 0x11u);
    EXPECT_EQ(rig.read(1, kX), 0x22u);
    EXPECT_EQ(rig.read(1, kX + 4), 0x11u);

    // Evict; the write-back must land both words in memory.
    rig.read(1, kX + 256);
    EXPECT_EQ(rig.memory.read(kX), 0x22u);
    EXPECT_EQ(rig.memory.read(kX + 4), 0x11u);
    rig.checker->finalCheck();
}

/** Same data-loss hazard in Berkeley's owning states. */
TEST(DmaPartialWrite, BerkeleySharedDirtyLineMergesInsteadOfLosingData)
{
    DmaRig rig(ProtocolKind::Berkeley, 3, {256, 8});
    rig.write(1, kX + 4, 0x11);  // ReadOwned -> Dirty
    rig.read(2, kX);             // owner supplies -> SharedDirty
    ASSERT_EQ(rig.state(1, kX), LineState::SharedDirty);

    rig.dmaWrite(kX, {0x22});

    // The owner merged and kept write-back responsibility.
    ASSERT_TRUE(needsWriteback(rig.state(1, kX)));
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[0], 0x22u);
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[1], 0x11u);
    EXPECT_EQ(rig.read(1, kX), 0x22u);
    EXPECT_EQ(rig.read(1, kX + 4), 0x11u);

    rig.read(1, kX + 256);  // evict: write-back carries both words
    EXPECT_EQ(rig.memory.read(kX), 0x22u);
    EXPECT_EQ(rig.memory.read(kX + 4), 0x11u);
    rig.checker->finalCheck();
}

/**
 * Regression: the I/O cache itself holding the line in an owning
 * state.  A partial DMA write through it must merge into the dirty
 * line, not launder it to clean and drop the unwritten dirty word.
 */
TEST(DmaPartialWrite, IoCacheOwnedLineKeepsDirtyWords)
{
    DmaRig rig(ProtocolKind::Berkeley, 3, {256, 8});
    rig.write(0, kX + 4, 0x11);  // the I/O cache owns the line
    rig.read(1, kX);             // ... as SharedDirty
    ASSERT_EQ(rig.state(0, kX), LineState::SharedDirty);

    rig.dmaWrite(kX, {0x22});

    ASSERT_TRUE(needsWriteback(rig.state(0, kX)));
    EXPECT_EQ(rig.caches[0]->lineAt(kX).data[0], 0x22u);
    EXPECT_EQ(rig.caches[0]->lineAt(kX).data[1], 0x11u);
    EXPECT_EQ(rig.read(0, kX + 4), 0x11u);
    rig.checker->finalCheck();
}

/**
 * Regression: the I/O cache used to adopt afterWriteThrough() after a
 * DMA write it carried - under Dragon that is SharedDirty (update
 * semantics: the writer becomes owner, memory stays stale), but a DMA
 * write DOES update memory, so the I/O cache minted a second owner
 * next to the snooping one (the fuzzer's I2 "multiple owners").  The
 * completing cache must take the clean fill state instead.
 */
TEST(DmaPartialWrite, DragonIoCacheDoesNotMintSecondOwner)
{
    DmaRig rig(ProtocolKind::Dragon);
    rig.write(1, kX, 0x9);  // fill exclusive, silent write -> Dirty
    rig.read(0, kX);        // owner supplies; I/O cache shares
    ASSERT_EQ(rig.state(1, kX), LineState::SharedDirty);
    ASSERT_EQ(rig.state(0, kX), LineState::Shared);

    rig.dmaWrite(kX, {0x32});

    // Full-line DMA write: memory holds everything, nobody owes a
    // write-back, and in particular the I/O cache is NOT an owner.
    EXPECT_EQ(rig.state(0, kX), LineState::Shared);
    EXPECT_EQ(rig.state(1, kX), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kX), 0x32u);
    EXPECT_EQ(rig.read(0, kX), 0x32u);
    EXPECT_EQ(rig.read(1, kX), 0x32u);
    rig.checker->finalCheck();
}

/**
 * Partial variant: the snooping owner keeps write-back duty for the
 * word the DMA missed, but the I/O cache's copy still ends clean -
 * exactly one owner either way.
 */
TEST(DmaPartialWrite, DragonPartialWriteLeavesExactlyOneOwner)
{
    DmaRig rig(ProtocolKind::Dragon, 3, {256, 8});
    rig.write(1, kX + 4, 0x11);  // Dirty, word 1 modified
    rig.read(0, kX);             // owner -> SharedDirty, I/O -> Shared
    ASSERT_EQ(rig.state(1, kX), LineState::SharedDirty);

    rig.dmaWrite(kX, {0x22});  // covers word 0 only

    EXPECT_EQ(rig.state(1, kX), LineState::SharedDirty);
    EXPECT_FALSE(needsWriteback(rig.state(0, kX)));
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[0], 0x22u);
    EXPECT_EQ(rig.caches[1]->lineAt(kX).data[1], 0x11u);

    rig.read(1, kX + 256);  // evict: the owner still carries word 1
    EXPECT_EQ(rig.memory.read(kX), 0x22u);
    EXPECT_EQ(rig.memory.read(kX + 4), 0x11u);
    rig.checker->finalCheck();
}

/** DMA reads see dirty data, validated against the oracle. */
TEST(DmaRead, SeesCpuDirtyDataEverywhere)
{
    for (const ProtocolKind kind :
         {ProtocolKind::Firefly, ProtocolKind::Dragon,
          ProtocolKind::Berkeley, ProtocolKind::Mesi}) {
        DmaRig rig(kind);
        rig.read(1, kX);
        rig.write(1, kX, 0x77);
        const auto values = rig.dmaRead(kX, 1);
        ASSERT_EQ(values.size(), 1u);
        EXPECT_EQ(values[0], 0x77u) << toString(kind);
        rig.checker->finalCheck();
    }
}

/**
 * Regression: a one-word DMA read from a two-word Modified line used
 * to demote the owner to clean-shared even though the bus captured
 * only the requested word - the other dirty word was orphaned with
 * nobody owing the write-back (the fuzzer's I5 "no owner yet memory
 * differs from the oracle").  A DMA read installs no copy, so the
 * owner must keep the line.
 */
TEST(DmaRead, PartialReadDoesNotLaunderDirtyOwnership)
{
    for (const ProtocolKind kind :
         {ProtocolKind::Firefly, ProtocolKind::Dragon,
          ProtocolKind::Berkeley, ProtocolKind::Mesi}) {
        DmaRig rig(kind, 3, {256, 8});
        rig.write(1, kX, 0xAA);
        rig.write(1, kX + 4, 0xBB);
        ASSERT_TRUE(needsWriteback(rig.state(1, kX))) << toString(kind);

        const auto values = rig.dmaRead(kX + 4, 1);
        ASSERT_EQ(values.size(), 1u);
        EXPECT_EQ(values[0], 0xBBu) << toString(kind);

        // The owner still holds the line dirty...
        EXPECT_TRUE(needsWriteback(rig.state(1, kX))) << toString(kind);
        // ... so an eviction write-back carries BOTH words.
        rig.read(1, kX + 256);
        EXPECT_EQ(rig.memory.read(kX), 0xAAu) << toString(kind);
        EXPECT_EQ(rig.memory.read(kX + 4), 0xBBu) << toString(kind);
        rig.checker->finalCheck();
    }
}

/** A multi-word engine burst across lines CPUs are actively sharing. */
TEST(DmaBurst, WritesAcrossSharedLinesStayCoherent)
{
    DmaRig rig(ProtocolKind::Firefly);
    for (unsigned w = 0; w < 4; ++w) {
        rig.read(1, kX + w * bytesPerWord);
        rig.read(2, kX + w * bytesPerWord);
    }
    rig.dmaWrite(kX, {1, 2, 3, 4});
    for (unsigned w = 0; w < 4; ++w) {
        EXPECT_EQ(rig.read(1, kX + w * bytesPerWord), w + 1);
        EXPECT_EQ(rig.read(2, kX + w * bytesPerWord), w + 1);
    }
    rig.checker->finalCheck();
}
