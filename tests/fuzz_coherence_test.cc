/**
 * @file
 * Randomized coherence fuzzing (src/check/fuzz.hh): many seeds, all
 * five protocols, several machine shapes, with the checker throwing
 * on any violation; plus the differential cross-protocol test (same
 * seed, identical load values everywhere) and the "teeth" tests
 * proving a broken protocol is actually caught.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "broken_protocols.hh"
#include "check/fuzz.hh"
#include "harness/sweep.hh"

using namespace firefly;
using check::CoherenceViolation;
using check::FuzzConfig;
using check::FuzzResult;
using check::runFuzz;

namespace
{

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::Firefly,
    ProtocolKind::Dragon,
    ProtocolKind::WriteThroughInvalidate,
    ProtocolKind::Berkeley,
    ProtocolKind::Mesi,
};

constexpr std::uint64_t kBaseSeed = 0xF1EF7Ca5e;

} // namespace

/**
 * The acceptance bar: >= 50 random seeds across all five protocols,
 * zero violations.  12 seeds x 5 protocols = 60 runs; any violation
 * throws out of runSweep with the seed's full diagnostic.
 */
TEST(CoherenceFuzz, SixtySeedsAcrossAllProtocolsStayClean)
{
    std::vector<FuzzConfig> configs;
    for (unsigned p = 0; p < std::size(kAllProtocols); ++p) {
        for (unsigned s = 0; s < 12; ++s) {
            FuzzConfig cfg;
            cfg.protocol = kAllProtocols[p];
            cfg.seed = harness::pointSeed(kBaseSeed, p, s);
            cfg.steps = 1500;
            configs.push_back(cfg);
        }
    }
    const auto results = harness::runSweep(
        configs, [](const FuzzConfig &cfg) { return runFuzz(cfg); }, 4);
    ASSERT_EQ(results.size(), 60u);
    for (const FuzzResult &r : results) {
        EXPECT_GT(r.loadsChecked, 0u);
        EXPECT_GT(r.writesTracked, 0u);
        EXPECT_GT(r.cycles, 0u);
    }
}

/** Three machine shapes x five protocols, exercised in parallel. */
TEST(CoherenceFuzz, ConfigMatrixStaysClean)
{
    std::vector<FuzzConfig> configs;
    for (unsigned p = 0; p < std::size(kAllProtocols); ++p) {
        for (unsigned shape = 0; shape < 3; ++shape) {
            FuzzConfig cfg;
            cfg.protocol = kAllProtocols[p];
            cfg.seed = harness::pointSeed(kBaseSeed, 100 + p, shape);
            cfg.steps = 1200;
            switch (shape) {
              case 0:
                // Default: 4-byte lines, moderate DMA.
                break;
              case 1:
                // Multi-word lines + DMA bursts: partial-line snoop
                // merges and victim refreshes get exercised.
                cfg.lineBytes = 8;
                cfg.dmaFrac = 0.2;
                cfg.dmaBurstMax = 4;
                break;
              case 2:
                // Contention: more caches, tiny capacity, heavy
                // sharing and migration.
                cfg.nCaches = 4;
                cfg.cacheBytes = 128;
                cfg.sharedFrac = 0.85;
                cfg.migrateFrac = 0.3;
                break;
            }
            configs.push_back(cfg);
        }
    }
    const auto results = harness::runSweep(
        configs, [](const FuzzConfig &cfg) { return runFuzz(cfg); }, 4);
    for (const FuzzResult &r : results)
        EXPECT_GT(r.loadsChecked, 0u);
}

/**
 * Differential mode: the reference stream is a pure function of the
 * seed, so every protocol must return the same value for every load
 * (CPU and DMA) - coherence protocols differ in cost, never in
 * answers.
 */
TEST(CoherenceFuzz, AllProtocolsYieldIdenticalLoadValues)
{
    for (unsigned s = 0; s < 3; ++s) {
        FuzzConfig base;
        base.seed = harness::pointSeed(kBaseSeed, 200, s);
        base.steps = 1200;
        base.recordLoads = true;
        std::vector<Word> reference;
        for (const ProtocolKind kind : kAllProtocols) {
            FuzzConfig cfg = base;
            cfg.protocol = kind;
            const FuzzResult r = runFuzz(cfg);
            ASSERT_FALSE(r.loadLog.empty());
            if (reference.empty()) {
                reference = r.loadLog;
            } else {
                EXPECT_EQ(r.loadLog, reference)
                    << toString(kind) << " diverged at seed " << s;
            }
        }
    }
}

/**
 * Teeth: a protocol that skips the MShared update (installs every
 * fill exclusive) must be caught, with a line-level diagnostic.
 */
TEST(CoherenceFuzz, SkippedMSharedUpdateIsCaught)
{
    FuzzConfig cfg;
    cfg.protocol = ProtocolKind::Firefly;
    cfg.seed = harness::pointSeed(kBaseSeed, 300);
    cfg.steps = 500;
    cfg.protocolFactory = [] {
        return std::make_unique<test::IgnoreMSharedProtocol>(
            makeProtocol(ProtocolKind::Firefly));
    };
    try {
        runFuzz(cfg);
        FAIL() << "broken protocol survived the fuzzer";
    } catch (const CoherenceViolation &v) {
        const std::string what = v.what();
        EXPECT_NE(what.find("coherence violation"), std::string::npos)
            << what;
        EXPECT_NE(what.find("line 0x"), std::string::npos) << what;
    }
}

/** Teeth: a cache deaf to snooped writes must be caught too. */
TEST(CoherenceFuzz, LostSnoopedWritesAreCaught)
{
    FuzzConfig cfg;
    cfg.protocol = ProtocolKind::Firefly;
    cfg.seed = harness::pointSeed(kBaseSeed, 301);
    cfg.steps = 800;
    cfg.sharedFrac = 0.9;  // make lost updates matter fast
    cfg.protocolFactory = [] {
        return std::make_unique<test::DeafToWritesProtocol>(
            makeProtocol(ProtocolKind::Firefly));
    };
    EXPECT_THROW(runFuzz(cfg), CoherenceViolation);
}
