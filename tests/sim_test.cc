/**
 * @file
 * Unit tests for the simulation kernel: RNG, events, stats, clocking.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace firefly;

TEST(Types, WordAddressConversions)
{
    EXPECT_EQ(wordAddr(0), 0u);
    EXPECT_EQ(wordAddr(4), 1u);
    EXPECT_EQ(wordAddr(7), 1u);
    EXPECT_EQ(byteAddr(3), 12u);
}

TEST(Types, TimeConversions)
{
    // 10 bus cycles = 1 microsecond.
    EXPECT_DOUBLE_EQ(cyclesToSeconds(10), 1e-6);
    EXPECT_EQ(secondsToCycles(1e-6), 10u);
    // One simulated second is 10 million bus cycles.
    EXPECT_EQ(secondsToCycles(1.0), 10'000'000u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeFullWidthSpan)
{
    // Regression: hi - lo + 1 wraps to zero for the full 64-bit span
    // and used to panic inside below(); every value is in range, so
    // the draw must just succeed.
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const auto v = rng.range(INT64_MIN, INT64_MAX);
        EXPECT_GE(v, INT64_MIN);
        EXPECT_LE(v, INT64_MAX);
    }
    // Degenerate single-value spans at both extremes still work.
    EXPECT_EQ(rng.range(INT64_MIN, INT64_MIN), INT64_MIN);
    EXPECT_EQ(rng.range(INT64_MAX, INT64_MAX), INT64_MAX);
}

TEST(Rng, RangeSpansWiderThanInt64Max)
{
    // Spans in (INT64_MAX, UINT64_MAX): the drawn offset does not
    // fit in int64, so the addition must happen in uint64 space.
    Rng rng(21);
    bool saw_negative = false, saw_positive = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(INT64_MIN, INT64_MAX - 1);
        ASSERT_LE(v, INT64_MAX - 1);
        saw_negative |= v < 0;
        saw_positive |= v > 0;
    }
    // A uniform draw over nearly all of int64 hits both halves.
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(2, [&] { order.push_back(2); });
    q.schedule(9, [&] { order.push_back(9); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{2, 5, 9}));
}

TEST(EventQueue, FifoAmongEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3, [&] { order.push_back(1); });
    q.schedule(3, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.runUntil(3);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(2, [&] { ++fired; });
    });
    q.runUntil(5);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DoesNotRunFutureEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.runUntil(9);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.nextEventCycle(), 10u);
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AccumulatorTracksMinMaxMean)
{
    Accumulator a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(4, 2.0);  // [0,2) [2,4) [4,6) [6,8)
    h.sample(0.5);
    h.sample(3.0);
    h.sample(3.9);
    h.sample(7.9);
    h.sample(100.0);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Stats, GroupGetAndFormula)
{
    StatGroup g("g");
    Counter c;
    g.addCounter(&c, "hits", "hit count");
    g.addFormula("double_hits", "twice the hits",
                 [&] { return 2.0 * c.value(); });
    c += 3;
    EXPECT_DOUBLE_EQ(g.get("hits"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("double_hits"), 6.0);
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("misses"));
}

TEST(Stats, GroupResetRecurses)
{
    StatGroup parent("p"), child("c");
    Counter a, b;
    parent.addCounter(&a, "a", "");
    child.addCounter(&b, "b", "");
    parent.addChild(&child);
    a += 1;
    b += 2;
    parent.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("bus");
    Counter c;
    c += 7;
    g.addCounter(&c, "cycles", "elapsed cycles");
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("bus:"), std::string::npos);
    EXPECT_NE(text.find("cycles"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
}

namespace
{

struct Recorder : Clocked
{
    std::vector<std::pair<int, Cycle>> *log;
    int id;
    Recorder(std::vector<std::pair<int, Cycle>> *log, int id)
        : log(log), id(id) {}
    void tick(Cycle now) override { log->emplace_back(id, now); }
};

} // namespace

TEST(Simulator, PhaseOrderWithinCycle)
{
    Simulator sim;
    std::vector<std::pair<int, Cycle>> log;
    Recorder cpu(&log, 2), bus(&log, 0), cache(&log, 1);
    // Register out of order; phases must still run Bus, Cache, Cpu.
    sim.addClocked(&cpu, Phase::Cpu);
    sim.addClocked(&bus, Phase::Bus);
    sim.addClocked(&cache, Phase::Cache);
    sim.run(2);
    ASSERT_EQ(log.size(), 6u);
    EXPECT_EQ(log[0], (std::pair<int, Cycle>{0, 0}));
    EXPECT_EQ(log[1], (std::pair<int, Cycle>{1, 0}));
    EXPECT_EQ(log[2], (std::pair<int, Cycle>{2, 0}));
    EXPECT_EQ(log[3], (std::pair<int, Cycle>{0, 1}));
}

TEST(Simulator, EventsRunBeforeClocked)
{
    Simulator sim;
    std::vector<int> order;
    Recorder bus(nullptr, 0);
    struct Tick : Clocked
    {
        std::vector<int> *order;
        explicit Tick(std::vector<int> *o) : order(o) {}
        void tick(Cycle) override { order->push_back(2); }
    } ticked(&order);
    sim.addClocked(&ticked, Phase::Bus);
    sim.events().schedule(0, [&] { order.push_back(1); });
    sim.run(1);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunAdvancesClock)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    sim.run(25);
    EXPECT_EQ(sim.now(), 25u);
    sim.runUntil(40);
    EXPECT_EQ(sim.now(), 40u);
    EXPECT_DOUBLE_EQ(sim.seconds(), 40 * 100e-9);
}

TEST(Simulator, RequestStopHaltsLoop)
{
    Simulator sim;
    struct Stopper : Clocked
    {
        Simulator *sim;
        explicit Stopper(Simulator *s) : sim(s) {}
        void
        tick(Cycle now) override
        {
            if (now == 9)
                sim->requestStop();
        }
    } stopper(&sim);
    sim.addClocked(&stopper, Phase::Cpu);
    sim.run(1000);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, RequestStopLatchesBetweenRuns)
{
    // Regression: runUntil used to clear stopRequested on entry, so a
    // stop issued between runs (or on a run's final cycle) was
    // silently dropped.  The request must latch until a run observes
    // and consumes it.
    Simulator sim;
    sim.requestStop();
    sim.run(50);
    EXPECT_EQ(sim.now(), 0u);  // consumed immediately: zero cycles ran
    sim.run(50);
    EXPECT_EQ(sim.now(), 50u);  // and consumed exactly once

    // A stop landing on the final cycle of a run still stops the next.
    Simulator sim2;
    struct Stopper : Clocked
    {
        Simulator *sim;
        explicit Stopper(Simulator *s) : sim(s) {}
        void
        tick(Cycle now) override
        {
            if (now == 9)
                sim->requestStop();
        }
    } stopper(&sim2);
    sim2.addClocked(&stopper, Phase::Cpu);
    sim2.run(10);  // ends at its horizon with the stop still pending
    EXPECT_EQ(sim2.now(), 10u);
    sim2.run(10);
    EXPECT_EQ(sim2.now(), 10u);  // latched stop consumed, 0 cycles ran
    sim2.run(10);
    EXPECT_EQ(sim2.now(), 20u);
}

TEST(EventQueueDeathTest, SchedulingBeforeProcessedTimePanics)
{
    // A lost-completion bug that schedules "in the past" must die
    // loudly, not fire late and pretend it was on time.
    EventQueue q;
    int ran = 0;
    q.schedule(5, [&] { ++ran; });
    q.runUntil(5);
    EXPECT_EQ(ran, 1);
    EXPECT_DEATH(q.schedule(3, [] {}), "already run");

    // The horizon advances through empty sweeps too.
    EventQueue q2;
    q2.runUntil(10);
    EXPECT_DEATH(q2.schedule(9, [] {}), "already run");
    q2.schedule(10, [] {});  // exactly at the horizon is legal
}

namespace
{

/** A component with work only every `period` cycles, opting in to
 *  idle fast-forward and recording everything that happens to it. */
struct Periodic : Clocked
{
    Cycle period;
    std::vector<Cycle> ticks;          ///< cycles tick() saw
    Cycle covered = 0;                 ///< cycles ticked + skipped

    explicit Periodic(Cycle p) : period(p) {}

    void
    tick(Cycle now) override
    {
        if (now % period == 0)
            ticks.push_back(now);
        ++covered;
    }

    Cycle
    nextWake(Cycle now) const override
    {
        const Cycle rem = now % period;
        return rem == 0 ? now : now + (period - rem);
    }

    void
    skipCycles(Cycle from, Cycle to) override
    {
        covered += to - from;
    }
};

} // namespace

TEST(Simulator, FastForwardMatchesSlowPathTickForTick)
{
    // The core invariant: with every component quiescent between
    // wakes, the fast path must deliver the exact same tick sequence
    // as cycle-by-cycle execution, with the skipped spans accounted
    // for through skipCycles.
    Simulator fast;
    fast.setFastForward(true);
    Periodic pf(1000);
    fast.addClocked(&pf, Phase::Device);
    fast.run(5000);

    Simulator slow;
    slow.setFastForward(false);
    Periodic ps(1000);
    slow.addClocked(&ps, Phase::Device);
    slow.run(5000);

    const std::vector<Cycle> expected = {0, 1000, 2000, 3000, 4000};
    EXPECT_EQ(pf.ticks, expected);
    EXPECT_EQ(ps.ticks, expected);
    EXPECT_EQ(pf.covered, 5000u);  // every cycle ticked or skipped
    EXPECT_EQ(ps.covered, 5000u);
    EXPECT_GT(fast.cyclesFastForwarded(), 0u);
    EXPECT_EQ(slow.cyclesFastForwarded(), 0u);
    EXPECT_EQ(fast.now(), slow.now());
}

TEST(Simulator, FastForwardJumpsToNextEvent)
{
    // An otherwise-empty machine leaps straight to the next scheduled
    // event instead of ticking thousands of empty cycles.
    Simulator sim;
    sim.setFastForward(true);
    std::vector<Cycle> fired;
    sim.events().schedule(4000, [&] { fired.push_back(sim.now()); });
    sim.run(5000);
    EXPECT_EQ(fired, (std::vector<Cycle>{4000}));
    EXPECT_EQ(sim.now(), 5000u);
    EXPECT_GE(sim.cyclesFastForwarded(), 4000u);
}

TEST(Simulator, WatchdogWedgesAtTheSameCycleEitherPath)
{
    // Fast-forward must never leap past the watchdog deadline: a
    // wedged machine dies at the identical cycle both ways.
    const auto wedgeCycle = [](bool fast_forward) {
        Simulator sim;
        sim.setFastForward(fast_forward);
        sim.setWatchdog(100, /*throw_on_wedge=*/true);
        struct Quiet : Clocked
        {
            void tick(Cycle) override {}
            Cycle nextWake(Cycle) const override { return kNeverWakes; }
        } quiet;
        sim.addClocked(&quiet, Phase::Device);
        try {
            sim.run(10000);
        } catch (const SimulationWedged &) {
            return sim.now();
        }
        ADD_FAILURE() << "watchdog did not fire";
        return Cycle(0);
    };
    const Cycle fast = wedgeCycle(true);
    EXPECT_EQ(fast, wedgeCycle(false));
    EXPECT_EQ(fast, 100u);
}

TEST(Json, EscapeHandlesHostileStrings)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
    EXPECT_EQ(jsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
}

TEST(Stats, DumpJsonEscapesHostileNames)
{
    // Stat and group names flow into the JSON export; a quote,
    // backslash, or control character must not corrupt the document.
    StatGroup g("evil \"group\"\\name");
    Counter c;
    g.addCounter(&c, "count\"er", "hostile counter");
    g.addFormula("new\nline", "hostile formula", [] { return 1.0; });
    ++c;
    std::ostringstream os;
    g.dumpJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("evil \\\"group\\\"\\\\name"), std::string::npos)
        << out;
    EXPECT_NE(out.find("count\\\"er"), std::string::npos) << out;
    EXPECT_NE(out.find("new\\nline"), std::string::npos) << out;
    // And the raw unescaped forms never appear inside the document.
    EXPECT_EQ(out.find("count\"er"), std::string::npos) << out;
    EXPECT_EQ(out.find("new\nline"), std::string::npos) << out;
}
