/**
 * @file
 * Trace record/replay tests: round-tripping through the binary
 * format, recording the synthetic stream, and the key property that
 * replaying a recorded workload on an identical machine reproduces
 * its cache behaviour exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cpu/synthetic_stream.hh"
#include "cpu/trace_cpu.hh"
#include "test_util.hh"
#include "trace/trace.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "firefly_" + tag +
           ".fftr";
}

} // namespace

TEST(TraceRecord, StepRoundTrip)
{
    const CpuStep ref =
        CpuStep::makeRef({0x1234, RefType::DataWrite, 99});
    const CpuStep back = TraceRecord::fromStep(ref).toStep();
    EXPECT_EQ(back.kind, CpuStep::Kind::Ref);
    EXPECT_EQ(back.ref.addr, 0x1234u);
    EXPECT_EQ(back.ref.type, RefType::DataWrite);
    EXPECT_EQ(back.ref.value, 99u);

    const CpuStep compute = CpuStep::makeCompute(17);
    const CpuStep back2 = TraceRecord::fromStep(compute).toStep();
    EXPECT_EQ(back2.kind, CpuStep::Kind::Compute);
    EXPECT_EQ(back2.ticks, 17u);
}

TEST(TraceFile, WriteThenReadBack)
{
    const auto path = tempTracePath("roundtrip");
    {
        TraceWriter writer(path);
        writer.append(
            TraceRecord::fromStep(CpuStep::makeCompute(5)));
        writer.append(TraceRecord::fromStep(
            CpuStep::makeRef({0x100, RefType::InstrRead, 0})));
        writer.append(TraceRecord::fromStep(
            CpuStep::makeRef({0x204, RefType::DataWrite, 7})));
    }
    TraceReader reader(path);
    ASSERT_EQ(reader.records().size(), 3u);
    EXPECT_EQ(reader.records()[0].kind, TraceRecord::Kind::Compute);
    EXPECT_EQ(reader.records()[0].payload, 5u);
    EXPECT_EQ(reader.records()[1].kind, TraceRecord::Kind::InstrRead);
    EXPECT_EQ(reader.records()[1].addr, 0x100u);
    EXPECT_EQ(reader.records()[2].kind, TraceRecord::Kind::DataWrite);
    EXPECT_EQ(reader.records()[2].payload, 7u);
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, RejectsGarbage)
{
    const auto path = tempTracePath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace file at all............", f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "not a Firefly trace");
    std::remove(path.c_str());
}

TEST(Replay, RepeatsAndHalts)
{
    const auto path = tempTracePath("repeat");
    {
        TraceWriter writer(path);
        writer.append(TraceRecord::fromStep(
            CpuStep::makeRef({0x10, RefType::DataRead, 0})));
        writer.append(
            TraceRecord::fromStep(CpuStep::makeCompute(2)));
    }
    ReplaySource replay(path, 3);
    int refs = 0, computes = 0;
    for (;;) {
        const CpuStep step = replay.next();
        if (step.kind == CpuStep::Kind::Halt)
            break;
        if (step.kind == CpuStep::Kind::Ref)
            ++refs;
        else
            ++computes;
    }
    EXPECT_EQ(refs, 3);
    EXPECT_EQ(computes, 3);
    EXPECT_EQ(replay.next().kind, CpuStep::Kind::Halt);  // stays halted
    std::remove(path.c_str());
}

TEST(Replay, RecordedWorkloadReproducesCacheBehaviour)
{
    const auto path = tempTracePath("reproduce");

    // Record 20k instructions of the synthetic stream while running
    // them on a machine.
    std::uint64_t recorded_fills = 0, recorded_ticks = 0;
    {
        TestRig rig(ProtocolKind::Firefly, 1);
        SyntheticConfig cfg;
        cfg.instructionLimit = 20000;
        SyntheticStream stream(cfg);
        RecordingSource recorder(stream, path);
        TraceCpu cpu(rig.sim, *rig.caches[0], recorder,
                     CpuTiming::microVax(), "cpu0");
        while (!cpu.halted())
            rig.sim.run(100);
        recorded_fills = rig.caches[0]->fills.value();
        recorded_ticks = cpu.ticksElapsed();
    }

    // Replay the trace on a fresh, identical machine: every cache
    // statistic and the cycle count must match exactly.
    {
        TestRig rig(ProtocolKind::Firefly, 1);
        ReplaySource replay(path, 1);
        TraceCpu cpu(rig.sim, *rig.caches[0], replay,
                     CpuTiming::microVax(), "cpu0");
        while (!cpu.halted())
            rig.sim.run(100);
        EXPECT_EQ(rig.caches[0]->fills.value(), recorded_fills);
        EXPECT_EQ(cpu.ticksElapsed(), recorded_ticks);
    }
    std::remove(path.c_str());
}

TEST(Replay, DrivesWholeMultiprocessor)
{
    const auto path = tempTracePath("mp");
    {
        SyntheticConfig cfg;
        cfg.instructionLimit = 5000;
        SyntheticStream stream(cfg);
        TraceWriter writer(path);
        for (;;) {
            const CpuStep step = stream.next();
            if (step.kind == CpuStep::Kind::Halt)
                break;
            writer.append(TraceRecord::fromStep(step));
        }
    }

    // Four processors replaying the same trace share its code and
    // heap: the update protocol keeps them coherent.
    TestRig rig(ProtocolKind::Firefly, 4);
    std::vector<std::unique_ptr<ReplaySource>> sources;
    std::vector<std::unique_ptr<TraceCpu>> cpus;
    for (unsigned i = 0; i < 4; ++i) {
        sources.push_back(std::make_unique<ReplaySource>(path, 1));
        cpus.push_back(std::make_unique<TraceCpu>(
            rig.sim, *rig.caches[i], *sources.back(),
            CpuTiming::microVax(), "cpu" + std::to_string(i)));
    }
    auto all_halted = [&] {
        for (auto &cpu : cpus) {
            if (!cpu->halted())
                return false;
        }
        return true;
    };
    while (!all_halted())
        rig.sim.run(1000);
    // Identical streams => massive sharing; MShared fired.
    std::uint64_t wt_shared = 0;
    for (unsigned i = 0; i < 4; ++i)
        wt_shared += rig.caches[i]->wtMshared.value();
    EXPECT_GT(wt_shared, 0u);
    std::remove(path.c_str());
}
