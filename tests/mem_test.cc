/**
 * @file
 * Unit tests for the storage subsystem.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "mem/sparse_memory.hh"

using namespace firefly;

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory mem(1 << 20);
    EXPECT_EQ(mem.read(0), 0u);
    EXPECT_EQ(mem.read(12345), 0u);
    EXPECT_EQ(mem.allocatedChunks(), 0u);
}

TEST(SparseMemory, WriteThenRead)
{
    SparseMemory mem(1 << 20);
    mem.write(7, 0xdeadbeef);
    EXPECT_EQ(mem.read(7), 0xdeadbeefu);
    EXPECT_EQ(mem.read(8), 0u);
}

TEST(SparseMemory, AllocatesLazily)
{
    SparseMemory mem(1 << 24);  // 64 MB worth of words
    mem.write(0, 1);
    mem.write((1 << 24) - 1, 2);
    // Two distant words touch exactly two chunks.
    EXPECT_EQ(mem.allocatedChunks(), 2u);
    EXPECT_EQ(mem.read(0), 1u);
    EXPECT_EQ(mem.read((1 << 24) - 1), 2u);
}

TEST(SparseMemoryDeathTest, OutOfBoundsPanics)
{
    SparseMemory mem(16);
    EXPECT_DEATH(mem.read(16), "beyond end");
    EXPECT_DEATH(mem.write(100, 1), "beyond end");
}

TEST(MemoryModule, ContainsAndAccess)
{
    MemoryModule mod("m", 0x1000, 0x1000, true);
    EXPECT_TRUE(mod.isMaster());
    EXPECT_FALSE(mod.contains(0xfff));
    EXPECT_TRUE(mod.contains(0x1000));
    EXPECT_TRUE(mod.contains(0x1ffc));
    EXPECT_FALSE(mod.contains(0x2000));

    mod.write(0x1004, 42);
    EXPECT_EQ(mod.read(0x1004), 42u);
    EXPECT_EQ(mod.stats().get("reads"), 1.0);
    EXPECT_EQ(mod.stats().get("writes"), 1.0);
}

TEST(MainMemory, ModulesStackContiguously)
{
    MainMemory mem;
    // The original Firefly: one master + three slave 4 MB modules.
    for (int i = 0; i < 4; ++i)
        mem.addModule(4 * 1024 * 1024);
    EXPECT_EQ(mem.sizeBytes(), 16u * 1024 * 1024);
    EXPECT_EQ(mem.moduleCount(), 4u);
    EXPECT_TRUE(mem.module(0).isMaster());
    EXPECT_FALSE(mem.module(1).isMaster());
}

TEST(MainMemory, DecodeRoutesToRightModule)
{
    MainMemory mem;
    mem.addModule(4 * 1024 * 1024);
    mem.addModule(4 * 1024 * 1024);

    mem.write(0x0000'0004, 1);            // module 0
    mem.write(0x0040'0000, 2);            // module 1 (4 MB boundary)
    EXPECT_EQ(mem.read(0x0000'0004), 1u);
    EXPECT_EQ(mem.read(0x0040'0000), 2u);
    EXPECT_EQ(mem.module(0).stats().get("writes"), 1.0);
    EXPECT_EQ(mem.module(1).stats().get("writes"), 1.0);
}

TEST(MainMemory, CvaxConfigurationReaches128Mb)
{
    MainMemory mem;
    for (int i = 0; i < 4; ++i)
        mem.addModule(32 * 1024 * 1024);
    EXPECT_EQ(mem.sizeBytes(), 128u * 1024 * 1024);
    const Addr last = 128 * 1024 * 1024 - 4;
    mem.write(last, 0xabcd);
    EXPECT_EQ(mem.read(last), 0xabcdu);
}

TEST(MainMemoryDeathTest, UnmappedAddressPanics)
{
    MainMemory mem;
    mem.addModule(1024);
    EXPECT_DEATH(mem.read(4096), "no storage module");
}
