/**
 * @file
 * Unit tests for the MBus: Figure 4 timing, arbitration, MShared,
 * memory inhibit, bandwidth.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mbus/interrupts.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

/** Scriptable bus agent for exercising the bus without real caches. */
struct FakeClient : MBusClient
{
    std::string name = "fake";
    bool assertShared = false;
    bool supply = false;
    Word supplyValue = 0;
    bool captureToMemory = false;

    int probes = 0;
    int completions = 0;
    int doneCount = 0;
    MBusTransaction lastDone;
    Cycle doneCycle = 0;
    Simulator *sim = nullptr;

    std::string busClientName() const override { return name; }

    SnoopReply
    snoopProbe(const MBusTransaction &) override
    {
        ++probes;
        return {assertShared, supply};
    }

    void
    snoopSupplyData(const MBusTransaction &txn, Word *out) override
    {
        for (unsigned i = 0; i < txn.words; ++i)
            out[i] = supplyValue + i;
    }

    void
    snoopComplete(const MBusTransaction &) override
    {
        ++completions;
    }

    void
    transactionDone(const MBusTransaction &txn) override
    {
        ++doneCount;
        lastDone = txn;
        if (sim)
            doneCycle = sim->now();
    }
};

struct BusRig
{
    Simulator sim;
    MainMemory memory;
    MBus bus;
    FakeClient a, b, c;

    BusRig() : bus(sim, memory)
    {
        memory.addModule(4 * 1024 * 1024);
        a.name = "a";
        b.name = "b";
        c.name = "c";
        a.sim = b.sim = c.sim = &sim;
        bus.attach(&a);
        bus.attach(&b);
        bus.attach(&c);
    }

    MBusTransaction
    makeRead(FakeClient &who, Addr addr)
    {
        MBusTransaction txn;
        txn.type = MBusOpType::MRead;
        txn.kind = MBusOpKind::Fill;
        txn.addr = addr;
        txn.initiator = &who;
        return txn;
    }

    MBusTransaction
    makeWrite(FakeClient &who, Addr addr, Word value)
    {
        MBusTransaction txn;
        txn.type = MBusOpType::MWrite;
        txn.kind = MBusOpKind::WriteThrough;
        txn.addr = addr;
        txn.data[0] = value;
        txn.initiator = &who;
        return txn;
    }
};

} // namespace

TEST(MBus, ReadTakesFourCycles)
{
    BusRig rig;
    rig.memory.write(0x100, 77);
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(3);
    EXPECT_EQ(rig.a.doneCount, 0);  // not yet: data cycle is cycle 3
    rig.sim.run(1);
    EXPECT_EQ(rig.a.doneCount, 1);
    EXPECT_EQ(rig.a.lastDone.data[0], 77u);
    EXPECT_EQ(rig.a.doneCycle, 3u);
}

TEST(MBus, WriteUpdatesMemory)
{
    BusRig rig;
    rig.bus.request(rig.makeWrite(rig.a, 0x200, 1234));
    rig.sim.run(4);
    EXPECT_EQ(rig.memory.read(0x200), 1234u);
    EXPECT_EQ(rig.a.doneCount, 1);
}

TEST(MBus, UpdateWriteSkipsMemory)
{
    BusRig rig;
    auto txn = rig.makeWrite(rig.a, 0x200, 1234);
    txn.kind = MBusOpKind::Update;
    txn.updatesMemory = false;
    rig.bus.request(txn);
    rig.sim.run(4);
    EXPECT_EQ(rig.memory.read(0x200), 0u);  // memory not updated
    EXPECT_EQ(rig.a.doneCount, 1);
}

TEST(MBus, OnlyNonInitiatorsAreProbed)
{
    BusRig rig;
    rig.bus.request(rig.makeRead(rig.b, 0x100));
    rig.sim.run(4);
    EXPECT_EQ(rig.a.probes, 1);
    EXPECT_EQ(rig.b.probes, 0);
    EXPECT_EQ(rig.c.probes, 1);
    EXPECT_EQ(rig.a.completions, 1);
    EXPECT_EQ(rig.b.completions, 0);
}

TEST(MBus, MSharedWiredOr)
{
    BusRig rig;
    rig.c.assertShared = true;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(4);
    EXPECT_TRUE(rig.a.lastDone.mshared);

    rig.c.assertShared = false;
    rig.bus.request(rig.makeRead(rig.a, 0x104));
    rig.sim.run(4);
    EXPECT_FALSE(rig.a.lastDone.mshared);
}

TEST(MBus, CacheSupplyInhibitsMemory)
{
    BusRig rig;
    rig.memory.write(0x100, 111);   // stale value in memory
    rig.b.assertShared = true;
    rig.b.supply = true;
    rig.b.supplyValue = 222;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(4);
    EXPECT_TRUE(rig.a.lastDone.suppliedByCache);
    EXPECT_EQ(rig.a.lastDone.data[0], 222u);
    // updatesMemory defaults true: memory captured the supply.
    EXPECT_EQ(rig.memory.read(0x100), 222u);
}

TEST(MBus, SupplyWithoutCaptureLeavesMemoryStale)
{
    BusRig rig;
    rig.memory.write(0x100, 111);
    rig.b.assertShared = true;
    rig.b.supply = true;
    rig.b.supplyValue = 222;
    auto txn = rig.makeRead(rig.a, 0x100);
    txn.updatesMemory = false;  // Berkeley/Dragon style fill
    rig.bus.request(txn);
    rig.sim.run(4);
    EXPECT_EQ(rig.a.lastDone.data[0], 222u);
    EXPECT_EQ(rig.memory.read(0x100), 111u);
}

TEST(MBusDeathTest, DisagreeingSuppliersPanic)
{
    BusRig rig;
    rig.b.assertShared = rig.b.supply = true;
    rig.b.supplyValue = 1;
    rig.c.assertShared = rig.c.supply = true;
    rig.c.supplyValue = 2;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    EXPECT_DEATH(rig.sim.run(4), "disagree");
}

TEST(MBus, FixedPriorityArbitration)
{
    BusRig rig;
    // b and c request in the same cycle; b attached earlier -> wins.
    rig.bus.request(rig.makeRead(rig.c, 0x300));
    rig.bus.request(rig.makeRead(rig.b, 0x200));
    rig.sim.run(4);
    EXPECT_EQ(rig.b.doneCount, 1);
    EXPECT_EQ(rig.c.doneCount, 0);
    rig.sim.run(4);
    EXPECT_EQ(rig.c.doneCount, 1);
}

TEST(MBus, BackToBackThroughputIsTenMegabytesPerSecond)
{
    BusRig rig;
    // Keep the bus saturated with single-word reads for 4000 cycles
    // (400 us): peak throughput must be one longword per 400 ns.
    int issued = 0;
    struct Issuer : Clocked
    {
        BusRig *rig;
        int *issued;
        Issuer(BusRig *r, int *n) : rig(r), issued(n) {}
        void
        tick(Cycle) override
        {
            if (!rig->bus.busy(&rig->a)) {
                rig->bus.request(rig->makeRead(rig->a, 0x100));
                ++*issued;
            }
        }
    } issuer(&rig, &issued);
    rig.sim.addClocked(&issuer, Phase::Cpu);
    rig.sim.run(4000);
    // 4000 cycles / 4 cycles per op ~ 1000 ops of 4 bytes = 4000 bytes
    // in 400 us -> 10 MB/s (one op of slack for startup alignment).
    EXPECT_GE(rig.a.doneCount, 999);
    EXPECT_LE(rig.a.doneCount, 1000);
    EXPECT_GE(rig.bus.load(), 0.999);
    const double bytes = rig.a.doneCount * 4.0;
    const double seconds = rig.sim.seconds();
    EXPECT_NEAR(bytes / seconds, 10e6, 0.02e6);
}

TEST(MBus, BurstAddsOneCyclePerExtraWord)
{
    BusRig rig;
    for (unsigned w = 0; w < 4; ++w)
        rig.memory.write(0x100 + 4 * w, 100 + w);
    auto txn = rig.makeRead(rig.a, 0x100);
    txn.words = 4;
    rig.bus.request(txn);
    rig.sim.run(7);  // 4 + 3 extra data cycles
    EXPECT_EQ(rig.a.doneCount, 1);
    EXPECT_EQ(rig.a.doneCycle, 6u);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(rig.a.lastDone.data[w], 100 + w);
}

TEST(MBus, LoadAccountsIdleCycles)
{
    BusRig rig;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(16);  // 4 busy + 12 idle
    EXPECT_NEAR(rig.bus.load(), 0.25, 1e-9);
}

TEST(MBus, StatsCountOpsByTypeAndKind)
{
    BusRig rig;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(4);
    rig.bus.request(rig.makeWrite(rig.b, 0x200, 5));
    rig.sim.run(4);
    EXPECT_EQ(rig.bus.stats().get("reads"), 1.0);
    EXPECT_EQ(rig.bus.stats().get("writes"), 1.0);
    EXPECT_EQ(rig.bus.stats().get("fills"), 1.0);
    EXPECT_EQ(rig.bus.stats().get("write_throughs"), 1.0);
}

TEST(MBusDeathTest, DoubleRequestPanics)
{
    BusRig rig;
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    EXPECT_DEATH(rig.bus.request(rig.makeRead(rig.a, 0x104)),
                 "outstanding");
}

TEST(MBus, TraceHookSeesFourPhases)
{
    BusRig rig;
    std::vector<std::string> phases;
    rig.bus.setTraceHook(
        [&](Cycle, const std::string &phase, const std::string &) {
            phases.push_back(phase);
        });
    rig.bus.request(rig.makeRead(rig.a, 0x100));
    rig.sim.run(4);
    ASSERT_EQ(phases.size(), 4u);
    EXPECT_EQ(phases[0], "arb+addr");
    EXPECT_EQ(phases[1], "wdata+probe");
    EXPECT_EQ(phases[2], "mshared");
    EXPECT_EQ(phases[3], "data");
}

TEST(Interrupts, DirectedDelivery)
{
    Simulator sim;
    InterruptController ic(sim);
    std::vector<std::pair<unsigned, unsigned>> delivered;
    const unsigned t0 = ic.addTarget(
        [&](unsigned src) { delivered.emplace_back(0, src); });
    ic.addTarget([&](unsigned src) { delivered.emplace_back(1, src); });
    ic.raise(t0, 1);
    sim.run(2);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], (std::pair<unsigned, unsigned>{0u, 1u}));
}

TEST(Interrupts, BroadcastSkipsSource)
{
    Simulator sim;
    InterruptController ic(sim);
    std::vector<unsigned> hit;
    for (unsigned i = 0; i < 3; ++i)
        ic.addTarget([&hit, i](unsigned) { hit.push_back(i); });
    ic.broadcast(1);
    sim.run(2);
    EXPECT_EQ(hit, (std::vector<unsigned>{0, 2}));
}
