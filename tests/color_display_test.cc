/**
 * @file
 * Color display controller tests, including the multi-display
 * configuration the paper highlights ("It is easy to plug multiple
 * display controllers into a single Firefly... Many SRC researchers
 * now have multiple displays").
 */

#include <gtest/gtest.h>

#include "io/color_display.hh"
#include "io/mdc.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

constexpr Addr kQueueA = 0x0010'0000;
constexpr Addr kQueueB = 0x0014'0000;
constexpr Addr kDataBase = 0x0018'0000;

struct ColorRig : TestRig
{
    QBus qbus;
    ColorDisplayController cdc;

    ColorRig()
        : TestRig(ProtocolKind::Firefly, 1),
          qbus(sim, *caches[0], 16 * 1024 * 1024), cdc(sim, qbus,
                                                       config())
    {
        qbus.identityMap();
        cdc.start();
    }

    static ColorDisplayController::Config
    config()
    {
        ColorDisplayController::Config cfg;
        cfg.queueBase = kQueueA;
        return cfg;
    }

    void
    enqueue(Addr queue, const std::array<Word, 8> &command,
            unsigned entries = 16)
    {
        const Word producer = memory.read(queue);
        const Addr entry = queue + 8 + (producer % entries) * 32;
        for (unsigned i = 0; i < command.size(); ++i)
            memory.write(entry + 4 * i, command[i]);
        memory.write(queue, producer + 1);
    }

    void
    drain(Addr queue)
    {
        Cycle deadline = sim.now() + 50'000'000;
        while (memory.read(queue + 4) != memory.read(queue) &&
               sim.now() < deadline) {
            sim.run(1000);
        }
        ASSERT_EQ(memory.read(queue + 4), memory.read(queue));
    }
};

} // namespace

TEST(ColorFrameBuffer, FillAndCount)
{
    ColorFrameBuffer fb;
    EXPECT_EQ(fb.fill({10, 10, 20, 10}, 42), 200u);
    EXPECT_EQ(fb.countIndex({10, 10, 20, 10}, 42), 200u);
    EXPECT_EQ(fb.pixel(10, 10), 42u);
    EXPECT_EQ(fb.pixel(9, 10), 0u);
}

TEST(ColorFrameBuffer, OverlappingCopy)
{
    ColorFrameBuffer fb;
    for (unsigned i = 0; i < 8; ++i)
        fb.setPixel(100 + i, 50, static_cast<std::uint8_t>(i + 1));
    fb.copy({100, 50, 8, 1}, 102, 50);  // overlap to the right
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(fb.pixel(102 + i, 50), i + 1) << i;
}

TEST(ColorFrameBuffer, ColorMapResolvesPixels)
{
    ColorFrameBuffer fb;
    fb.setColor(7, 0xff8000);
    fb.setPixel(1, 1, 7);
    EXPECT_EQ(fb.rgbAt(1, 1), 0xff8000u);
    // Default map is a grey ramp.
    fb.setPixel(2, 2, 0x80);
    EXPECT_EQ(fb.rgbAt(2, 2), 0x808080u);
}

TEST(ColorFrameBuffer, ClipsAtEdges)
{
    ColorFrameBuffer fb;
    EXPECT_EQ(fb.fill({1020, 766, 100, 100}, 1), 4u * 2);
}

TEST(ColorDisplay, FillThroughWorkQueue)
{
    ColorRig rig;
    rig.enqueue(kQueueA,
                ColorDisplayController::encodeFill(0, 0, 64, 64, 9));
    rig.drain(kQueueA);
    EXPECT_EQ(rig.cdc.frameBuffer().countIndex({0, 0, 64, 64}, 9),
              64u * 64);
    EXPECT_EQ(rig.cdc.commandsExecuted.value(), 1u);
}

TEST(ColorDisplay, LoadColorMapFromMemory)
{
    ColorRig rig;
    rig.memory.write(kDataBase, 0x123456);
    rig.memory.write(kDataBase + 4, 0xabcdef);
    rig.enqueue(kQueueA, ColorDisplayController::encodeLoadColorMap(
                             16, 2, kDataBase));
    rig.drain(kQueueA);
    EXPECT_EQ(rig.cdc.frameBuffer().color(16), 0x123456u);
    EXPECT_EQ(rig.cdc.frameBuffer().color(17), 0xabcdefu);
}

TEST(ColorDisplay, PutImageUploadsPixels)
{
    ColorRig rig;
    // A 4x2 image: indices 1..4 then 5..8, packed 4 per word.
    rig.memory.write(kDataBase, 0x04030201);
    rig.memory.write(kDataBase + 4, 0x08070605);
    rig.enqueue(kQueueA, ColorDisplayController::encodePutImage(
                             kDataBase, 1, 200, 100, 4, 2));
    rig.drain(kQueueA);
    EXPECT_EQ(rig.cdc.frameBuffer().pixel(200, 100), 1u);
    EXPECT_EQ(rig.cdc.frameBuffer().pixel(203, 100), 4u);
    EXPECT_EQ(rig.cdc.frameBuffer().pixel(200, 101), 5u);
    EXPECT_EQ(rig.cdc.frameBuffer().pixel(203, 101), 8u);
}

TEST(ColorDisplay, CopyRectThroughQueue)
{
    ColorRig rig;
    rig.enqueue(kQueueA,
                ColorDisplayController::encodeFill(0, 0, 8, 8, 3));
    rig.enqueue(kQueueA, ColorDisplayController::encodeCopyRect(
                             0, 0, 500, 300, 8, 8));
    rig.drain(kQueueA);
    EXPECT_EQ(rig.cdc.frameBuffer().countIndex({500, 300, 8, 8}, 3),
              64u);
}

TEST(MultiDisplay, MonochromeAndColorShareOneQBus)
{
    // The paper's multi-display configuration: an MDC and a color
    // controller both polling work queues in the same main memory
    // over the same QBus.
    ColorRig rig;
    Mdc::Config mdc_cfg;
    mdc_cfg.queueBase = kQueueB;
    mdc_cfg.inputBase = kDataBase + 0x1000;
    Mdc mdc(rig.sim, rig.qbus, mdc_cfg);
    mdc.start();

    rig.enqueue(kQueueA,
                ColorDisplayController::encodeFill(0, 0, 128, 128, 5));
    rig.enqueue(kQueueB, Mdc::encodeFill(0, 0, 128, 128,
                                         RasterOp::Set));
    rig.drain(kQueueA);
    rig.drain(kQueueB);

    EXPECT_EQ(rig.cdc.frameBuffer().countIndex({0, 0, 128, 128}, 5),
              128u * 128);
    EXPECT_EQ(mdc.frameBuffer().litPixels({0, 0, 128, 128}),
              128u * 128);
    // Both controllers really shared the DMA path.
    EXPECT_GT(rig.qbus.engine().wordsRead.value(), 20u);
}
