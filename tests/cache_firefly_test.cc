/**
 * @file
 * Tests for the Firefly coherence protocol - the paper's Figure 3
 * state machine and the conditional write-through behaviour of
 * Section 5.1, transition by transition.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

constexpr Addr kA = 0x1000;

struct FireflyRig : TestRig
{
    FireflyRig() : TestRig(ProtocolKind::Firefly, 3) {}

    double
    busWrites() const
    {
        return bus->stats().get("writes");
    }
};

} // namespace

TEST(FireflyProtocol, ReadMissInstallsValidWhenUnshared)
{
    FireflyRig rig;
    rig.memory.write(kA, 42);
    EXPECT_EQ(rig.read(0, kA), 42u);
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    EXPECT_EQ(rig.caches[0]->fills.value(), 1u);
}

TEST(FireflyProtocol, ReadMissInstallsSharedWhenAnotherCacheHolds)
{
    FireflyRig rig;
    rig.memory.write(kA, 42);
    rig.read(0, kA);
    EXPECT_EQ(rig.read(1, kA), 42u);
    // Both the new holder and the old holder end up Shared.
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    // The data came from cache 0, with memory inhibited.
    EXPECT_EQ(rig.bus->stats().get("cache_supplied"), 1.0);
}

TEST(FireflyProtocol, ReadHitNeedsNoBus)
{
    FireflyRig rig;
    rig.read(0, kA);
    const double reads_before = rig.bus->stats().get("reads");
    for (int i = 0; i < 5; ++i)
        rig.read(0, kA);
    EXPECT_EQ(rig.bus->stats().get("reads"), reads_before);
}

TEST(FireflyProtocol, WriteHitOnValidGoesDirtySilently)
{
    FireflyRig rig;
    rig.read(0, kA);
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    const double writes_before = rig.busWrites();
    rig.write(0, kA, 7);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.busWrites(), writes_before);  // pure write-back
    EXPECT_EQ(rig.read(0, kA), 7u);
    // Memory still stale: the dirty data lives only in the cache.
    EXPECT_EQ(rig.memory.read(kA), 0u);
}

TEST(FireflyProtocol, WriteHitOnDirtyStaysDirtySilently)
{
    FireflyRig rig;
    rig.read(0, kA);
    rig.write(0, kA, 1);
    const double writes_before = rig.busWrites();
    rig.write(0, kA, 2);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.busWrites(), writes_before);
}

TEST(FireflyProtocol, WriteHitOnSharedWritesThroughAndUpdates)
{
    FireflyRig rig;
    rig.read(0, kA);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(0, kA), LineState::Shared);

    rig.write(0, kA, 99);
    // Write-through: memory updated, the other cache updated in
    // place, and the writer saw MShared so it stays Shared.
    EXPECT_EQ(rig.memory.read(kA), 99u);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.caches[0]->wtMshared.value(), 1u);
    // The sharer reads the new value with no further bus traffic.
    const double reads_before = rig.bus->stats().get("reads");
    EXPECT_EQ(rig.read(1, kA), 99u);
    EXPECT_EQ(rig.bus->stats().get("reads"), reads_before);
    EXPECT_EQ(rig.caches[1]->updatesReceived.value(), 1u);
}

TEST(FireflyProtocol, LastSharerReversion)
{
    // "When a location ceases to be shared, only one extra
    // write-through is done by the last cache that contains the
    // location."
    FireflyRig rig;
    rig.read(0, kA);
    rig.read(1, kA);
    // Evict cache 1's copy with a conflicting address (same index).
    const Addr conflicting = kA + 16 * 1024;
    rig.read(1, conflicting);
    ASSERT_EQ(rig.state(1, kA), LineState::Invalid);

    // Cache 0 still believes the line is shared: the next write is
    // the one extra write-through, which returns no MShared...
    rig.write(0, kA, 5);
    EXPECT_EQ(rig.caches[0]->wtNoMshared.value(), 1u);
    // ...so the Shared tag clears and the cache reverts to
    // write-back: the following write is silent.
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    const double writes_before = rig.busWrites();
    rig.write(0, kA, 6);
    EXPECT_EQ(rig.busWrites(), writes_before);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
}

TEST(FireflyProtocol, LongwordWriteMissSkipsFillRead)
{
    FireflyRig rig;
    const double reads_before = rig.bus->stats().get("reads");
    rig.write(0, kA, 31);
    // No MRead was needed: the write covered the whole 4-byte line.
    EXPECT_EQ(rig.bus->stats().get("reads"), reads_before);
    EXPECT_EQ(rig.busWrites(), 1.0);
    // Line installed clean; no other holder, so it is Valid.
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    EXPECT_EQ(rig.memory.read(kA), 31u);
    EXPECT_EQ(rig.read(0, kA), 31u);
}

TEST(FireflyProtocol, WriteMissInstallsSharedWhenOthersHold)
{
    FireflyRig rig;
    rig.read(1, kA);
    rig.write(0, kA, 12);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.read(1, kA), 12u);  // updated in place
}

TEST(FireflyProtocol, DirtyMissWritesVictimFirst)
{
    FireflyRig rig;
    rig.write(0, kA, 77);  // install...
    rig.write(0, kA, 78);  // ...and dirty the line
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);
    ASSERT_EQ(rig.memory.read(kA), 77u);  // only the WT reached memory

    const Addr conflicting = kA + 16 * 1024;
    rig.memory.write(conflicting, 5);
    EXPECT_EQ(rig.read(0, conflicting), 5u);
    // The dirty victim went back to memory before the fill.
    EXPECT_EQ(rig.caches[0]->victimWrites.value(), 1u);
    EXPECT_EQ(rig.memory.read(kA), 78u);
}

TEST(FireflyProtocol, CleanVictimNotWrittenBack)
{
    FireflyRig rig;
    rig.read(0, kA);
    rig.read(0, kA + 16 * 1024);  // evicts the clean line
    EXPECT_EQ(rig.caches[0]->victimWrites.value(), 0u);
}

TEST(FireflyProtocol, DirtySupplierDropsToSharedAndMemoryCaptures)
{
    FireflyRig rig;
    rig.write(0, kA, 10);
    rig.write(0, kA, 11);  // Dirty in cache 0, memory holds 10
    ASSERT_EQ(rig.memory.read(kA), 10u);

    EXPECT_EQ(rig.read(1, kA), 11u);  // supplied by cache 0
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    // Memory captured the supplied data, so shared copies are clean.
    EXPECT_EQ(rig.memory.read(kA), 11u);
}

TEST(FireflyProtocol, WriteMissOverDirtyRemoteCopy)
{
    FireflyRig rig;
    rig.write(0, kA, 1);
    rig.write(0, kA, 2);  // Dirty in cache 0
    rig.write(1, kA, 3);  // write miss elsewhere: write-through
    // The old dirty holder merged the new value and went clean.
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 3u);
    EXPECT_EQ(rig.read(0, kA), 3u);
    EXPECT_EQ(rig.read(1, kA), 3u);
}

TEST(FireflyProtocol, ThreeWaySharingStaysCoherent)
{
    FireflyRig rig;
    rig.read(0, kA);
    rig.read(1, kA);
    rig.read(2, kA);
    rig.write(1, kA, 1234);
    EXPECT_EQ(rig.read(0, kA), 1234u);
    EXPECT_EQ(rig.read(2, kA), 1234u);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.state(2, kA), LineState::Shared);
}

TEST(FireflyProtocol, WriteThroughContinuesWhileShared)
{
    // The paper's noted disadvantage: write-through persists as long
    // as the datum sits in more than one cache, even if only one
    // processor uses it (motivates the migration-averse scheduler).
    FireflyRig rig;
    rig.read(0, kA);
    rig.read(1, kA);
    for (int i = 0; i < 10; ++i)
        rig.write(0, kA, i);
    EXPECT_EQ(rig.caches[0]->wtMshared.value(), 10u);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
}

TEST(FireflyProtocol, SnoopProbeMakesTagStoreBusy)
{
    FireflyRig rig;
    // Simulate a snoop probe arriving in the current cycle, then
    // attempt a CPU access in the same cycle: it must retry.
    MBusTransaction txn;
    txn.type = MBusOpType::MRead;
    txn.addr = kA;
    txn.initiator = rig.caches[1].get();
    rig.caches[0]->snoopProbe(txn);

    bool called = false;
    auto result = rig.caches[0]->cpuAccess(
        {kA, RefType::DataRead, 0}, [&](Word) { called = true; });
    EXPECT_EQ(result.outcome, Cache::AccessOutcome::RetryTagBusy);
    EXPECT_FALSE(called);
    EXPECT_EQ(rig.caches[0]->tagBusyRetries.value(), 1u);

    // A cycle later the tag store is free again.
    rig.sim.run(1);
    EXPECT_EQ(rig.read(0, kA), 0u);
}

TEST(FireflyProtocol, InstructionReadsBehaveLikeDataReads)
{
    FireflyRig rig;
    rig.memory.write(kA, 0x55);
    EXPECT_EQ(rig.access(0, {kA, RefType::InstrRead, 0}), 0x55u);
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    EXPECT_EQ(rig.caches[0]->refsInstr.value(), 1u);
}

TEST(FireflyProtocol, FlushWritesDirtyLinesToMemory)
{
    FireflyRig rig;
    rig.write(0, kA, 1);
    rig.write(0, kA, 2);
    rig.write(0, kA + 4, 3);
    rig.write(0, kA + 4, 4);
    rig.caches[0]->flushFunctional();
    EXPECT_EQ(rig.memory.read(kA), 2u);
    EXPECT_EQ(rig.memory.read(kA + 4), 4u);
    EXPECT_EQ(rig.state(0, kA), LineState::Invalid);
}

TEST(FireflyProtocol, MissTimingIsOneExtraTickWhenBusFree)
{
    // "Misses add only one cycle to a MicroVAX CPU access" - a fill
    // on an idle bus completes within ~5 bus cycles of issue.
    FireflyRig rig;
    const Cycle start = rig.sim.now();
    rig.read(0, kA);
    EXPECT_LE(rig.sim.now() - start, 6u);
}

TEST(FireflyProtocol, DmaReadThroughCacheSeesDirtyData)
{
    FireflyRig rig;
    rig.write(1, kA, 5);
    rig.write(1, kA, 6);  // dirty in cache 1

    // DMA read through cache 0 (the I/O processor's cache): the bus
    // snoop gets the fresh value from cache 1.
    Word got = 0;
    bool done = false;
    rig.caches[0]->dmaAccess({kA, RefType::DataRead, 0},
                             [&](Word w) { got = w; done = true; });
    while (!done)
        rig.sim.run(1);
    EXPECT_EQ(got, 6u);
    // DMA misses do not allocate.
    EXPECT_FALSE(rig.caches[0]->holds(kA));
    EXPECT_EQ(rig.caches[0]->dmaReadMisses.value(), 1u);
}

TEST(FireflyProtocol, DmaWriteUpdatesSharersAndMemory)
{
    FireflyRig rig;
    rig.read(1, kA);
    rig.read(2, kA);

    bool done = false;
    rig.caches[0]->dmaAccess({kA, RefType::DataWrite, 321},
                             [&](Word) { done = true; });
    while (!done)
        rig.sim.run(1);
    EXPECT_EQ(rig.memory.read(kA), 321u);
    EXPECT_EQ(rig.read(1, kA), 321u);
    EXPECT_EQ(rig.read(2, kA), 321u);
    EXPECT_FALSE(rig.caches[0]->holds(kA));  // no allocate
}

TEST(FireflyProtocol, StateNamesMatchPaperFigure3)
{
    EXPECT_STREQ(toString(LineState::Valid), "Valid");
    EXPECT_STREQ(toString(LineState::Dirty), "Dirty");
    EXPECT_STREQ(toString(LineState::Shared), "Shared");
    EXPECT_STREQ(toString(LineState::Invalid), "Invalid");
}
