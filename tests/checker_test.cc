/**
 * @file
 * Tests for the coherence checker subsystem (src/check/): the
 * golden-memory oracle, the invariant scanner, violation diagnostics,
 * and the on-chip cache snapshot validation.  The "teeth" tests
 * inject deliberately broken protocols (tests/broken_protocols.hh)
 * and assert the breakage is caught with a line-level diagnostic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "broken_protocols.hh"
#include "check/coherence_checker.hh"
#include "cpu/onchip_cache.hh"
#include "firefly/system.hh"
#include "obs/trace.hh"
#include "test_util.hh"

using namespace firefly;
using check::CheckerConfig;
using check::CoherenceChecker;
using check::CoherenceViolation;
using firefly::test::CheckedRig;
using firefly::test::TestRig;

namespace
{

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2000;

/** Captures every trace event for inspection. */
struct RecordingSink : obs::TraceSink
{
    std::vector<obs::TraceEvent> events;

    void event(const obs::TraceEvent &ev) override
    {
        events.push_back(ev);
    }
};

} // namespace

TEST(Checker, CleanSharingRunPassesAndCounts)
{
    CheckedRig rig(ProtocolKind::Firefly, 3);
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned c = 0; c < 3; ++c) {
            rig.write(c, kA, 100 * round + c);
            EXPECT_EQ(rig.read((c + 1) % 3, kA), 100 * round + c);
            rig.read(c, kB + c * 0x100);
        }
    }
    rig.checker->finalCheck();
    EXPECT_GT(rig.checker->loadsChecked.value(), 0u);
    EXPECT_GT(rig.checker->writesTracked.value(), 0u);
    EXPECT_GT(rig.checker->txnsObserved.value(), 0u);
    EXPECT_GT(rig.checker->lineScans.value(), 0u);
}

TEST(Checker, OracleTracksSilentAndBusWrites)
{
    CheckedRig rig(ProtocolKind::Firefly);
    // Write-through-allocate miss: serialized at the bus commit.
    rig.write(0, kA, 7);
    EXPECT_TRUE(rig.checker->oracle().tracked(kA));
    EXPECT_EQ(rig.checker->oracle().current(kA), 7u);
    // Read (Valid), write again: a silent Dirty write, serialized at
    // the local write instant.
    rig.read(0, kB);
    rig.write(0, kB, 9);
    EXPECT_EQ(rig.checker->oracle().current(kB), 9u);
    EXPECT_GE(rig.checker->writesTracked.value(), 2u);
    rig.checker->finalCheck();
}

TEST(Checker, UntrackedWordsReadFromMemoryBaseline)
{
    CheckedRig rig(ProtocolKind::Mesi);
    rig.memory.write(kA, 42);
    EXPECT_FALSE(rig.checker->oracle().tracked(kA));
    EXPECT_EQ(rig.checker->oracle().current(kA), 42u);
    EXPECT_EQ(rig.read(0, kA), 42u);  // validated against the baseline
    EXPECT_GT(rig.checker->loadsChecked.value(), 0u);
}

TEST(Checker, PeriodicFullScansRun)
{
    CheckerConfig ccfg;
    ccfg.fullScanPeriod = 4;
    CheckedRig rig(ProtocolKind::Berkeley, 2, {}, {}, ccfg);
    for (unsigned i = 0; i < 16; ++i)
        rig.write(i % 2, kA + i * 0x40, i);
    EXPECT_GT(rig.checker->fullScans.value(), 0u);
}

TEST(Checker, SkippedMSharedUpdateCaughtWithLineDiagnostic)
{
    // The broken protocol installs every fill as exclusive-clean,
    // ignoring what the MShared wire said - the classic "forgot the
    // sharing update" bug.  The second cache to fill the same line
    // violates exclusivity (I3) the instant its fill settles.
    CheckedRig rig(ProtocolKind::Firefly, 2, {}, [] {
        return std::make_unique<test::IgnoreMSharedProtocol>(
            makeProtocol(ProtocolKind::Firefly));
    });
    rig.read(0, kA);
    try {
        rig.read(1, kA);
        FAIL() << "broken protocol not caught";
    } catch (const CoherenceViolation &v) {
        const std::string what = v.what();
        EXPECT_NE(what.find("I3"), std::string::npos) << what;
        EXPECT_NE(what.find(obs::hexAddr(kA)), std::string::npos)
            << what;
        EXPECT_NE(what.find("cache0"), std::string::npos) << what;
        EXPECT_NE(what.find("cache1"), std::string::npos) << what;
    }
}

TEST(Checker, LostSnoopedWriteCaughtWithReplayLog)
{
    // This protocol drops snooped MWrites: a foreign write-through
    // never updates local copies.  After cache1's write the stale
    // copy in cache0 disagrees with both cache1 and the oracle.
    CheckedRig rig(ProtocolKind::Firefly, 2, {}, [] {
        return std::make_unique<test::DeafToWritesProtocol>(
            makeProtocol(ProtocolKind::Firefly));
    });
    rig.memory.write(kA, 5);
    rig.read(0, kA);
    rig.read(1, kA);
    try {
        rig.write(1, kA, 6);
        FAIL() << "lost update not caught";
    } catch (const CoherenceViolation &v) {
        const std::string what = v.what();
        EXPECT_NE(what.find("I4"), std::string::npos) << what;
        // The diagnostic carries the replay log, including the
        // offending MWrite itself.
        EXPECT_NE(what.find("last bus transactions"),
                  std::string::npos) << what;
        EXPECT_NE(what.find("MWrite"), std::string::npos) << what;
        EXPECT_NE(what.find(obs::hexAddr(kA)), std::string::npos)
            << what;
    }
}

TEST(Checker, ViolationEmitsFlightRecorderEvent)
{
    RecordingSink sink;
    obs::ScopedTraceSink scoped(&sink);
    CheckedRig rig(ProtocolKind::Firefly, 2, {}, [] {
        return std::make_unique<test::DeafToWritesProtocol>(
            makeProtocol(ProtocolKind::Firefly));
    });
    rig.read(0, kA);
    rig.read(1, kA);
    EXPECT_THROW(rig.write(1, kA, 6), CoherenceViolation);
    bool found = false;
    for (const auto &ev : sink.events) {
        if (std::string(ev.category) == obs::kCatCheck &&
            ev.name == "violation") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Checker, OnChipStalenessDetectedWithoutRepair)
{
    // An InstructionsAndData on-chip cache that is NOT wired to the
    // bus-write repair observer serves stale data after a foreign
    // write; the checker's install-time snapshot catches the hit.
    CheckedRig rig(ProtocolKind::Firefly, 2);
    OnChipCache::Config oc;
    oc.mode = OnChipCache::DataMode::InstructionsAndData;
    OnChipCache chip(oc, "onchip0");
    rig.checker->watch(chip);

    rig.memory.write(kA, 1);
    EXPECT_FALSE(chip.access({kA, RefType::DataRead, 0}));  // install
    rig.write(1, kA, 99);   // serializes 99 behind the chip's back
    rig.sim.run(64);        // move past the race window
    EXPECT_THROW(chip.access({kA, RefType::DataRead, 0}),
                 CoherenceViolation);
}

TEST(Checker, OnChipRepairPreventsStaleness)
{
    // Same scenario, but with the repair observer the system wires
    // for InstructionsAndData mode: the write drops the entry, the
    // next access misses and reinstalls, and nothing is stale.
    CheckedRig rig(ProtocolKind::Firefly, 2);
    OnChipCache::Config oc;
    oc.mode = OnChipCache::DataMode::InstructionsAndData;
    OnChipCache chip(oc, "onchip0");
    rig.checker->watch(chip);
    rig.bus->addWriteObserver([&chip](Addr addr, unsigned words) {
        chip.observeBusWrite(addr, words);
    });

    rig.memory.write(kA, 1);
    EXPECT_FALSE(chip.access({kA, RefType::DataRead, 0}));
    rig.write(1, kA, 99);
    rig.sim.run(64);
    EXPECT_FALSE(chip.access({kA, RefType::DataRead, 0}));  // miss
    EXPECT_EQ(chip.staleIncidents.value(), 1u);
    EXPECT_TRUE(chip.access({kA, RefType::DataRead, 0}));   // clean hit
}

TEST(Checker, SystemLevelCheckedRunStaysClean)
{
    // A whole CVAX machine - CPUs, on-chip caches, synthetic
    // workload - under the checker.  Any violation would panic.
    FireflyConfig cfg = FireflyConfig::cvax(3);
    cfg.coherenceCheck = true;
    FireflySystem sys(cfg);
    ASSERT_NE(sys.checker(), nullptr);
    SyntheticConfig workload;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.01);
    EXPECT_GT(sys.checker()->loadsChecked.value(), 0u);
    EXPECT_GT(sys.checker()->txnsObserved.value(), 0u);
    sys.checker()->finalCheck();
    // The checker's stats ride in the stat tree for --stats-json.
    EXPECT_GT(sys.checker()->stats().get("loads_checked"), 0.0);
}

TEST(Checker, CheckedRunDoesNotPerturbStatistics)
{
    // Purely observational: the same workload with and without the
    // checker produces identical machine statistics.
    const auto busReads = [](bool checked) {
        FireflyConfig cfg = FireflyConfig::microVax(2);
        cfg.coherenceCheck = checked;
        FireflySystem sys(cfg);
        SyntheticConfig workload;
        sys.attachSyntheticWorkload(workload);
        sys.run(0.01);
        return std::pair(sys.bus().stats().get("reads"),
                         sys.bus().stats().get("writes"));
    };
    EXPECT_EQ(busReads(false), busReads(true));
}
