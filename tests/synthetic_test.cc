/**
 * @file
 * Calibration tests: the synthetic VAX stream, run on a simulated
 * single-processor Firefly, must reproduce the aggregates the paper
 * states for its trace-driven characterisation: the reference mix,
 * M ~ 0.2, D ~ 0.25, ~420 K instructions/s, and ~36-40 % memory
 * interface occupancy.
 */

#include <gtest/gtest.h>

#include "cpu/synthetic_stream.hh"
#include "firefly/system.hh"

using namespace firefly;

namespace
{

/** One warmed-up single-CPU run; returns the system for inspection. */
std::unique_ptr<FireflySystem>
runSingleCpu(double seconds = 0.25)
{
    auto sys =
        std::make_unique<FireflySystem>(FireflyConfig::microVax(1));
    sys->attachSyntheticWorkload(SyntheticConfig{});
    // Long enough that cold-start fills are an afterthought.
    sys->run(seconds);
    return sys;
}

} // namespace

TEST(SyntheticStream, RefMixMatchesVax)
{
    SyntheticConfig cfg;
    SyntheticStream stream(cfg);
    std::uint64_t ir = 0, dr = 0, dw = 0;
    for (int i = 0; i < 300000; ++i) {
        const CpuStep step = stream.next();
        if (step.kind != CpuStep::Kind::Ref)
            continue;
        switch (step.ref.type) {
          case RefType::InstrRead: ++ir; break;
          case RefType::DataRead: ++dr; break;
          case RefType::DataWrite: ++dw; break;
        }
    }
    const double instrs =
        static_cast<double>(stream.instructionsCompleted());
    EXPECT_NEAR(ir / instrs, 0.95, 0.02);
    EXPECT_NEAR(dr / instrs, 0.78, 0.02);
    EXPECT_NEAR(dw / instrs, 0.40, 0.02);
}

TEST(SyntheticStream, ComputeTicksMatchTarget)
{
    SyntheticConfig cfg;
    SyntheticStream stream(cfg);
    std::uint64_t compute = 0;
    for (int i = 0; i < 200000; ++i) {
        const CpuStep step = stream.next();
        if (step.kind == CpuStep::Kind::Compute)
            compute += step.ticks;
    }
    const double instrs =
        static_cast<double>(stream.instructionsCompleted());
    EXPECT_NEAR(compute / instrs, cfg.computeTicksPerInstr, 0.05);
}

TEST(SyntheticStream, AddressesStayInRegions)
{
    SyntheticConfig cfg;
    SyntheticStream stream(cfg);
    for (int i = 0; i < 100000; ++i) {
        const CpuStep step = stream.next();
        if (step.kind != CpuStep::Kind::Ref)
            continue;
        const Addr a = step.ref.addr;
        ASSERT_EQ(a % 4, 0u);
        if (step.ref.type == RefType::InstrRead) {
            ASSERT_GE(a, cfg.codeBase);
            ASSERT_LT(a, cfg.codeBase + cfg.codeBytes);
        } else {
            const bool in_private = a >= cfg.privateBase &&
                a < cfg.privateBase + cfg.privateBytes;
            const bool in_shared = a >= cfg.sharedBase &&
                a < cfg.sharedBase + cfg.sharedBytes;
            ASSERT_TRUE(in_private || in_shared);
        }
    }
}

TEST(SyntheticStream, SharedWriteFractionMatchesS)
{
    SyntheticConfig cfg;
    cfg.writeSharedFrac = 0.1;
    SyntheticStream stream(cfg);
    std::uint64_t writes = 0, shared_writes = 0;
    for (int i = 0; i < 400000; ++i) {
        const CpuStep step = stream.next();
        if (step.kind != CpuStep::Kind::Ref ||
            step.ref.type != RefType::DataWrite)
            continue;
        ++writes;
        if (step.ref.addr >= cfg.sharedBase &&
            step.ref.addr < cfg.sharedBase + cfg.sharedBytes)
            ++shared_writes;
    }
    ASSERT_GT(writes, 0u);
    // Reuse re-touches shared addresses too, so the achieved
    // fraction sits near (not exactly at) the configured S.
    EXPECT_NEAR(static_cast<double>(shared_writes) / writes, 0.1,
                0.05);
}

TEST(SyntheticStream, InstructionLimitHalts)
{
    SyntheticConfig cfg;
    cfg.instructionLimit = 100;
    SyntheticStream stream(cfg);
    int steps = 0;
    while (stream.next().kind != CpuStep::Kind::Halt) {
        ASSERT_LT(++steps, 10000);
    }
    EXPECT_EQ(stream.instructionsCompleted(), 100u);
    EXPECT_EQ(stream.next().kind, CpuStep::Kind::Halt);  // stays halted
}

TEST(SyntheticCalibration, SingleCpuMatchesPaperAggregates)
{
    auto sys = runSingleCpu();
    Cache &cache = sys->cache(0);
    TraceCpu &cpu = sys->cpu(0);

    // Paper: M ~ 0.2 on the 16 KB cache with 4-byte lines.
    // (The calibrated generator lands slightly above the paper's
    // M=0.2 / D=0.25 once it also carries the spatial locality and
    // >16KB working set the other experiments need.)
    const double miss_rate = cache.stats().get("miss_rate");
    EXPECT_GT(miss_rate, 0.15);
    EXPECT_LT(miss_rate, 0.27);

    // Paper: D ~ 0.25 of cache entries dirty.
    const double dirty = cache.dirtyFraction();
    EXPECT_GT(dirty, 0.15);
    EXPECT_LT(dirty, 0.45);

    // TPI: one processor suffers only its own misses; the analytic
    // model puts it around 13.2 at the resulting light bus load.
    EXPECT_GT(cpu.tpi(), 12.2);
    EXPECT_LT(cpu.tpi(), 14.2);

    // ~400 K VAX instructions/s per processor.
    const double ips = cpu.instructions() / sys->seconds();
    EXPECT_GT(ips, 330e3);
    EXPECT_LT(ips, 430e3);

    // "kept its local memory interface busy about 40% of the time":
    // 2.13 refs * 2 ticks / TPI ~ 0.36.
    const double refs = static_cast<double>(sys->totalCpuRefs());
    const double occupancy = refs * 2.0 / cpu.ticksElapsed();
    EXPECT_GT(occupancy, 0.30);
    EXPECT_LT(occupancy, 0.45);
}

TEST(SyntheticCalibration, DeterministicAcrossRuns)
{
    auto a = runSingleCpu(0.05);
    auto b = runSingleCpu(0.05);
    EXPECT_EQ(a->totalCpuRefs(), b->totalCpuRefs());
    EXPECT_EQ(a->cache(0).fills.value(), b->cache(0).fills.value());
    EXPECT_DOUBLE_EQ(a->busLoad(), b->busLoad());
}
