/**
 * @file
 * The debug-trace flag machinery: programmatic set/query, the
 * comma-separated list form, and FIREFLY_DEBUG environment parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/logging.hh"

using namespace firefly;

namespace
{

class LoggingFlags : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("FIREFLY_DEBUG");
        resetDebugFlagsForTest();
    }

    void
    TearDown() override
    {
        unsetenv("FIREFLY_DEBUG");
        resetDebugFlagsForTest();
    }
};

TEST_F(LoggingFlags, DefaultsToAllOff)
{
    EXPECT_FALSE(debugFlagSet("MBus"));
    EXPECT_FALSE(debugFlagSet("Cache"));
    EXPECT_FALSE(anyDebugFlagsSet());
}

TEST_F(LoggingFlags, SetAndClearOneFlag)
{
    setDebugFlag("MBus");
    EXPECT_TRUE(debugFlagSet("MBus"));
    EXPECT_FALSE(debugFlagSet("Cache"));
    EXPECT_TRUE(anyDebugFlagsSet());

    setDebugFlag("MBus", false);
    EXPECT_FALSE(debugFlagSet("MBus"));
    EXPECT_FALSE(anyDebugFlagsSet());
}

TEST_F(LoggingFlags, CommaSeparatedList)
{
    setDebugFlags("MBus,Cache,Sched");
    EXPECT_TRUE(debugFlagSet("MBus"));
    EXPECT_TRUE(debugFlagSet("Cache"));
    EXPECT_TRUE(debugFlagSet("Sched"));
    EXPECT_FALSE(debugFlagSet("Dma"));
}

TEST_F(LoggingFlags, ListSkipsEmptyTokens)
{
    setDebugFlags(",MBus,,Cache,");
    EXPECT_TRUE(debugFlagSet("MBus"));
    EXPECT_TRUE(debugFlagSet("Cache"));
    EXPECT_FALSE(debugFlagSet(""));
}

TEST_F(LoggingFlags, EnvironmentVariableFoldsInOnFirstUse)
{
    setenv("FIREFLY_DEBUG", "Cpu,Rpc", 1);
    resetDebugFlagsForTest();  // forces a re-read on next query
    EXPECT_TRUE(debugFlagSet("Cpu"));
    EXPECT_TRUE(debugFlagSet("Rpc"));
    EXPECT_FALSE(debugFlagSet("MBus"));
    EXPECT_TRUE(anyDebugFlagsSet());
}

TEST_F(LoggingFlags, EnvironmentCombinesWithProgrammaticFlags)
{
    setenv("FIREFLY_DEBUG", "Dma", 1);
    resetDebugFlagsForTest();
    setDebugFlag("MBus");
    EXPECT_TRUE(debugFlagSet("MBus"));
    EXPECT_TRUE(debugFlagSet("Dma"));
}

TEST_F(LoggingFlags, ResetClearsEverything)
{
    setDebugFlags("MBus,Cache");
    resetDebugFlagsForTest();
    EXPECT_FALSE(debugFlagSet("MBus"));
    EXPECT_FALSE(anyDebugFlagsSet());
}

} // namespace
