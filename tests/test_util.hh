/**
 * @file
 * Shared helpers for driving the simulated machine from tests.
 */

#ifndef FIREFLY_TESTS_TEST_UTIL_HH
#define FIREFLY_TESTS_TEST_UTIL_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/protocol.hh"
#include "check/coherence_checker.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

namespace firefly::test
{

/**
 * A small machine - memory, bus, N caches - with blocking access
 * helpers that advance simulated time until each access completes.
 * This stands in for the processors when a test wants precise control
 * over the reference sequence.
 */
struct TestRig
{
    Simulator sim;
    MainMemory memory;
    std::unique_ptr<MBus> bus;
    std::vector<std::unique_ptr<Cache>> caches;

    /** Builds one protocol instance per cache; empty = makeProtocol. */
    using ProtocolFactory =
        std::function<std::unique_ptr<CoherenceProtocol>()>;

    explicit TestRig(ProtocolKind kind, unsigned ncaches = 2,
                     Cache::Geometry geom = {},
                     ProtocolFactory factory = {})
    {
        memory.addModule(4 * 1024 * 1024);
        bus = std::make_unique<MBus>(sim, memory);
        for (unsigned i = 0; i < ncaches; ++i) {
            caches.push_back(std::make_unique<Cache>(
                sim, *bus, factory ? factory() : makeProtocol(kind),
                geom, "cache" + std::to_string(i)));
        }
    }

    /** Issue one access and run the clock until it completes. */
    Word
    access(unsigned cache_idx, const MemRef &ref)
    {
        bool done = false;
        Word data = 0;
        for (;;) {
            auto result = caches[cache_idx]->cpuAccess(
                ref, [&](Word w) { done = true; data = w; });
            if (result.outcome == Cache::AccessOutcome::Hit)
                return result.data;
            if (result.outcome == Cache::AccessOutcome::Pending)
                break;
            sim.run(1);  // tag store busy: retry next cycle
        }
        while (!done)
            sim.run(1);
        return data;
    }

    Word
    read(unsigned cache_idx, Addr addr)
    {
        return access(cache_idx, {addr, RefType::DataRead, 0});
    }

    void
    write(unsigned cache_idx, Addr addr, Word value)
    {
        access(cache_idx, {addr, RefType::DataWrite, value});
    }

    LineState
    state(unsigned cache_idx, Addr addr) const
    {
        if (!caches[cache_idx]->holds(addr))
            return LineState::Invalid;
        return caches[cache_idx]->lineAt(addr).state;
    }
};

/**
 * A TestRig with the coherence checker (src/check/) attached and
 * configured to throw CoherenceViolation, so any incoherence the
 * test provokes fails loudly with a line-level diagnostic.
 */
struct CheckedRig : TestRig
{
    std::unique_ptr<check::CoherenceChecker> checker;

    explicit CheckedRig(ProtocolKind kind, unsigned ncaches = 2,
                        Cache::Geometry geom = {},
                        ProtocolFactory factory = {},
                        check::CheckerConfig ccfg = {})
        : TestRig(kind, ncaches, geom, std::move(factory))
    {
        ccfg.throwOnViolation = true;
        checker = std::make_unique<check::CoherenceChecker>(
            sim, *bus, memory, kind, ccfg);
        for (auto &cache : caches)
            checker->watch(*cache);
    }
};

} // namespace firefly::test

#endif // FIREFLY_TESTS_TEST_UTIL_HH
