/**
 * @file
 * Shared helpers for driving the simulated machine from tests.
 */

#ifndef FIREFLY_TESTS_TEST_UTIL_HH
#define FIREFLY_TESTS_TEST_UTIL_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/protocol.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

namespace firefly::test
{

/**
 * A small machine - memory, bus, N caches - with blocking access
 * helpers that advance simulated time until each access completes.
 * This stands in for the processors when a test wants precise control
 * over the reference sequence.
 */
struct TestRig
{
    Simulator sim;
    MainMemory memory;
    std::unique_ptr<MBus> bus;
    std::vector<std::unique_ptr<Cache>> caches;

    explicit TestRig(ProtocolKind kind, unsigned ncaches = 2,
                     Cache::Geometry geom = {})
    {
        memory.addModule(4 * 1024 * 1024);
        bus = std::make_unique<MBus>(sim, memory);
        for (unsigned i = 0; i < ncaches; ++i) {
            caches.push_back(std::make_unique<Cache>(
                sim, *bus, makeProtocol(kind), geom,
                "cache" + std::to_string(i)));
        }
    }

    /** Issue one access and run the clock until it completes. */
    Word
    access(unsigned cache_idx, const MemRef &ref)
    {
        bool done = false;
        Word data = 0;
        for (;;) {
            auto result = caches[cache_idx]->cpuAccess(
                ref, [&](Word w) { done = true; data = w; });
            if (result.outcome == Cache::AccessOutcome::Hit)
                return result.data;
            if (result.outcome == Cache::AccessOutcome::Pending)
                break;
            sim.run(1);  // tag store busy: retry next cycle
        }
        while (!done)
            sim.run(1);
        return data;
    }

    Word
    read(unsigned cache_idx, Addr addr)
    {
        return access(cache_idx, {addr, RefType::DataRead, 0});
    }

    void
    write(unsigned cache_idx, Addr addr, Word value)
    {
        access(cache_idx, {addr, RefType::DataWrite, value});
    }

    LineState
    state(unsigned cache_idx, Addr addr) const
    {
        if (!caches[cache_idx]->holds(addr))
            return LineState::Invalid;
        return caches[cache_idx]->lineAt(addr).state;
    }
};

} // namespace firefly::test

#endif // FIREFLY_TESTS_TEST_UTIL_HH
