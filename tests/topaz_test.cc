/**
 * @file
 * Topaz runtime tests: scheduler policies, thread primitives, the
 * exerciser workloads, and the end-to-end mutual-exclusion +
 * coherence check (lock-protected counters incremented through real
 * read-modify-writes against the simulated memory system).
 */

#include <gtest/gtest.h>

#include "firefly/system.hh"
#include "topaz/arena.hh"
#include "topaz/scheduler.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

/** Build a machine + runtime and wire the ports to the CPUs. */
struct TopazRig
{
    FireflySystem sys;
    TopazRuntime runtime;

    explicit TopazRig(unsigned cpus, TopazConfig cfg = {})
        : sys(FireflyConfig::microVax(cpus)),
          runtime((cfg.cpus = cpus, cfg))
    {
    }

    void
    start()
    {
        std::vector<RefSource *> sources;
        for (unsigned i = 0; i < sys.processorCount(); ++i)
            sources.push_back(&runtime.port(i));
        sys.attachSources(sources);
    }

    void
    runToCompletion(Cycle max_cycles = 400'000'000)
    {
        sys.runToCompletion(max_cycles);
    }

    Word
    counterValue(unsigned idx)
    {
        // Flush caches so memory holds the committed value.
        for (unsigned i = 0; i < sys.processorCount(); ++i)
            sys.cache(i).flushFunctional();
        return sys.memory().read(runtime.counterAddr(idx));
    }
};

} // namespace

TEST(MemoryArena, AllocatesAlignedAndTracks)
{
    MemoryArena arena(0x1000, 0x100);
    const Addr a = arena.allocate(10, "a");  // rounds to 12
    const Addr b = arena.allocate(4, "b");
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b, 0x100cu);
    EXPECT_EQ(arena.used(), 16u);
    EXPECT_EQ(arena.regions().size(), 2u);
    EXPECT_EQ(arena.regions()[0].label, "a");
}

TEST(MemoryArenaDeathTest, ExhaustionIsFatal)
{
    MemoryArena arena(0x1000, 16);
    arena.allocate(16, "all");
    EXPECT_EXIT(arena.allocate(4, "more"),
                ::testing::ExitedWithCode(1), "exhausted");
}

TEST(Scheduler, AffinityPrefersOwnQueue)
{
    TopazScheduler sched(2, SchedulerPolicy::Affinity);
    sched.makeReady(1, 0);
    sched.makeReady(2, 1);
    EXPECT_EQ(sched.pick(0), 1);
    EXPECT_EQ(sched.pick(1), 2);
    EXPECT_EQ(sched.steals.value(), 0u);
}

TEST(Scheduler, AffinityStealsWhenIdle)
{
    TopazScheduler sched(2, SchedulerPolicy::Affinity);
    sched.makeReady(1, 0);
    sched.makeReady(2, 0);
    EXPECT_EQ(sched.pick(1), 1);  // stolen from CPU 0's queue
    EXPECT_EQ(sched.steals.value(), 1u);
}

TEST(Scheduler, GlobalIsFifo)
{
    TopazScheduler sched(3, SchedulerPolicy::Global);
    sched.makeReady(5, 0);
    sched.makeReady(6, 1);
    EXPECT_EQ(sched.pick(2), 5);
    EXPECT_EQ(sched.pick(0), 6);
    EXPECT_EQ(sched.pick(1), -1);
}

TEST(TopazRuntime, SingleThreadComputeRunsToCompletion)
{
    TopazRig rig(1);
    BehaviorProgram prog;
    prog.iterations = 3;
    prog.body = {BehaviorOp::compute(100),
                 BehaviorOp::touchPrivate(10)};
    rig.runtime.addThread(rig.runtime.registerProgram(prog));
    rig.start();
    rig.runToCompletion();
    EXPECT_TRUE(rig.sys.allHalted());
    EXPECT_TRUE(rig.runtime.done());
    EXPECT_GE(rig.runtime.userInstructions.value(), 300u);
    EXPECT_EQ(rig.runtime.deadlockBreaks.value(), 0u);
}

TEST(TopazRuntime, LockProtectedCounterIsExact)
{
    // The headline end-to-end check: concurrent threads increment a
    // shared counter under a mutex, with the increment implemented
    // as a real read-modify-write against the coherent memory
    // system.  Any coherence or mutual-exclusion bug loses updates.
    TopazRig rig(4);
    const unsigned threads = 6;
    const std::uint64_t iters = 50;
    for (unsigned t = 0; t < threads; ++t) {
        BehaviorProgram prog;
        prog.iterations = iters;
        prog.body = {BehaviorOp::lockAcquire(0),
                     BehaviorOp::incrementCounter(0),
                     BehaviorOp::lockRelease(0),
                     BehaviorOp::compute(20)};
        rig.runtime.addThread(rig.runtime.registerProgram(prog));
    }
    rig.start();
    rig.runToCompletion();
    ASSERT_TRUE(rig.runtime.done());
    EXPECT_EQ(rig.counterValue(0), threads * iters);
    EXPECT_EQ(rig.runtime.deadlockBreaks.value(), 0u);
    EXPECT_GT(rig.runtime.lockContentions.value(), 0u);
}

TEST(TopazRuntime, UnlockedCounterLosesUpdates)
{
    // The control experiment: without the mutex, concurrent
    // read-modify-writes race and (with many CPUs) lose updates.
    // This demonstrates the increments really do flow through the
    // simulated memory system rather than an oracle.
    TopazRig rig(6);
    const unsigned threads = 6;
    const std::uint64_t iters = 400;
    for (unsigned t = 0; t < threads; ++t) {
        BehaviorProgram prog;
        prog.iterations = iters;
        prog.body = {BehaviorOp::incrementCounter(1)};
        rig.runtime.addThread(rig.runtime.registerProgram(prog));
    }
    rig.start();
    rig.runToCompletion();
    ASSERT_TRUE(rig.runtime.done());
    EXPECT_LT(rig.counterValue(1), threads * iters);
    EXPECT_GT(rig.counterValue(1), 0u);
}

TEST(TopazRuntime, ForkAndJoin)
{
    TopazRig rig(2);
    ParallelMakeParams params;
    params.jobs = 4;
    params.jobInstructions = 500;
    buildParallelMake(rig.runtime, params);
    rig.start();
    rig.runToCompletion();
    EXPECT_TRUE(rig.runtime.done());
    EXPECT_EQ(rig.runtime.forks.value(), 4u);
    EXPECT_EQ(rig.runtime.joins.value(), 4u);
    EXPECT_EQ(rig.runtime.deadlockBreaks.value(), 0u);
}

TEST(TopazRuntime, ExerciserCountersExactUnderLoad)
{
    TopazRig rig(4);
    ExerciserParams params;
    params.threads = 8;
    params.iterations = 40;
    params.groups = 4;
    const auto expected = buildThreadsExerciser(rig.runtime, params);
    rig.start();
    rig.runToCompletion();
    ASSERT_TRUE(rig.runtime.done());

    std::uint64_t total = 0;
    for (unsigned g = 0; g < params.groups; ++g)
        total += rig.counterValue(g);
    EXPECT_EQ(total, expected);
    EXPECT_EQ(rig.runtime.deadlockBreaks.value(), 0u);

    // The exerciser must behave as the paper describes: lots of
    // blocking and rescheduling.
    EXPECT_GT(rig.runtime.waits.value(), 100u);
    EXPECT_GT(rig.runtime.contextSwitches.value(), 200u);
}

TEST(TopazRuntime, ExerciserGeneratesHeavySharing)
{
    TopazRig rig(5);
    ExerciserParams params;
    params.threads = 10;
    params.iterations = 60;
    buildThreadsExerciser(rig.runtime, params);
    rig.start();
    rig.runToCompletion();

    // A large fraction of write-throughs must receive MShared - the
    // Table 2 signature (33% of one CPU's bus writes in the 5-CPU
    // measured run).
    std::uint64_t wt_shared = 0, wt_clear = 0;
    for (unsigned i = 0; i < 5; ++i) {
        wt_shared += rig.sys.cache(i).wtMshared.value();
        wt_clear += rig.sys.cache(i).wtNoMshared.value();
    }
    EXPECT_GT(wt_shared, 0u);
    EXPECT_GT(static_cast<double>(wt_shared) / (wt_shared + wt_clear),
              0.3);
}

TEST(TopazRuntime, GlobalPolicyMigratesMoreThanAffinity)
{
    auto migrations = [](SchedulerPolicy policy) {
        TopazConfig cfg;
        cfg.policy = policy;
        TopazRig rig(4, cfg);
        ExerciserParams params;
        params.threads = 8;
        params.iterations = 50;
        buildThreadsExerciser(rig.runtime, params);
        rig.start();
        rig.runToCompletion();
        EXPECT_TRUE(rig.runtime.done());
        return rig.runtime.migrations.value();
    };
    const auto affinity = migrations(SchedulerPolicy::Affinity);
    const auto global = migrations(SchedulerPolicy::Global);
    EXPECT_LT(affinity, global);
}

TEST(TopazRuntime, PipelineCompletes)
{
    TopazRig rig(3);
    PipelineParams params;
    params.stages = 3;
    params.items = 60;
    buildPipeline(rig.runtime, params);
    rig.start();
    rig.runToCompletion();
    EXPECT_TRUE(rig.runtime.done());
    EXPECT_EQ(rig.runtime.deadlockBreaks.value(), 0u);
}

TEST(TopazRuntime, DeterministicGivenSeed)
{
    auto run = [] {
        TopazRig rig(3);
        ExerciserParams params;
        params.threads = 6;
        params.iterations = 30;
        buildThreadsExerciser(rig.runtime, params);
        rig.start();
        rig.runToCompletion();
        return std::tuple{rig.sys.simulator().now(),
                          rig.runtime.contextSwitches.value(),
                          rig.runtime.migrations.value(),
                          rig.sys.bus().busyCycles()};
    };
    EXPECT_EQ(run(), run());
}

TEST(TopazRuntime, SliceForcesYieldOnLongCompute)
{
    TopazConfig cfg;
    cfg.sliceInstructions = 100;
    TopazRig rig(1, cfg);
    // Two compute-only threads on one CPU: without slicing, the
    // first would run to completion before the second starts.
    for (int t = 0; t < 2; ++t) {
        BehaviorProgram prog;
        prog.iterations = 1;
        prog.body = {BehaviorOp::compute(2000)};
        rig.runtime.addThread(rig.runtime.registerProgram(prog));
    }
    rig.start();
    rig.runToCompletion();
    EXPECT_TRUE(rig.runtime.done());
    EXPECT_GT(rig.runtime.yields.value(), 10u);
}

TEST(TopazRuntime, MoreCpusFinishTheMakeFaster)
{
    auto elapsed = [](unsigned cpus) {
        TopazRig rig(cpus);
        ParallelMakeParams params;
        params.jobs = 6;
        params.jobInstructions = 3000;
        buildParallelMake(rig.runtime, params);
        rig.start();
        rig.runToCompletion();
        EXPECT_TRUE(rig.runtime.done());
        return rig.sys.simulator().now();
    };
    const auto one = elapsed(1);
    const auto four = elapsed(4);
    EXPECT_LT(four * 2, one);  // at least 2x speedup on 4 CPUs
}
