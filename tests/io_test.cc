/**
 * @file
 * I/O subsystem tests: DMA through the I/O processor's cache, QBus
 * mapping, Ethernet, and the disk controller.
 */

#include <gtest/gtest.h>

#include "io/disk.hh"
#include "io/ethernet.hh"
#include "io/qbus.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

constexpr Addr kIoLimit = 16 * 1024 * 1024;

struct IoRig : TestRig
{
    QBus qbus;

    IoRig()
        : TestRig(ProtocolKind::Firefly, 2),
          qbus(sim, *caches[0], kIoLimit)
    {
        qbus.identityMap();
    }

    void
    runUntil(const bool &flag, Cycle limit = 10'000'000)
    {
        const Cycle deadline = sim.now() + limit;
        while (!flag && sim.now() < deadline)
            sim.run(100);
        ASSERT_TRUE(flag) << "I/O operation did not complete";
    }
};

} // namespace

TEST(DmaEngine, ReadSeesMemoryAndCaches)
{
    IoRig rig;
    rig.memory.write(0x1000, 7);
    // A dirty word in another CPU's cache must be visible to DMA.
    rig.write(1, 0x1004, 8);
    rig.write(1, 0x1004, 9);  // now dirty in cache 1

    bool done = false;
    std::vector<Word> got;
    rig.qbus.dmaRead(0x1000, 2, [&](IoStatus, std::vector<Word> data) {
        got = std::move(data);
        done = true;
    });
    rig.runUntil(done);
    EXPECT_EQ(got, (std::vector<Word>{7, 9}));
}

TEST(DmaEngine, WriteIsVisibleToCpus)
{
    IoRig rig;
    rig.read(1, 0x2000);  // cache 1 holds the line
    bool done = false;
    rig.qbus.dmaWrite(0x2000, {1234}, [&](IoStatus) { done = true; });
    rig.runUntil(done);
    EXPECT_EQ(rig.memory.read(0x2000), 1234u);
    EXPECT_EQ(rig.read(1, 0x2000), 1234u);  // updated in place
}

TEST(DmaEngine, PacingLimitsBandwidth)
{
    IoRig rig;
    // 1000 words at 12 cycles/word ~ 12000 cycles = 3.33 MB/s.
    bool done = false;
    const Cycle start = rig.sim.now();
    rig.qbus.dmaWrite(0x4000, std::vector<Word>(1000, 42),
                      [&](IoStatus) { done = true; });
    rig.runUntil(done);
    const Cycle elapsed = rig.sim.now() - start;
    EXPECT_GE(elapsed, 11900u);
    EXPECT_LE(elapsed, 13500u);
    const double mbps = 4000.0 / (elapsed * 100e-9) / 1e6;
    EXPECT_NEAR(mbps, 3.33, 0.2);
}

TEST(DmaEngine, ConcurrentRequestsShareFifo)
{
    IoRig rig;
    bool a = false, b = false;
    rig.qbus.dmaWrite(0x5000, std::vector<Word>(10, 1),
                      [&](IoStatus) { a = true; });
    rig.qbus.dmaWrite(0x6000, std::vector<Word>(10, 2),
                      [&](IoStatus) { b = true; });
    rig.runUntil(b);
    EXPECT_TRUE(a);
    EXPECT_EQ(rig.memory.read(0x5000), 1u);
    EXPECT_EQ(rig.memory.read(0x6000), 2u);
}

TEST(DmaEngineDeathTest, RejectsAccessBeyondIoLimit)
{
    IoRig rig;
    // The I/O processor and DMA reach only the first 16 MB; a
    // mapping cannot be programmed to point beyond it.
    EXPECT_EXIT(rig.qbus.engine().writeWords(
                    kIoLimit, {1}, [](IoStatus) {}),
                ::testing::ExitedWithCode(1), "I/O processor");
}

TEST(QBus, MappingTranslates)
{
    IoRig rig;
    rig.qbus.setMapping(0, 3 * qbusPageBytes);
    EXPECT_EQ(rig.qbus.translate(0x10), 3 * qbusPageBytes + 0x10);
}

TEST(QBusDeathTest, UnmappedPageIsFatal)
{
    TestRig base(ProtocolKind::Firefly, 1);
    QBus qbus(base.sim, *base.caches[0], kIoLimit);
    EXPECT_EXIT(qbus.translate(0x10), ::testing::ExitedWithCode(1),
                "unmapped");
}

TEST(QBusDeathTest, AddressBeyond22BitsIsFatal)
{
    IoRig rig;
    EXPECT_EXIT(rig.qbus.translate(qbusSpaceBytes),
                ::testing::ExitedWithCode(1), "22-bit");
}

TEST(Ethernet, LoopbackDeliversPayload)
{
    IoRig rig;
    EthernetController a(rig.sim, rig.qbus, "net0");
    EthernetController b(rig.sim, rig.qbus, "net1");
    a.connectTo(&b);

    // Place a packet in memory, post an rx buffer for b.
    for (unsigned i = 0; i < 16; ++i)
        rig.memory.write(0x8000 + 4 * i, 0xab00 + i);
    b.addReceiveBuffer(0x9000, 256);

    bool received = false;
    b.setReceiveHandler([&](Addr addr, unsigned bytes) {
        EXPECT_EQ(addr, 0x9000u);
        EXPECT_EQ(bytes, 64u);
        received = true;
    });
    bool sent = false;
    a.transmit(0x8000, 64, [&](IoStatus) { sent = true; });
    rig.runUntil(received);
    EXPECT_TRUE(sent);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(rig.memory.read(0x9000 + 4 * i), 0xab00 + i);
    EXPECT_EQ(a.txPackets.value(), 1u);
    EXPECT_EQ(b.rxPackets.value(), 1u);
}

TEST(Ethernet, WireRateBoundsThroughput)
{
    IoRig rig;
    EthernetController a(rig.sim, rig.qbus, "net0");
    // 10 packets of 1500 bytes at 10 Mbit/s ~ 12 ms minimum.
    int sent = 0;
    for (int i = 0; i < 10; ++i)
        a.transmit(0x8000, 1500, [&](IoStatus) { ++sent; });
    const Cycle start = rig.sim.now();
    while (sent < 10)
        rig.sim.run(1000);
    const double seconds = (rig.sim.now() - start) * 100e-9;
    const double mbps = 10 * 1500 * 8 / seconds / 1e6;
    EXPECT_LE(mbps, 10.0);
    EXPECT_GT(mbps, 6.0);  // DMA adds overhead but not 2x
}

TEST(Ethernet, DropsWithoutReceiveBuffer)
{
    IoRig rig;
    EthernetController a(rig.sim, rig.qbus, "net0");
    EthernetController b(rig.sim, rig.qbus, "net1");
    a.connectTo(&b);
    bool sent = false;
    a.transmit(0x8000, 64, [&](IoStatus) { sent = true; });
    rig.runUntil(sent);
    rig.sim.run(10000);
    EXPECT_EQ(b.rxDropped.value(), 1u);
    EXPECT_EQ(b.rxPackets.value(), 0u);
}

TEST(Disk, WriteThenReadRoundTrips)
{
    IoRig rig;
    DiskController disk(rig.sim, rig.qbus, "disk");

    // Prepare a buffer in memory, write it to sector 100.
    for (unsigned i = 0; i < 128; ++i)
        rig.memory.write(0xa000 + 4 * i, 0x1000 + i);
    bool wrote = false;
    disk.write(100, 1, 0xa000, [&](IoStatus) { wrote = true; });
    rig.runUntil(wrote);
    EXPECT_EQ(disk.peekWord(100, 5), 0x1005u);

    // Read it back into a different buffer.
    bool read_done = false;
    disk.read(100, 1, 0xb000, [&](IoStatus) { read_done = true; });
    rig.runUntil(read_done);
    for (unsigned i = 0; i < 128; ++i)
        EXPECT_EQ(rig.memory.read(0xb000 + 4 * i), 0x1000 + i);
}

TEST(Disk, SeeksCostTime)
{
    IoRig rig;
    DiskController disk(rig.sim, rig.qbus, "disk");
    const auto &geom = disk.config().geometry;

    bool done = false;
    disk.read(0, 1, 0xa000, [&](IoStatus) { done = true; });
    rig.runUntil(done);
    const Cycle near_time = rig.sim.now();

    done = false;
    // Far cylinder: geometry-maximal seek.
    disk.read((geom.cylinders - 1) * geom.heads * geom.sectorsPerTrack,
              1, 0xa000, [&](IoStatus) { done = true; });
    rig.runUntil(done);
    const Cycle far_elapsed = rig.sim.now() - near_time;

    // A full-stroke seek (4 + 0.03*1023 ~ 35 ms) dominates.
    EXPECT_GT(far_elapsed, 300'000u);  // > 30 ms
}

TEST(Disk, QueuedRequestsAllComplete)
{
    IoRig rig;
    DiskController disk(rig.sim, rig.qbus, "disk");
    int completed = 0;
    for (unsigned i = 0; i < 8; ++i)
        disk.write(i * 50, 1, 0xa000, [&](IoStatus) { ++completed; });
    const Cycle deadline = rig.sim.now() + 50'000'000;
    while (completed < 8 && rig.sim.now() < deadline)
        rig.sim.run(10000);
    EXPECT_EQ(completed, 8);
    EXPECT_EQ(disk.writes.value(), 8u);
    EXPECT_EQ(disk.sectorsMoved.value(), 8u);
}

TEST(Disk, DmaTrafficFlowsThroughIoCache)
{
    IoRig rig;
    DiskController disk(rig.sim, rig.qbus, "disk");
    const auto dma_before = rig.caches[0]->dmaReads.value() +
                            rig.caches[0]->dmaWrites.value();
    bool done = false;
    disk.read(10, 2, 0xa000, [&](IoStatus) { done = true; });
    rig.runUntil(done);
    const auto dma_after = rig.caches[0]->dmaReads.value() +
                           rig.caches[0]->dmaWrites.value();
    EXPECT_GE(dma_after - dma_before, 256u);  // 2 sectors of words
}
