/**
 * @file
 * The Section 5.2 queueing model must reproduce the paper's printed
 * numbers: the closed-form coefficients, every row of Table 1, and
 * the "perhaps nine processors" saturation judgement.
 */

#include <gtest/gtest.h>

#include "analytic/queueing_model.hh"

using namespace firefly;

TEST(QueueingModel, CoefficientsMatchPaper)
{
    QueueingModel model;
    // SM = 1.065/(1-L): TR * M * (1+D) * N = 2.13 * .2 * 1.25 * 2.
    EXPECT_NEAR(model.sm(0.0), 1.065, 1e-9);
    // SW = .08/(1-L): DW * S * N = .4 * .1 * 2.
    EXPECT_NEAR(model.sw(0.0), 0.08, 1e-9);
    // SP = .85 L (paper rounds 2.13 * .8 / 2 = .852).
    EXPECT_NEAR(model.sp(1.0), 0.852, 1e-9);
    // NP = L * TPI / 1.145.
    EXPECT_NEAR(2.0 * model.busOpsPerInstruction(), 1.145, 1e-3);
}

TEST(QueueingModel, TpiAtZeroLoadIsBase)
{
    QueueingModel model;
    EXPECT_NEAR(model.tpi(0.0), 11.9 + 1.065 + 0.08, 1e-6);
}

TEST(QueueingModel, Table1MatchesPaper)
{
    QueueingModel model;
    const auto rows = model.table1();
    ASSERT_EQ(rows.size(), 6u);

    // Paper Table 1 (NP=2's L is ~.18, derivable from RP=.89).
    const double expect_l[] = {0.18, 0.33, 0.47, 0.60, 0.70, 0.78};
    const double expect_tpi[] = {13.4, 13.9, 14.5, 15.3, 16.3, 17.7};
    const double expect_rp[] = {0.89, 0.85, 0.82, 0.78, 0.72, 0.67};
    const double expect_tp[] = {1.77, 3.43, 4.93, 6.23, 7.29, 8.07};

    for (int i = 0; i < 6; ++i) {
        SCOPED_TRACE("NP=" + std::to_string(rows[i].processors));
        EXPECT_NEAR(rows[i].processors, 2.0 * (i + 1), 1e-9);
        EXPECT_NEAR(rows[i].busLoad, expect_l[i], 0.015);
        EXPECT_NEAR(rows[i].tpi, expect_tpi[i], 0.15);
        EXPECT_NEAR(rows[i].relativePerf, expect_rp[i], 0.01);
        EXPECT_NEAR(rows[i].totalPerf, expect_tp[i], 0.06);
    }
}

TEST(QueueingModel, StandardFiveProcessorConfiguration)
{
    // "The standard five-processor configuration delivers somewhat
    // more than four times the performance of a single processor...
    // The average bus load on the standard machine is 0.4 and each
    // processor runs at about 85% of a no-wait-state system."
    QueueingModel model;
    const auto row = model.rowForProcessors(5.0);
    EXPECT_NEAR(row.busLoad, 0.40, 0.015);
    EXPECT_GT(row.totalPerf, 4.0);
    EXPECT_LT(row.totalPerf, 4.5);
    EXPECT_NEAR(row.relativePerf, 0.85, 0.015);
}

TEST(QueueingModel, SaturatesNearNineProcessors)
{
    QueueingModel model;
    const double np = model.saturationProcessors();
    EXPECT_GE(np, 8.0);
    EXPECT_LE(np, 10.0);
}

TEST(QueueingModel, LoadInversionIsConsistent)
{
    QueueingModel model;
    for (double np = 1.0; np <= 12.0; np += 0.5) {
        const double load = model.loadForProcessors(np);
        EXPECT_NEAR(model.processorsForLoad(load), np, 1e-6);
    }
}

TEST(QueueingModel, LoadMonotonicInProcessors)
{
    QueueingModel model;
    double prev = 0.0;
    for (double np = 1.0; np <= 14.0; np += 1.0) {
        const double load = model.loadForProcessors(np);
        EXPECT_GT(load, prev);
        EXPECT_LT(load, 1.0);
        prev = load;
    }
}

TEST(QueueingModel, DiminishingReturns)
{
    // Total performance grows but per-processor performance falls.
    QueueingModel model;
    double prev_tp = 0.0, prev_rp = 1.1;
    for (double np = 1.0; np <= 12.0; np += 1.0) {
        const auto row = model.rowForProcessors(np);
        EXPECT_GT(row.totalPerf, prev_tp);
        EXPECT_LT(row.relativePerf, prev_rp);
        prev_tp = row.totalPerf;
        prev_rp = row.relativePerf;
    }
}

TEST(QueueingModel, LowerMissRateRaisesCapacity)
{
    // The CVAX design bet: a bigger cache (lower M) compensates for a
    // faster processor on the same 10 MB/s bus.
    QueueModelParams better;
    better.missRate = 0.1;
    QueueingModel base, improved(better);
    EXPECT_LT(improved.loadForProcessors(5.0),
              base.loadForProcessors(5.0));
    EXPECT_GT(improved.rowForProcessors(8.0).totalPerf,
              base.rowForProcessors(8.0).totalPerf);
}

TEST(QueueingModel, MoreSharingCostsPerformance)
{
    QueueModelParams heavy;
    heavy.sharedWriteFrac = 0.33;  // Table 2's measured exerciser
    QueueingModel base, shared(heavy);
    EXPECT_LT(shared.rowForProcessors(5.0).totalPerf,
              base.rowForProcessors(5.0).totalPerf);
}

TEST(ClosedModel, AgreesWithOpenModelAtLightLoad)
{
    QueueingModel model;
    for (unsigned np : {1u, 2u, 3u}) {
        const auto open = model.rowForProcessors(np);
        const auto closed = model.closedRowForProcessors(np);
        EXPECT_NEAR(closed.tpi, open.tpi, open.tpi * 0.05) << np;
        EXPECT_NEAR(closed.busLoad, open.busLoad, 0.03) << np;
    }
}

TEST(ClosedModel, BoundedPopulationNeverSaturates)
{
    // The open model cannot be evaluated past the load asymptote;
    // the closed model stays meaningful at any population.
    QueueingModel model;
    for (unsigned np : {8u, 12u, 20u, 40u}) {
        const auto row = model.closedRowForProcessors(np);
        EXPECT_LT(row.busLoad, 1.0) << np;
        EXPECT_GT(row.busLoad, 0.0) << np;
        EXPECT_GT(row.totalPerf, 0.0) << np;
    }
}

TEST(ClosedModel, LessPessimisticThanOpenAtHighLoad)
{
    // "This is not accurate at high loads, since the number of
    // caches requesting service is bounded" - the open model
    // overestimates queueing once the population bound matters.
    QueueingModel model;
    const auto open = model.rowForProcessors(12.0);
    const auto closed = model.closedRowForProcessors(12);
    EXPECT_LE(closed.tpi, open.tpi * 1.02);
    EXPECT_GE(closed.totalPerf, open.totalPerf * 0.98);
}

TEST(ClosedModel, ThroughputMonotoneInProcessors)
{
    QueueingModel model;
    double prev = 0.0;
    for (unsigned np = 1; np <= 16; ++np) {
        const auto row = model.closedRowForProcessors(np);
        EXPECT_GT(row.totalPerf, prev);
        prev = row.totalPerf;
    }
}
