/**
 * @file
 * Behavioural tests shared by all five coherence protocols, plus
 * protocol-specific checks for the four baselines (Dragon, WTI,
 * Berkeley, MESI).  The shared tests are parameterized over protocol
 * and line size and assert the properties every protocol must give
 * the software: reads see the most recent write, copies agree, and
 * flushed memory matches the program's history.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

constexpr Addr kA = 0x2000;
constexpr Addr kB = 0x2000 + 16 * 1024;  // same index as kA (16 KB)

/** All-valid-copies-agree invariant, protocol independent. */
void
expectCopiesAgree(const TestRig &rig, Addr addr)
{
    bool have = false;
    Word value = 0;
    for (const auto &cache : rig.caches) {
        if (!cache->holds(addr))
            continue;
        const Word w =
            cache->lineAt(addr).data[(addr - cache->lineAt(addr).base) / 4];
        if (!have) {
            value = w;
            have = true;
        } else {
            ASSERT_EQ(w, value) << "caches disagree at 0x" << std::hex
                                << addr;
        }
    }
}

} // namespace

class ProtocolBehaviour
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, Addr>>
{
  protected:
    ProtocolKind kind() const { return std::get<0>(GetParam()); }
    Cache::Geometry
    geometry() const
    {
        return {16 * 1024, std::get<1>(GetParam())};
    }
};

TEST_P(ProtocolBehaviour, ReadReturnsMemoryValue)
{
    TestRig rig(kind(), 3, geometry());
    rig.memory.write(kA, 0xfeed);
    EXPECT_EQ(rig.read(0, kA), 0xfeedu);
}

TEST_P(ProtocolBehaviour, ReadAfterWriteSameCpu)
{
    TestRig rig(kind(), 3, geometry());
    rig.write(0, kA, 11);
    EXPECT_EQ(rig.read(0, kA), 11u);
    rig.write(0, kA, 12);
    EXPECT_EQ(rig.read(0, kA), 12u);
}

TEST_P(ProtocolBehaviour, ReadAfterWriteOtherCpu)
{
    TestRig rig(kind(), 3, geometry());
    rig.write(0, kA, 21);
    EXPECT_EQ(rig.read(1, kA), 21u);
    EXPECT_EQ(rig.read(2, kA), 21u);
}

TEST_P(ProtocolBehaviour, WriteOverRemoteDirty)
{
    TestRig rig(kind(), 3, geometry());
    rig.write(0, kA, 1);
    rig.write(0, kA, 2);  // likely dirty in cache 0
    rig.write(1, kA, 3);
    EXPECT_EQ(rig.read(0, kA), 3u);
    EXPECT_EQ(rig.read(2, kA), 3u);
    expectCopiesAgree(rig, kA);
}

TEST_P(ProtocolBehaviour, PingPongWritersConverge)
{
    TestRig rig(kind(), 2, geometry());
    for (Word i = 0; i < 20; ++i)
        rig.write(i % 2, kA, 100 + i);
    EXPECT_EQ(rig.read(0, kA), 119u);
    EXPECT_EQ(rig.read(1, kA), 119u);
    expectCopiesAgree(rig, kA);
}

TEST_P(ProtocolBehaviour, ConflictEvictionPreservesData)
{
    TestRig rig(kind(), 2, geometry());
    rig.write(0, kA, 31);
    rig.write(0, kB, 32);  // may evict kA (same index)
    rig.write(0, kA, 33);  // may evict kB
    EXPECT_EQ(rig.read(0, kB), 32u);
    EXPECT_EQ(rig.read(0, kA), 33u);
    EXPECT_EQ(rig.read(1, kA), 33u);
    EXPECT_EQ(rig.read(1, kB), 32u);
}

TEST_P(ProtocolBehaviour, FlushLeavesMemoryCurrent)
{
    TestRig rig(kind(), 3, geometry());
    rig.write(0, kA, 41);
    rig.write(1, kA, 42);
    rig.write(1, kA + 8, 43);
    rig.write(2, kB, 44);
    for (auto &cache : rig.caches)
        cache->flushFunctional();
    EXPECT_EQ(rig.memory.read(kA), 42u);
    EXPECT_EQ(rig.memory.read(kA + 8), 43u);
    EXPECT_EQ(rig.memory.read(kB), 44u);
}

TEST_P(ProtocolBehaviour, ReadersThenSingleWriter)
{
    TestRig rig(kind(), 3, geometry());
    rig.memory.write(kA, 7);
    EXPECT_EQ(rig.read(0, kA), 7u);
    EXPECT_EQ(rig.read(1, kA), 7u);
    EXPECT_EQ(rig.read(2, kA), 7u);
    rig.write(1, kA, 8);
    EXPECT_EQ(rig.read(0, kA), 8u);
    EXPECT_EQ(rig.read(2, kA), 8u);
    expectCopiesAgree(rig, kA);
}

TEST_P(ProtocolBehaviour, InterleavedAddressesStayIndependent)
{
    TestRig rig(kind(), 2, geometry());
    for (Word i = 0; i < 8; ++i)
        rig.write(0, kA + 4 * i, 200 + i);
    for (Word i = 0; i < 8; ++i)
        EXPECT_EQ(rig.read(1, kA + 4 * i), 200 + i);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolBehaviour,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::Firefly, ProtocolKind::Dragon,
                          ProtocolKind::WriteThroughInvalidate,
                          ProtocolKind::Berkeley, ProtocolKind::Mesi),
        ::testing::Values(Addr{4}, Addr{16})),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_line" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Protocol-specific expectations.
// ---------------------------------------------------------------------------

TEST(WtiProtocol, EveryWriteGoesToTheBus)
{
    TestRig rig(ProtocolKind::WriteThroughInvalidate, 2);
    rig.read(0, kA);
    for (Word i = 0; i < 5; ++i)
        rig.write(0, kA, i);
    EXPECT_EQ(rig.bus->stats().get("writes"), 5.0);
    // Memory is always current under write-through.
    EXPECT_EQ(rig.memory.read(kA), 4u);
}

TEST(WtiProtocol, ObservedWriteInvalidates)
{
    TestRig rig(ProtocolKind::WriteThroughInvalidate, 2);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.write(0, kA, 9);
    EXPECT_EQ(rig.state(1, kA), LineState::Invalid);
    EXPECT_EQ(rig.caches[1]->invalidationsReceived.value(), 1u);
    // The reload costs an extra miss - the paper's argument against
    // write-through for multiprocessors.
    const auto misses = rig.caches[1]->readMisses.value();
    EXPECT_EQ(rig.read(1, kA), 9u);
    EXPECT_EQ(rig.caches[1]->readMisses.value(), misses + 1);
}

TEST(WtiProtocol, NoVictimWritesEver)
{
    TestRig rig(ProtocolKind::WriteThroughInvalidate, 1);
    rig.write(0, kA, 1);
    rig.write(0, kB, 2);
    rig.read(0, kA);
    rig.read(0, kB);
    EXPECT_EQ(rig.caches[0]->victimWrites.value(), 0u);
}

TEST(DragonProtocol, UpdateLeavesMemoryStale)
{
    TestRig rig(ProtocolKind::Dragon, 2);
    rig.memory.write(kA, 1);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.write(0, kA, 2);  // bus update, not write-through
    EXPECT_EQ(rig.read(1, kA), 2u);          // sharer updated
    EXPECT_EQ(rig.memory.read(kA), 1u);      // memory stale
    EXPECT_EQ(rig.state(0, kA), LineState::SharedDirty);  // Sm owner
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);       // Sc
    EXPECT_EQ(rig.caches[0]->updatesSent.value(), 1u);
}

TEST(DragonProtocol, OwnerSuppliesAndWritesBackOnEviction)
{
    TestRig rig(ProtocolKind::Dragon, 2);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.write(0, kA, 5);  // cache 0 is Sm owner
    rig.write(0, kB, 6);  // evicts the Sm line -> victim write
    EXPECT_EQ(rig.caches[0]->victimWrites.value(), 1u);
    EXPECT_EQ(rig.memory.read(kA), 5u);
    // The remaining Sc copy still reads correctly.
    EXPECT_EQ(rig.read(1, kA), 5u);
}

TEST(DragonProtocol, WriterOwnershipMigrates)
{
    TestRig rig(ProtocolKind::Dragon, 2);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.write(0, kA, 1);
    EXPECT_EQ(rig.state(0, kA), LineState::SharedDirty);
    rig.write(1, kA, 2);
    // Ownership moved to cache 1; cache 0 demoted to Sc.
    EXPECT_EQ(rig.state(1, kA), LineState::SharedDirty);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
}

TEST(BerkeleyProtocol, WriteAcquiresOwnershipByInvalidation)
{
    TestRig rig(ProtocolKind::Berkeley, 3);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.read(2, kA);
    rig.write(0, kA, 9);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.state(1, kA), LineState::Invalid);
    EXPECT_EQ(rig.state(2, kA), LineState::Invalid);
    EXPECT_EQ(rig.caches[0]->invalidatesSent.value(), 1u);
    // Memory not updated: the owner holds the only copy.
    EXPECT_EQ(rig.memory.read(kA), 0u);
}

TEST(BerkeleyProtocol, OwnerSuppliesReadersAndBecomesSharedDirty)
{
    TestRig rig(ProtocolKind::Berkeley, 2);
    rig.write(0, kA, 3);
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.read(1, kA), 3u);
    EXPECT_EQ(rig.state(0, kA), LineState::SharedDirty);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    // Memory still stale; write-back happens on victimisation.
    EXPECT_EQ(rig.memory.read(kA), 0u);
    rig.write(0, kB, 4);  // evict the owned line
    EXPECT_EQ(rig.memory.read(kA), 3u);
}

TEST(BerkeleyProtocol, FillsInstallUnownedShared)
{
    TestRig rig(ProtocolKind::Berkeley, 2);
    rig.memory.write(kA, 1);
    rig.read(0, kA);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
}

TEST(MesiProtocol, ExclusiveCleanUpgradesSilently)
{
    TestRig rig(ProtocolKind::Mesi, 2);
    rig.read(0, kA);
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);  // E
    const double writes = rig.bus->stats().get("writes");
    const double invals = rig.bus->stats().get("invalidates");
    rig.write(0, kA, 4);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);  // M
    EXPECT_EQ(rig.bus->stats().get("writes"), writes);
    EXPECT_EQ(rig.bus->stats().get("invalidates"), invals);
}

TEST(MesiProtocol, SharedWriteSendsUpgrade)
{
    TestRig rig(ProtocolKind::Mesi, 2);
    rig.read(0, kA);
    rig.read(1, kA);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    rig.write(0, kA, 4);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.state(1, kA), LineState::Invalid);
    EXPECT_EQ(rig.caches[0]->invalidatesSent.value(), 1u);
}

TEST(MesiProtocol, SnoopedReadDowngradesModifiedAndCleansMemory)
{
    TestRig rig(ProtocolKind::Mesi, 2);
    rig.write(0, kA, 6);   // M via BusRdX
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.read(1, kA), 6u);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    // Illinois-style: memory captured the supplied line.
    EXPECT_EQ(rig.memory.read(kA), 6u);
}

TEST(MesiProtocol, InvalidationCausesCoherenceMissOnSharer)
{
    // The paper: invalidation protocols "perform poorly when actual
    // sharing occurs, since the invalidated information must be
    // reloaded when the CPU next references it."
    TestRig rig(ProtocolKind::Mesi, 2);
    rig.read(0, kA);
    rig.read(1, kA);
    const auto fills_before = rig.caches[1]->fills.value();
    rig.write(0, kA, 1);
    EXPECT_EQ(rig.read(1, kA), 1u);
    EXPECT_EQ(rig.caches[1]->fills.value(), fills_before + 1);
}

TEST(ProtocolFactory, MakesEveryKind)
{
    for (auto kind :
         {ProtocolKind::Firefly, ProtocolKind::Dragon,
          ProtocolKind::WriteThroughInvalidate, ProtocolKind::Berkeley,
          ProtocolKind::Mesi}) {
        auto proto = makeProtocol(kind);
        ASSERT_NE(proto, nullptr);
        EXPECT_STREQ(proto->name(), toString(kind));
    }
}

TEST(CacheGeometry, RejectsBadLineSizes)
{
    Simulator sim;
    MainMemory mem;
    mem.addModule(1 << 20);
    MBus bus(sim, mem);
    EXPECT_EXIT(
        {
            Cache c(sim, bus, makeProtocol(ProtocolKind::Firefly),
                    {16 * 1024, 3}, "bad");
        },
        ::testing::ExitedWithCode(1), "line size");
    EXPECT_EXIT(
        {
            Cache c(sim, bus, makeProtocol(ProtocolKind::Firefly),
                    {16 * 1024, 64}, "bad");
        },
        ::testing::ExitedWithCode(1), "line size");
}

TEST(CacheGeometry, SingleLineCacheStillCoherent)
{
    TestRig rig(ProtocolKind::Firefly, 2, {4, 4});  // one-line cache
    rig.write(0, kA, 1);
    rig.write(0, kA + 4, 2);  // evicts constantly
    EXPECT_EQ(rig.read(1, kA), 1u);
    EXPECT_EQ(rig.read(1, kA + 4), 2u);
}
