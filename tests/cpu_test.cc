/**
 * @file
 * CPU timing-model tests: the paper's latency rules (hit 2 ticks,
 * clean miss +1 tick, dirty miss +victim write), the VAX mix, the
 * on-chip cache filter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/onchip_cache.hh"
#include "cpu/trace_cpu.hh"
#include "cpu/vax_mix.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

/** Plays back a fixed list of steps, then halts. */
struct ScriptedSource : RefSource
{
    std::vector<CpuStep> steps;
    std::size_t pos = 0;

    CpuStep
    next() override
    {
        if (pos >= steps.size())
            return CpuStep::makeHalt();
        return steps[pos++];
    }
};

struct CpuRig : TestRig
{
    ScriptedSource source;
    std::unique_ptr<TraceCpu> cpu;

    explicit CpuRig(CpuTiming timing = CpuTiming::microVax(),
                    OnChipCache *onchip = nullptr)
        : TestRig(ProtocolKind::Firefly, 2)
    {
        cpu = std::make_unique<TraceCpu>(sim, *caches[0], source,
                                         timing, "cpu0", onchip);
    }

    /** Run until the CPU halts; returns elapsed processor ticks. */
    std::uint64_t
    runToHalt()
    {
        while (!cpu->halted())
            sim.run(1);
        return cpu->ticksElapsed();
    }
};

MemRef
readRef(Addr a)
{
    return {a, RefType::DataRead, 0};
}

MemRef
writeRef(Addr a, Word v)
{
    return {a, RefType::DataWrite, v};
}

} // namespace

TEST(VaxMix, TotalsMatchPaper)
{
    VaxMix mix;
    EXPECT_NEAR(mix.total(), 2.13, 1e-9);
}

TEST(VaxMix, DrawMatchesMeans)
{
    VaxMix mix;
    Rng rng(3);
    double ir = 0, dr = 0, dw = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const InstrRefs refs = drawInstrRefs(mix, rng);
        ir += refs.instrReads;
        dr += refs.dataReads;
        dw += refs.dataWrites;
    }
    EXPECT_NEAR(ir / n, 0.95, 0.01);
    EXPECT_NEAR(dr / n, 0.78, 0.01);
    EXPECT_NEAR(dw / n, 0.40, 0.01);
}

TEST(TraceCpu, HitTakesTwoTicks)
{
    CpuRig rig;
    // Warm the line with one miss, then two hits; the final halt
    // fetch costs one tick.
    rig.source.steps = {CpuStep::makeRef(readRef(0x100)),
                        CpuStep::makeRef(readRef(0x100)),
                        CpuStep::makeRef(readRef(0x100))};
    const auto ticks = rig.runToHalt();
    // miss(3) + hit(2) + hit(2) + halt(1)
    EXPECT_EQ(ticks, 8u);
}

TEST(TraceCpu, CleanMissAddsOneTick)
{
    CpuRig rig;
    rig.source.steps = {CpuStep::makeRef(readRef(0x100))};
    EXPECT_EQ(rig.runToHalt(), 4u);  // miss(3) + halt(1)
}

TEST(TraceCpu, DirtyMissAddsVictimWrite)
{
    CpuRig rig;
    const Addr a = 0x100;
    const Addr conflict = a + 16 * 1024;
    rig.source.steps = {
        CpuStep::makeRef(writeRef(a, 1)),     // miss: WT-allocate (3)
        CpuStep::makeRef(writeRef(a, 2)),     // hit, silent dirty (2)
        CpuStep::makeRef(readRef(conflict)),  // victim write + fill (5)
    };
    EXPECT_EQ(rig.runToHalt(), 11u);  // 3 + 2 + 5 + halt(1)
    EXPECT_EQ(rig.caches[0]->victimWrites.value(), 1u);
    EXPECT_EQ(rig.memory.read(a), 2u);
}

TEST(TraceCpu, ComputeStepsCostTheirTicks)
{
    CpuRig rig;
    rig.source.steps = {CpuStep::makeCompute(5),
                        CpuStep::makeCompute(3)};
    EXPECT_EQ(rig.runToHalt(), 9u);  // 5 + 3 + halt(1)
    EXPECT_EQ(rig.cpu->computeTickCount.value(), 8u);
}

TEST(TraceCpu, ZeroComputeStepsAreFree)
{
    CpuRig rig;
    rig.source.steps = {CpuStep::makeCompute(0), CpuStep::makeCompute(0),
                        CpuStep::makeCompute(2)};
    EXPECT_EQ(rig.runToHalt(), 3u);
}

TEST(TraceCpu, MicroVaxTicksEveryTwoCycles)
{
    CpuRig rig;
    rig.source.steps = {CpuStep::makeCompute(10)};
    rig.runToHalt();
    // 11 ticks (10 compute + halt) at 200 ns each end at cycle ~22.
    EXPECT_GE(rig.sim.now(), 21u);
    EXPECT_LE(rig.sim.now(), 23u);
}

TEST(TraceCpu, CvaxTicksEveryCycle)
{
    CpuRig rig(CpuTiming::cvax());
    rig.source.steps = {CpuStep::makeCompute(10)};
    rig.runToHalt();
    EXPECT_GE(rig.sim.now(), 10u);
    EXPECT_LE(rig.sim.now(), 12u);
}

TEST(TraceCpu, CvaxMissAddsFourCycles)
{
    // "Cache misses add four CVAX cycles to the access time."
    CpuRig rig(CpuTiming::cvax());
    rig.source.steps = {CpuStep::makeRef(readRef(0x100)),  // miss
                        CpuStep::makeRef(readRef(0x100))}; // hit
    const auto ticks = rig.runToHalt();
    // hit = 2 cvax ticks; miss = 2 + 4; halt = 1.
    EXPECT_EQ(ticks, 9u);
}

TEST(TraceCpu, HaltStopsTicking)
{
    CpuRig rig;
    rig.source.steps = {};
    rig.runToHalt();
    const auto ticks = rig.cpu->ticksElapsed();
    rig.sim.run(100);
    EXPECT_EQ(rig.cpu->ticksElapsed(), ticks);
}

TEST(TraceCpu, PrefetchChargeOverridesHitCost)
{
    CpuRig rig;
    auto fetch = CpuStep::makeRef(readRef(0x100));
    auto prefetch = CpuStep::makeRef(readRef(0x100));
    prefetch.hitCharge = 1;  // overlapped prefetch: one tick
    rig.source.steps = {fetch, prefetch, prefetch};
    EXPECT_EQ(rig.runToHalt(), 6u);  // miss(3) + 1 + 1 + halt(1)
}

TEST(OnChipCache, FiltersInstructionReads)
{
    OnChipCache oc({1024, 8, OnChipCache::DataMode::InstructionsOnly},
                   "oc");
    const MemRef iref{0x100, RefType::InstrRead, 0};
    EXPECT_FALSE(oc.access(iref));  // cold miss installs
    EXPECT_TRUE(oc.access(iref));   // now on chip
    EXPECT_TRUE(oc.access({0x104, RefType::InstrRead, 0}));  // same line
    EXPECT_EQ(oc.hits.value(), 2u);
    EXPECT_EQ(oc.misses.value(), 1u);
}

TEST(OnChipCache, InstructionsOnlyModeIgnoresData)
{
    OnChipCache oc({1024, 8, OnChipCache::DataMode::InstructionsOnly},
                   "oc");
    const MemRef dref{0x200, RefType::DataRead, 0};
    EXPECT_FALSE(oc.access(dref));
    EXPECT_FALSE(oc.access(dref));  // never cached
    EXPECT_EQ(oc.hits.value(), 0u);
}

TEST(OnChipCache, DataModeCachesDataAndCountsStaleness)
{
    OnChipCache oc({1024, 8, OnChipCache::DataMode::InstructionsAndData},
                   "oc");
    const MemRef dref{0x200, RefType::DataRead, 0};
    EXPECT_FALSE(oc.access(dref));
    EXPECT_TRUE(oc.access(dref));
    // Another processor writes the cached word on the bus: a real
    // non-snooping on-chip cache would now serve stale data.
    oc.observeBusWrite(0x200, 1);
    EXPECT_EQ(oc.staleIncidents.value(), 1u);
    EXPECT_FALSE(oc.access(dref));  // repaired by invalidation
}

TEST(OnChipCache, LocalWritesInvalidate)
{
    OnChipCache oc({1024, 8, OnChipCache::DataMode::InstructionsAndData},
                   "oc");
    oc.access({0x300, RefType::DataRead, 0});
    EXPECT_TRUE(oc.access({0x300, RefType::DataRead, 0}));
    EXPECT_FALSE(oc.access({0x300, RefType::DataWrite, 1}));
    EXPECT_FALSE(oc.access({0x300, RefType::DataRead, 0}));  // dropped
}

TEST(TraceCpu, OnChipCacheShortensInstructionFetch)
{
    OnChipCache oc({1024, 8, OnChipCache::DataMode::InstructionsOnly},
                   "oc");
    CpuRig rig(CpuTiming::cvax(), &oc);
    const MemRef iref{0x100, RefType::InstrRead, 0};
    rig.source.steps = {CpuStep::makeRef(iref),   // board miss (6)
                        CpuStep::makeRef(iref),   // on-chip hit (1)
                        CpuStep::makeRef(iref)};  // on-chip hit (1)
    EXPECT_EQ(rig.runToHalt(), 9u);  // 6 + 1 + 1 + halt(1)
    EXPECT_EQ(rig.cpu->onchipServed.value(), 2u);
}

TEST(TraceCpu, TagContentionCostsOneTick)
{
    // Two CPUs on one bus: CPU1 write-throughs constantly; CPU0 sees
    // occasional tag-busy retries.
    TestRig rig(ProtocolKind::Firefly, 2);
    ScriptedSource src0, src1;
    // Make CPU1's stream shared-write-heavy: read then many writes
    // (each a write-through because CPU0 shares the line).
    src1.steps.push_back(CpuStep::makeRef(readRef(0x100)));
    for (int i = 0; i < 200; ++i)
        src1.steps.push_back(CpuStep::makeRef(writeRef(0x100, i)));
    for (int i = 0; i < 400; ++i)
        src0.steps.push_back(CpuStep::makeRef(readRef(0x100)));

    TraceCpu cpu0(rig.sim, *rig.caches[0], src0, CpuTiming::microVax(),
                  "cpu0");
    TraceCpu cpu1(rig.sim, *rig.caches[1], src1, CpuTiming::microVax(),
                  "cpu1");
    while (!cpu0.halted() || !cpu1.halted())
        rig.sim.run(1);
    EXPECT_GT(cpu0.tagRetryTicks.value() +
                  rig.caches[0]->tagBusyRetries.value(), 0u);
}
