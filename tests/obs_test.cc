/**
 * @file
 * The flight recorder: stats-as-JSON, trace sinks, the sampler, and
 * the invariant that observing the machine never changes it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "firefly/system.hh"
#include "obs/chrome_trace.hh"
#include "obs/stat_sampler.hh"
#include "obs/text_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "topaz/runtime.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

// --- a minimal JSON parser, enough to validate our own output --------

struct Json
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;
    std::map<std::string, Json> object;
    std::vector<Json> array;
    std::string string;
    double number = 0;
    bool boolean = false;

    const Json &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const { return object.count(key); }
};

struct JsonParser
{
    const std::string &text;
    std::size_t pos = 0;

    explicit JsonParser(const std::string &t) : text(t) {}

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            throw std::runtime_error("unexpected end of JSON");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at offset " +
                                     std::to_string(pos));
        ++pos;
    }

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos != text.size())
            throw std::runtime_error("trailing garbage after JSON");
        return v;
    }

    Json
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return parseLiteral("true", true);
          case 'f': return parseLiteral("false", false);
          case 'n': {
            Json v = parseLiteral("null", false);
            v.kind = Json::Kind::Null;
            return v;
          }
          default: return parseNumber();
        }
    }

    Json
    parseLiteral(const std::string &word, bool value)
    {
        skipWs();
        if (text.compare(pos, word.size(), word) != 0)
            throw std::runtime_error("bad literal at " +
                                     std::to_string(pos));
        pos += word.size();
        Json v;
        v.kind = Json::Kind::Bool;
        v.boolean = value;
        return v;
    }

    Json
    parseString()
    {
        expect('"');
        Json v;
        v.kind = Json::Kind::String;
        while (true) {
            if (pos >= text.size())
                throw std::runtime_error("unterminated string");
            char c = text[pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                char esc = text[pos++];
                switch (esc) {
                  case '"': v.string += '"'; break;
                  case '\\': v.string += '\\'; break;
                  case '/': v.string += '/'; break;
                  case 'n': v.string += '\n'; break;
                  case 't': v.string += '\t'; break;
                  case 'r': v.string += '\r'; break;
                  case 'b': v.string += '\b'; break;
                  case 'f': v.string += '\f'; break;
                  case 'u':
                    // Our writer only emits \u00XX control escapes.
                    v.string += static_cast<char>(
                        std::stoi(text.substr(pos, 4), nullptr, 16));
                    pos += 4;
                    break;
                  default:
                    throw std::runtime_error("bad escape");
                }
            } else {
                v.string += c;
            }
        }
        return v;
    }

    Json
    parseNumber()
    {
        skipWs();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            throw std::runtime_error("bad number at " +
                                     std::to_string(pos));
        Json v;
        v.kind = Json::Kind::Number;
        v.number = std::stod(text.substr(start, pos - start));
        return v;
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.kind = Json::Kind::Array;
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            ++pos;
            if (c == ']')
                break;
            if (c != ',')
                throw std::runtime_error("expected , or ] in array");
        }
        return v;
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.kind = Json::Kind::Object;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            Json key = parseString();
            expect(':');
            v.object.emplace(key.string, parseValue());
            char c = peek();
            ++pos;
            if (c == '}')
                break;
            if (c != ',')
                throw std::runtime_error("expected , or } in object");
        }
        return v;
    }
};

Json
parseJson(const std::string &text)
{
    JsonParser parser(text);
    return parser.parse();
}

// --- StatGroup::dumpJson ---------------------------------------------

TEST(StatsJson, ParsesAndNests)
{
    FireflySystem sys(FireflyConfig::microVax(2));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(0.005);

    std::ostringstream os;
    sys.stats().dumpJson(os);
    const Json root = parseJson(os.str());

    EXPECT_EQ(root.at("name").string, "system");
    std::vector<std::string> child_names;
    for (const Json &child : root.at("children").array)
        child_names.push_back(child.at("name").string);
    for (const char *expected :
         {"cache0", "cache1", "mbus", "memory", "cpu0", "cpu1"}) {
        EXPECT_NE(std::find(child_names.begin(), child_names.end(),
                            expected),
                  child_names.end())
            << "missing child " << expected;
    }
}

TEST(StatsJson, ValuesMatchTheCounters)
{
    FireflySystem sys(FireflyConfig::microVax(2));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(0.005);

    std::ostringstream os;
    sys.stats().dumpJson(os);
    const Json root = parseJson(os.str());

    const Json *mbus = nullptr, *cache0 = nullptr;
    for (const Json &child : root.at("children").array) {
        if (child.at("name").string == "mbus")
            mbus = &child;
        if (child.at("name").string == "cache0")
            cache0 = &child;
    }
    ASSERT_NE(mbus, nullptr);
    ASSERT_NE(cache0, nullptr);

    EXPECT_EQ(mbus->at("counters").at("cycles").number,
              sys.bus().stats().get("cycles"));
    EXPECT_EQ(mbus->at("formulas").at("load").number, sys.busLoad());
    EXPECT_EQ(cache0->at("counters").at("fills").number,
              static_cast<double>(sys.cache(0).fills.value()));
    EXPECT_EQ(cache0->at("formulas").at("miss_rate").number,
              sys.cache(0).stats().get("miss_rate"));
}

TEST(StatsJson, HistogramsAndAccumulators)
{
    StatGroup group("g");
    Accumulator acc;
    Histogram hist(10, 4);
    group.addAccumulator(&acc, "lat", "latency");
    group.addHistogram(&hist, "hist", "distribution");
    acc.sample(5);
    acc.sample(15);
    hist.sample(12);
    hist.sample(99);

    std::ostringstream os;
    group.dumpJson(os);
    const Json root = parseJson(os.str());

    const Json &lat = root.at("accumulators").at("lat");
    EXPECT_EQ(lat.at("count").number, 2);
    EXPECT_EQ(lat.at("sum").number, 20);
    EXPECT_EQ(lat.at("mean").number, 10);
    EXPECT_EQ(lat.at("min").number, 5);
    EXPECT_EQ(lat.at("max").number, 15);

    const Json &h = root.at("histograms").at("hist");
    EXPECT_EQ(h.at("count").number, 2);
    EXPECT_EQ(h.at("buckets").array.at(3).number, 1);  // 12 -> [12,16)
    EXPECT_EQ(h.at("overflow").number, 1);             // 99 -> overflow
}

// Recursively find a counter by name anywhere in the exported tree.
const Json *
findCounter(const Json &node, const std::string &name)
{
    if (node.has("counters") && node.at("counters").has(name))
        return &node.at("counters").at(name);
    if (node.has("children")) {
        for (const Json &child : node.at("children").array)
            if (const Json *hit = findCounter(child, name))
                return hit;
    }
    return nullptr;
}

TEST(StatsJson, MatchesTheTextDump)
{
    // The Table-2 counters in the JSON export must equal the values
    // the classic text dump prints for the same run.
    FireflySystem sys(FireflyConfig::microVax(1));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(0.005);

    std::ostringstream text_os, json_os;
    sys.stats().dump(text_os);
    sys.stats().dumpJson(json_os);
    const std::string text = text_os.str();
    const Json root = parseJson(json_os.str());

    // First token of each dump line is the stat name, second the
    // value.  These counters appear exactly once in a 1-CPU machine.
    for (const char *name :
         {"refs_instr", "wt_mshared", "wt_no_mshared",
          "tag_busy_retries", "mshared_asserted", "cache_supplied"}) {
        int matches = 0;
        double text_value = -1;
        std::istringstream lines(text);
        std::string line;
        while (std::getline(lines, line)) {
            std::istringstream fields(line);
            std::string first;
            double value;
            if (fields >> first >> value && first == name) {
                ++matches;
                text_value = value;
            }
        }
        ASSERT_EQ(matches, 1) << name << " lines in the text dump";
        const Json *json_value = findCounter(root, name);
        ASSERT_NE(json_value, nullptr) << name;
        EXPECT_EQ(json_value->number, text_value) << name;
    }
}

TEST(StatsJson, GoldenDeterminism)
{
    // Byte-identical across runs: the export is usable as a golden
    // artefact in scripted comparisons.
    auto dump = [] {
        FireflySystem sys(FireflyConfig::microVax(3));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(0.01);
        std::ostringstream os;
        sys.stats().dumpJson(os);
        return os.str();
    };
    EXPECT_EQ(dump(), dump());
}

// --- the Chrome trace sink -------------------------------------------

std::string
tracedRun(unsigned cpus = 2, double seconds = 0.003)
{
    std::ostringstream trace;
    {
        obs::ChromeTraceSink sink(trace);
        obs::ScopedTraceSink attach(&sink);
        FireflySystem sys(FireflyConfig::microVax(cpus));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(seconds);
        sink.close();
    }
    return trace.str();
}

TEST(ChromeTrace, WellFormedRecords)
{
    const Json root = parseJson(tracedRun());
    ASSERT_EQ(root.kind, Json::Kind::Array);
    ASSERT_GT(root.array.size(), 100u);

    for (const Json &rec : root.array) {
        ASSERT_TRUE(rec.has("ph"));
        ASSERT_TRUE(rec.has("ts"));
        ASSERT_TRUE(rec.has("pid"));
        ASSERT_TRUE(rec.has("tid"));
        const std::string &ph = rec.at("ph").string;
        ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i" || ph == "M")
            << "unexpected phase " << ph;
        if (ph == "B" || ph == "i")
            ASSERT_TRUE(rec.has("name"));
    }
}

TEST(ChromeTrace, CoversTheSubsystems)
{
    const Json root = parseJson(tracedRun());
    std::map<std::string, int> categories;
    std::vector<std::string> track_names;
    for (const Json &rec : root.array) {
        if (rec.at("ph").string == "M") {
            track_names.push_back(
                rec.at("args").at("name").string);
            continue;
        }
        ++categories[rec.at("cat").string];
    }
    EXPECT_GT(categories["MBus"], 0);
    EXPECT_GT(categories["Cache"], 0);
    EXPECT_GT(categories["Cpu"], 0);
    for (const char *track : {"mbus", "cache0", "cache1", "cpu0"}) {
        EXPECT_NE(std::find(track_names.begin(), track_names.end(),
                            track),
                  track_names.end())
            << "missing track " << track;
    }
}

TEST(ChromeTrace, NondecreasingTimestampsPerTrack)
{
    const Json root = parseJson(tracedRun());
    std::map<double, double> last_ts;  // tid -> last ts
    for (const Json &rec : root.array) {
        if (rec.at("ph").string == "M")
            continue;
        const double tid = rec.at("tid").number;
        const double ts = rec.at("ts").number;
        auto it = last_ts.find(tid);
        if (it != last_ts.end())
            ASSERT_GE(ts, it->second) << "ts went backwards on tid "
                                      << tid;
        last_ts[tid] = ts;
    }
}

TEST(ChromeTrace, ConcatenatesSequentialRuns)
{
    // Two machines recorded into one sink: the second's cycle counter
    // restarts at zero, but the output timeline must keep moving
    // forward (Perfetto rejects time travel).
    std::ostringstream trace;
    {
        obs::ChromeTraceSink sink(trace);
        obs::ScopedTraceSink attach(&sink);
        for (int run = 0; run < 2; ++run) {
            FireflySystem sys(FireflyConfig::microVax(1));
            sys.attachSyntheticWorkload(SyntheticConfig{});
            sys.run(0.001);
        }
        sink.close();
    }
    const Json root = parseJson(trace.str());
    std::map<double, double> last_ts;
    for (const Json &rec : root.array) {
        if (rec.at("ph").string == "M")
            continue;
        const double tid = rec.at("tid").number;
        auto it = last_ts.find(tid);
        if (it != last_ts.end())
            ASSERT_GE(rec.at("ts").number, it->second);
        last_ts[tid] = rec.at("ts").number;
    }
}

TEST(ChromeTrace, SchedulerAndRpcEventsAppear)
{
    std::ostringstream trace;
    {
        obs::ChromeTraceSink sink(trace);
        obs::ScopedTraceSink attach(&sink);
        FireflySystem sys(FireflyConfig::microVax(2));
        TopazConfig tc;
        tc.cpus = 2;
        TopazRuntime runtime(tc);
        ExerciserParams params;
        params.threads = 4;
        params.iterations = 5;
        buildThreadsExerciser(runtime, params);
        std::vector<RefSource *> sources{&runtime.port(0),
                                         &runtime.port(1)};
        sys.attachSources(sources);
        sys.runToCompletion(5'000'000);
        sink.close();
    }
    const Json root = parseJson(trace.str());
    int sched = 0;
    std::vector<std::string> names;
    for (const Json &rec : root.array) {
        if (rec.at("ph").string == "M")
            continue;
        if (rec.at("cat").string == "Sched") {
            ++sched;
            names.push_back(rec.at("name").string);
        }
    }
    EXPECT_GT(sched, 0);
    EXPECT_NE(std::find(names.begin(), names.end(), "ready"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "dispatch"),
              names.end());
}

// --- observing must not perturb --------------------------------------

TEST(Observation, TracingDoesNotChangeTheMachine)
{
    auto statsDump = [](bool traced) {
        std::ostringstream trace;
        std::unique_ptr<obs::ChromeTraceSink> sink;
        std::unique_ptr<obs::ScopedTraceSink> attach;
        if (traced) {
            sink = std::make_unique<obs::ChromeTraceSink>(trace);
            attach = std::make_unique<obs::ScopedTraceSink>(sink.get());
        }
        FireflySystem sys(FireflyConfig::microVax(5));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(0.01);
        std::ostringstream os;
        sys.stats().dumpJson(os);
        return os.str();
    };
    EXPECT_EQ(statsDump(false), statsDump(true));
}

// --- the text sink ----------------------------------------------------

TEST(TextTrace, FiltersOnDebugFlags)
{
    resetDebugFlagsForTest();
    std::ostringstream out;
    obs::TextTraceSink sink(out);
    obs::ScopedTraceSink attach(&sink);

    obs::traceSink()->instant(10, obs::kCatMBus, "mbus", "request");
    EXPECT_EQ(sink.linesPrinted(), 0u) << "no flags: nothing prints";

    setDebugFlags("MBus");
    obs::traceSink()->instant(11, obs::kCatMBus, "mbus", "request",
                              {{"addr", "0x40"}});
    obs::traceSink()->instant(12, obs::kCatCache, "cache0", "fill");
    EXPECT_EQ(sink.linesPrinted(), 1u) << "only MBus is enabled";

    const std::string text = out.str();
    EXPECT_NE(text.find("[MBus]"), std::string::npos);
    EXPECT_NE(text.find("mbus"), std::string::npos);
    EXPECT_NE(text.find("addr=0x40"), std::string::npos);
    EXPECT_EQ(text.find("cache0"), std::string::npos);
    resetDebugFlagsForTest();
}

// --- the stat sampler -------------------------------------------------

TEST(StatSampler, RecordsLevelsAndDeltas)
{
    FireflySystem sys(FireflyConfig::microVax(1));
    sys.attachSyntheticWorkload(SyntheticConfig{});

    obs::StatSampler sampler(sys.simulator(), 1000);
    sampler.addStat(sys.bus().stats(), "cycles");
    sampler.addStat(sys.bus().stats(), "busy_cycles",
                    obs::StatSampler::Mode::Delta, "busy_delta");
    sys.run(0.001);  // 10'000 cycles

    ASSERT_EQ(sampler.channelCount(), 2u);
    ASSERT_GE(sampler.sampleCount(), 10u);

    // Levels are cumulative and the bus counts every cycle, so
    // consecutive samples differ by exactly one period.
    const auto &cycles = sampler.series(0);
    EXPECT_EQ(cycles.at(5) - cycles.at(0), 5000);
    EXPECT_EQ(cycles.at(1) - cycles.at(0), 1000);

    // Deltas sum (from a zero start) back to the final level.
    const auto &busy = sampler.series(1);
    double total = 0;
    for (double d : busy)
        total += d;
    EXPECT_LE(total, sys.bus().stats().get("busy_cycles"));
    EXPECT_GT(total, 0);
}

TEST(StatSampler, CsvAndJsonOutputs)
{
    FireflySystem sys(FireflyConfig::microVax(1));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    obs::StatSampler sampler(sys.simulator(), 2000);
    sampler.addStat(sys.bus().stats(), "cycles");
    sampler.addProbe("load", [&] { return sys.busLoad(); });
    sys.run(0.001);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    const std::string text = csv.str();
    EXPECT_EQ(text.rfind("cycle,mbus.cycles,load", 0), 0u)
        << "CSV header: " << text.substr(0, 40);
    EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 3);

    std::ostringstream js;
    sampler.writeJson(js);
    const Json root = parseJson(js.str());
    EXPECT_EQ(root.at("period").number, 2000);
    EXPECT_EQ(root.at("cycles").array.size(),
              sampler.sampleCount());
    EXPECT_EQ(root.at("series").at("load").array.size(),
              sampler.sampleCount());
}

} // namespace
