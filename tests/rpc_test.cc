/**
 * @file
 * RPC transport tests: pipelining behaviour and the Section 6
 * bandwidth claim's shape (more outstanding calls -> more bandwidth,
 * saturating at the server's service rate).
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "topaz/rpc.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

struct RpcRig : TestRig
{
    QBus qbus;
    EthernetController nic;

    RpcRig()
        : TestRig(ProtocolKind::Firefly, 1),
          qbus(sim, *caches[0], 16 * 1024 * 1024),
          nic(sim, qbus, "net0")
    {
        qbus.identityMap();
    }

    double
    run(unsigned threads, double seconds = 0.5)
    {
        RpcEngine::Config cfg;
        cfg.threads = threads;
        RpcEngine rpc(sim, qbus, nic, cfg);
        rpc.start();
        sim.run(secondsToCycles(seconds));
        EXPECT_GT(rpc.callsCompleted.value(), 0u);
        return rpc.bandwidthMbps();
    }
};

} // namespace

TEST(Rpc, SingleThreadCompletesCalls)
{
    RpcRig rig;
    RpcEngine::Config cfg;
    cfg.threads = 1;
    RpcEngine rpc(rig.sim, rig.qbus, rig.nic, cfg);
    rpc.start();
    rig.sim.run(secondsToCycles(0.1));
    EXPECT_GT(rpc.callsCompleted.value(), 10u);
    EXPECT_NEAR(rpc.averageOutstanding(), 1.0, 0.05);
    rpc.stop();
}

TEST(Rpc, BandwidthGrowsWithThreadsThenSaturates)
{
    RpcRig rig1, rig3, rig8;
    const double one = rig1.run(1);
    const double three = rig3.run(3);
    const double eight = rig8.run(8);
    EXPECT_GT(three, one * 1.4);       // pipelining wins
    EXPECT_LT(eight, three * 1.35);    // but the server saturates
    EXPECT_GT(eight, three * 0.95);
}

TEST(Rpc, ThreeThreadsNearPaperBandwidth)
{
    // "4.6 megabits per second using an average of three concurrent
    // threads" - the model is calibrated to land in that band.
    RpcRig rig;
    const double mbps = rig.run(3, 1.0);
    EXPECT_GT(mbps, 3.8);
    EXPECT_LT(mbps, 5.4);
}

TEST(Rpc, RepliesLandInMemory)
{
    RpcRig rig;
    RpcEngine::Config cfg;
    cfg.threads = 1;
    RpcEngine rpc(rig.sim, rig.qbus, rig.nic, cfg);
    rpc.start();
    rig.sim.run(secondsToCycles(0.05));
    rpc.stop();
    // The reply pattern was DMAed into the rx buffer.
    EXPECT_EQ(rig.memory.read(cfg.bufferBase + 2048), 0xaa55aa55u);
}

TEST(Rpc, WireTrafficIsAccounted)
{
    RpcRig rig;
    RpcEngine::Config cfg;
    cfg.threads = 2;
    RpcEngine rpc(rig.sim, rig.qbus, rig.nic, cfg);
    rpc.start();
    rig.sim.run(secondsToCycles(0.2));
    rpc.stop();
    // Every completed call transmitted one request; up to `threads`
    // more may be in flight at the cut-off.
    EXPECT_GE(rig.nic.txPackets.value(), rpc.callsCompleted.value());
    EXPECT_LE(rig.nic.txPackets.value(),
              rpc.callsCompleted.value() + 2);
    EXPECT_GE(rig.nic.rxPackets.value(), rpc.callsCompleted.value());
}
