/**
 * @file
 * Whole-machine integration tests: processors, caches, bus, Topaz
 * runtime and I/O devices running together, with the invariants that
 * matter across subsystem boundaries - coherence under DMA
 * interference, fixed-priority bus behaviour, full-system
 * determinism, and the 24-bit address-space constraints.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "firefly/system.hh"
#include "io/disk.hh"
#include "io/ethernet.hh"
#include "io/mdc.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

constexpr Addr kIoBuffers = 0x0030'0000;

} // namespace

TEST(Integration, FullMachineWithAllDevices)
{
    // The standard machine with disk, network and display all active
    // while four processors run the calibrated workload.
    FireflySystem sys(FireflyConfig::microVax(4));
    sys.attachSyntheticWorkload(SyntheticConfig{});

    QBus qbus(sys.simulator(), sys.ioCache(),
              sys.config().ioAddressLimit());
    qbus.identityMap();

    DiskController disk(sys.simulator(), qbus, "disk");
    EthernetController nic(sys.simulator(), qbus, "net0");
    Mdc::Config mdc_cfg;
    mdc_cfg.queueBase = kIoBuffers;
    mdc_cfg.inputBase = kIoBuffers + 0x1000;
    Mdc mdc(sys.simulator(), qbus, mdc_cfg);
    mdc.start();

    // Keep the devices busy: periodic disk writes and rx packets.
    int disk_done = 0;
    std::function<void()> disk_loop = [&] {
        disk.write((disk_done * 64) % 1000, 2, kIoBuffers + 0x2000,
                   [&](IoStatus) {
                       ++disk_done;
                       disk_loop();
                   });
    };
    disk_loop();
    for (int i = 0; i < 20; ++i) {
        nic.addReceiveBuffer(kIoBuffers + 0x4000 + (i % 4) * 2048,
                             2048);
        nic.injectFromWire(std::vector<Word>(375, i), 1500);
    }

    sys.run(0.05);

    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(sys.cpu(i).instructions(), 5000u);
    EXPECT_GT(disk_done, 0);
    EXPECT_GT(nic.rxPackets.value(), 0u);
    EXPECT_GE(mdc.deposits.value(), 2u);
    EXPECT_GT(sys.busLoad(), 0.2);
    EXPECT_LT(sys.busLoad(), 1.0);
}

TEST(Integration, LockedCountersExactUnderDmaInterference)
{
    // The strongest cross-subsystem invariant: Topaz lock-protected
    // counters (real read-modify-writes) stay exact while DMA
    // hammers the same memory system through the I/O cache.
    FireflySystem sys(FireflyConfig::microVax(3));
    TopazConfig tc;
    tc.cpus = 3;
    TopazRuntime runtime(tc);
    ExerciserParams params;
    params.threads = 6;
    params.iterations = 60;
    const auto expected = buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < 3; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);

    QBus qbus(sys.simulator(), sys.ioCache(),
              sys.config().ioAddressLimit());
    qbus.identityMap();
    std::function<void()> feed = [&] {
        qbus.engine().writeWords(kIoBuffers,
                                 std::vector<Word>(64, 0xd0d0d0d0),
                                 [&](IoStatus) { feed(); });
    };
    feed();

    sys.runToCompletion(100'000'000);
    ASSERT_TRUE(sys.allHalted());

    for (unsigned i = 0; i < 3; ++i)
        sys.cache(i).flushFunctional();
    std::uint64_t total = 0;
    for (unsigned g = 0; g < params.groups; ++g)
        total += sys.memory().read(runtime.counterAddr(g));
    EXPECT_EQ(total, expected);
    EXPECT_EQ(runtime.deadlockBreaks.value(), 0u);
    EXPECT_GT(qbus.engine().wordsWritten.value(), 1000u);
}

TEST(Integration, FixedPriorityNeverStarvesCompletely)
{
    // The paper: fixed priority "reduces the delays incurred by high
    // priority caches at the expense of those with lower priority."
    // Under heavy load the last CPU must be slower but still make
    // progress.
    FireflySystem sys(FireflyConfig::microVax(7));
    SyntheticConfig workload;
    workload.dataReuseProb = 0.3;  // miss-heavy: saturate the bus
    workload.writeReuseProb = 0.1;
    workload.loopBranchFrac = 0.9;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.05);

    EXPECT_GT(sys.busLoad(), 0.8);
    const auto first = sys.cpu(0).instructions();
    const auto last = sys.cpu(6).instructions();
    EXPECT_GT(last, 1000u);          // no absolute starvation
    EXPECT_LE(last, first);          // but priority shows
}

TEST(Integration, WholeSystemDeterminism)
{
    auto run = [] {
        FireflySystem sys(FireflyConfig::microVax(5));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        QBus qbus(sys.simulator(), sys.ioCache(),
                  sys.config().ioAddressLimit());
        qbus.identityMap();
        DiskController disk(sys.simulator(), qbus, "disk");
        bool done = false;
        disk.write(123, 4, kIoBuffers, [&](IoStatus) { done = true; });
        sys.run(0.03);
        std::ostringstream os;
        sys.stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(run(), run());
}

TEST(Integration, StatsDumpCoversTheMachine)
{
    FireflySystem sys(FireflyConfig::microVax(2));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(0.01);
    std::ostringstream os;
    sys.stats().dump(os);
    const std::string text = os.str();
    for (const char *needle :
         {"cache0:", "cache1:", "cpu0:", "mbus:", "mem0:",
          "busy_cycles", "miss_rate", "wt_mshared"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(Integration, CvaxMachineUsesHighMemory)
{
    // 128 MB machine: processors can use memory beyond the I/O
    // processor's 16 MB window.
    auto cfg = FireflyConfig::cvax(2);
    cfg.memoryBytes = 128 * 1024 * 1024;
    FireflySystem sys(cfg);
    SyntheticConfig workload;
    workload.privateBase = 100 * 1024 * 1024;  // far beyond 16 MB
    workload.codeBase = 96 * 1024 * 1024;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.01);
    EXPECT_GT(sys.cpu(0).instructions(), 1000u);
    EXPECT_GT(sys.cpu(1).instructions(), 1000u);
}

TEST(IntegrationDeathTest, DmaCannotReachHighMemory)
{
    // ...but DMA cannot: "the CPU serving as the I/O processor and
    // the DMA devices can access only the first 16 megabytes."
    auto cfg = FireflyConfig::cvax(1);
    cfg.memoryBytes = 128 * 1024 * 1024;
    FireflySystem sys(cfg);
    EXPECT_EXIT(
        {
            DmaEngine engine(sys.simulator(), sys.ioCache(),
                             sys.config().ioAddressLimit());
            engine.writeWords(32 * 1024 * 1024, {1}, [](IoStatus) {});
        },
        ::testing::ExitedWithCode(1), "I/O processor");
}

TEST(Integration, WorkloadBeyondMemoryIsFatal)
{
    FireflySystem sys(FireflyConfig::microVax(5));
    SyntheticConfig workload;
    workload.privateBytes = 8 * 1024 * 1024;  // 5 CPUs won't fit 16MB
    EXPECT_EXIT(sys.attachSyntheticWorkload(workload),
                ::testing::ExitedWithCode(1), "exceeds memory");
}

TEST(Integration, PipelineAndMakeTogether)
{
    // Two different workload structures sharing one machine's
    // runtime: a pipeline and a parallel make coexist.
    FireflySystem sys(FireflyConfig::microVax(4));
    TopazConfig tc;
    tc.cpus = 4;
    TopazRuntime runtime(tc);
    buildPipeline(runtime, {3, 40, 30});
    buildParallelMake(runtime, {4, 2000, 16});
    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < 4; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);
    sys.runToCompletion(100'000'000);
    EXPECT_TRUE(sys.allHalted());
    EXPECT_EQ(runtime.deadlockBreaks.value(), 0u);
    EXPECT_EQ(runtime.forks.value(), 4u);
}
