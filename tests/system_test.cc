/**
 * @file
 * Whole-machine tests: configuration validation, construction,
 * multiprocessor runs, and the headline 5-CPU behaviour.
 */

#include <gtest/gtest.h>

#include "firefly/system.hh"

using namespace firefly;

TEST(FireflyConfig, DefaultsMatchPaper)
{
    const auto mv = FireflyConfig::microVax();
    EXPECT_EQ(mv.processors, 5u);
    EXPECT_EQ(mv.effectiveGeometry().cacheBytes, 16u * 1024);
    EXPECT_EQ(mv.effectiveGeometry().lineBytes, 4u);
    EXPECT_EQ(mv.moduleBytes(), 4u * 1024 * 1024);
    EXPECT_FALSE(mv.onChipCacheEnabled);

    const auto cv = FireflyConfig::cvax();
    EXPECT_EQ(cv.effectiveGeometry().cacheBytes, 64u * 1024);
    EXPECT_EQ(cv.moduleBytes(), 32u * 1024 * 1024);
    EXPECT_TRUE(cv.onChipCacheEnabled);
}

TEST(FireflyConfigDeathTest, RejectsImpossibleMachines)
{
    auto too_much_memory = FireflyConfig::microVax(5);
    too_much_memory.memoryBytes = 32 * 1024 * 1024;  // > 24-bit space
    EXPECT_EXIT(too_much_memory.validate(),
                ::testing::ExitedWithCode(1), "at most 16 MB");

    auto no_cpus = FireflyConfig::microVax(0);
    EXPECT_EXIT(no_cpus.validate(), ::testing::ExitedWithCode(1),
                "1-16 processors");

    auto onchip_on_microvax = FireflyConfig::microVax(5);
    onchip_on_microvax.onChipCacheEnabled = true;
    EXPECT_EXIT(onchip_on_microvax.validate(),
                ::testing::ExitedWithCode(1), "no on-chip cache");
}

TEST(FireflySystem, BuildsStandardMachine)
{
    FireflySystem sys(FireflyConfig::microVax(5));
    EXPECT_EQ(sys.processorCount(), 5u);
    EXPECT_EQ(sys.memory().sizeBytes(), 16u * 1024 * 1024);
    EXPECT_EQ(sys.memory().moduleCount(), 4u);
    EXPECT_EQ(sys.cache(0).numLines(), 4096u);
    EXPECT_FALSE(sys.hasCpus());
}

TEST(FireflySystem, CvaxMachineHasBiggerCachesAndMemory)
{
    auto cfg = FireflyConfig::cvax(5);
    cfg.memoryBytes = 128 * 1024 * 1024;
    FireflySystem sys(cfg);
    EXPECT_EQ(sys.cache(0).numLines(), 16384u);
    EXPECT_EQ(sys.memory().moduleCount(), 4u);
    EXPECT_NE(sys.onChip(0), nullptr);
}

TEST(FireflySystem, TopologyArtDescribesTheMachine)
{
    FireflySystem sys(FireflyConfig::microVax(3));
    const std::string art = sys.topologyArt();
    EXPECT_NE(art.find("MBus"), std::string::npos);
    EXPECT_NE(art.find("QBus"), std::string::npos);
    EXPECT_NE(art.find("CPU  2"), std::string::npos);
    EXPECT_NE(art.find("3 processors"), std::string::npos);
}

TEST(FireflySystem, MultiprocessorRunSharesTheBus)
{
    FireflySystem sys(FireflyConfig::microVax(5));
    SyntheticConfig workload;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.1);

    // Every CPU made progress.
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_GT(sys.cpu(i).instructions(), 10000u);

    // The paper's standard machine: bus load around 0.4, each CPU at
    // ~85% of no-wait speed (generous bands for the synthetic).
    EXPECT_GT(sys.busLoad(), 0.25);
    EXPECT_LT(sys.busLoad(), 0.55);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_GT(sys.cpu(i).tpi(), 12.0);
        EXPECT_LT(sys.cpu(i).tpi(), 16.5);
    }
}

TEST(FireflySystem, SharedRegionActuallyShares)
{
    FireflySystem sys(FireflyConfig::microVax(4));
    SyntheticConfig workload;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.05);
    // Conditional write-through fires: some writes met MShared.
    std::uint64_t wt_shared = 0;
    for (unsigned i = 0; i < 4; ++i)
        wt_shared += sys.cache(i).wtMshared.value();
    EXPECT_GT(wt_shared, 0u);
}

TEST(FireflySystem, FixedPriorityFavoursLowerNumberedCpus)
{
    FireflySystem sys(FireflyConfig::microVax(7));
    SyntheticConfig workload;
    sys.attachSyntheticWorkload(workload);
    sys.run(0.1);
    // Under contention the lowest-priority (highest index) processor
    // must not be faster than the highest-priority one.
    EXPECT_LE(sys.cpu(6).instructions(),
              sys.cpu(0).instructions() * 105 / 100);
}

TEST(FireflySystem, MoreProcessorsMoreThroughputLessPerCpu)
{
    auto run = [](unsigned np) {
        FireflySystem sys{FireflyConfig::microVax(np)};
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(0.08);
        std::uint64_t instrs = 0;
        for (unsigned i = 0; i < np; ++i)
            instrs += sys.cpu(i).instructions();
        return std::pair{instrs, sys.busLoad()};
    };
    const auto [i1, l1] = run(1);
    const auto [i5, l5] = run(5);
    EXPECT_GT(i5, i1 * 4);       // scaling is good at five CPUs
    EXPECT_LT(i5, i1 * 5);       // but not perfect
    EXPECT_GT(l5, l1 * 3);       // the bus absorbs the load
}

TEST(FireflySystem, RunToCompletionHonoursInstructionLimit)
{
    FireflySystem sys(FireflyConfig::microVax(2));
    SyntheticConfig workload;
    workload.instructionLimit = 5000;
    sys.attachSyntheticWorkload(workload);
    sys.runToCompletion();
    EXPECT_TRUE(sys.allHalted());
    EXPECT_EQ(sys.cpu(0).instructions(), 5000u);
    EXPECT_EQ(sys.cpu(1).instructions(), 5000u);
}

TEST(FireflySystem, InterruptsReachEveryProcessor)
{
    FireflySystem sys(FireflyConfig::microVax(3));
    int count = 0;
    for (unsigned i = 0; i < 3; ++i)
        sys.interrupts().addTarget([&](unsigned) { ++count; });
    sys.interrupts().broadcast(0);
    sys.simulator().run(2);
    EXPECT_EQ(count, 2);
}
