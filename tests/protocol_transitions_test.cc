/**
 * @file
 * Per-protocol Figure 3 edge cases, driven through a 2-cache machine
 * with the coherence checker attached, asserting the exact resulting
 * line states: read-miss on a shared/dirty line, write-hit on a
 * shared line, the Firefly last-sharer reversion, and the
 * write-back-vs-DMA race on every protocol with dirty lines.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace firefly;
using firefly::test::CheckedRig;

namespace
{

constexpr Addr kA = 0x1000;

} // namespace

// --- Firefly -------------------------------------------------------------

TEST(FireflyTransitions, ReadMissOnDirtyLineSharesAndCleansMemory)
{
    CheckedRig rig(ProtocolKind::Firefly);
    rig.read(0, kA);
    rig.write(0, kA, 7);  // silent: Valid -> Dirty
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);

    EXPECT_EQ(rig.read(1, kA), 7u);
    // Firefly: the dirty holder supplies, memory captures, and both
    // ends settle Shared (shared copies are clean).
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 7u);
    rig.checker->finalCheck();
}

TEST(FireflyTransitions, WriteHitSharedWritesThroughAndStaysShared)
{
    CheckedRig rig(ProtocolKind::Firefly);
    rig.read(0, kA);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(0, kA), LineState::Shared);

    const double fills_before = rig.caches[1]->fills.value();
    rig.write(0, kA, 8);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 8u);
    // The sharer's copy was updated in place: no new fill.
    EXPECT_EQ(rig.read(1, kA), 8u);
    EXPECT_EQ(rig.caches[1]->fills.value(), fills_before);
    rig.checker->finalCheck();
}

TEST(FireflyTransitions, LastSharerRevertsAndWritesGoSilentAgain)
{
    CheckedRig rig(ProtocolKind::Firefly);
    rig.read(0, kA);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(0, kA), LineState::Shared);

    // Evict cache1's copy with a conflicting line (16 KB default
    // geometry: +16 KB maps to the same set).
    rig.read(1, kA + 16 * 1024);
    ASSERT_EQ(rig.state(1, kA), LineState::Invalid);

    // The write-through sees MShared deasserted and reverts to
    // exclusive; the next write is silent (Section 5.1's dynamic
    // sharing detection).
    rig.write(0, kA, 9);
    EXPECT_EQ(rig.state(0, kA), LineState::Valid);
    const double writes_before = rig.bus->stats().get("writes");
    rig.write(0, kA, 10);
    EXPECT_EQ(rig.state(0, kA), LineState::Dirty);
    EXPECT_EQ(rig.bus->stats().get("writes"), writes_before);
    rig.checker->finalCheck();
}

// --- Dragon --------------------------------------------------------------

TEST(DragonTransitions, ReadMissOnDirtyLineMakesOwnerSharedDirty)
{
    CheckedRig rig(ProtocolKind::Dragon);
    rig.read(0, kA);
    rig.write(0, kA, 7);
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);

    EXPECT_EQ(rig.read(1, kA), 7u);
    // Dragon: the owner supplies and keeps ownership (Sm); memory is
    // NOT updated.
    EXPECT_EQ(rig.state(0, kA), LineState::SharedDirty);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 0u);
    rig.checker->finalCheck();
}

TEST(DragonTransitions, WriteHitSharedUpdatesAndMovesOwnership)
{
    CheckedRig rig(ProtocolKind::Dragon);
    rig.read(0, kA);
    rig.write(0, kA, 7);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(0, kA), LineState::SharedDirty);

    rig.write(1, kA, 8);
    // The writer becomes the owner (Sm); the old owner demotes to a
    // clean sharer (Sc) whose copy was updated in place.
    EXPECT_EQ(rig.state(1, kA), LineState::SharedDirty);
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.read(0, kA), 8u);
    EXPECT_EQ(rig.memory.read(kA), 0u);  // still never written back
    rig.checker->finalCheck();
}

TEST(DragonTransitions, UpdateWithNoSharersRevertsToDirty)
{
    CheckedRig rig(ProtocolKind::Dragon);
    rig.read(0, kA);
    rig.read(1, kA);
    rig.write(1, kA, 8);
    ASSERT_EQ(rig.state(1, kA), LineState::SharedDirty);

    rig.read(0, kA + 16 * 1024);  // evict cache0's copy
    ASSERT_EQ(rig.state(0, kA), LineState::Invalid);
    rig.write(1, kA, 9);
    EXPECT_EQ(rig.state(1, kA), LineState::Dirty);
    rig.checker->finalCheck();
}

// --- Write-through invalidate --------------------------------------------

TEST(WtiTransitions, WriteInvalidatesEverySharer)
{
    CheckedRig rig(ProtocolKind::WriteThroughInvalidate);
    rig.read(0, kA);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(0, kA), LineState::Valid);
    ASSERT_EQ(rig.state(1, kA), LineState::Valid);

    rig.write(1, kA, 8);
    EXPECT_EQ(rig.state(1, kA), LineState::Valid);
    EXPECT_EQ(rig.state(0, kA), LineState::Invalid);
    EXPECT_EQ(rig.memory.read(kA), 8u);
    EXPECT_EQ(rig.read(0, kA), 8u);  // re-fetches from memory
    rig.checker->finalCheck();
}

// --- Berkeley ------------------------------------------------------------

TEST(BerkeleyTransitions, ReadMissOnDirtyLineLeavesOwnerResponsible)
{
    CheckedRig rig(ProtocolKind::Berkeley);
    rig.write(0, kA, 7);  // ReadOwned miss -> Dirty
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);

    EXPECT_EQ(rig.read(1, kA), 7u);
    // Berkeley: owner supplies, stays owner (SharedDirty); memory is
    // not updated.
    EXPECT_EQ(rig.state(0, kA), LineState::SharedDirty);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 0u);
    rig.checker->finalCheck();
}

TEST(BerkeleyTransitions, WriteHitSharedInvalidatesAndTakesOwnership)
{
    CheckedRig rig(ProtocolKind::Berkeley);
    rig.write(0, kA, 7);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(1, kA), LineState::Shared);

    rig.write(1, kA, 8);
    EXPECT_EQ(rig.state(1, kA), LineState::Dirty);
    EXPECT_EQ(rig.state(0, kA), LineState::Invalid);
    EXPECT_EQ(rig.memory.read(kA), 0u);  // ownership moved, no write-back
    EXPECT_EQ(rig.read(0, kA), 8u);      // supplied by the new owner
    rig.checker->finalCheck();
}

// --- MESI ----------------------------------------------------------------

TEST(MesiTransitions, ReadMissOnModifiedLineSharesAndCleansMemory)
{
    CheckedRig rig(ProtocolKind::Mesi);
    rig.read(0, kA);
    rig.write(0, kA, 7);  // E -> M, silent
    ASSERT_EQ(rig.state(0, kA), LineState::Dirty);

    EXPECT_EQ(rig.read(1, kA), 7u);
    // Illinois-style: the modified holder supplies, memory captures,
    // both end Shared.
    EXPECT_EQ(rig.state(0, kA), LineState::Shared);
    EXPECT_EQ(rig.state(1, kA), LineState::Shared);
    EXPECT_EQ(rig.memory.read(kA), 7u);
    rig.checker->finalCheck();
}

TEST(MesiTransitions, WriteHitSharedInvalidatesOthers)
{
    CheckedRig rig(ProtocolKind::Mesi);
    rig.read(0, kA);
    rig.write(0, kA, 7);
    rig.read(1, kA);
    ASSERT_EQ(rig.state(1, kA), LineState::Shared);

    rig.write(1, kA, 8);
    EXPECT_EQ(rig.state(1, kA), LineState::Dirty);
    EXPECT_EQ(rig.state(0, kA), LineState::Invalid);
    EXPECT_EQ(rig.memory.read(kA), 7u);  // invalidation carries no data
    rig.checker->finalCheck();
}

// --- Write-back vs DMA race (every protocol with dirty lines) ------------

/**
 * The race: cache1 owns a dirty line and starts evicting it; in the
 * same cycle a higher-priority DMA write (through cache0, the I/O
 * processor) lands on the line.  The DMA write commits first; the
 * victim write-back must carry the merged line (or squash itself if
 * it was invalidated), never its stale request-time data - that
 * would silently undo the DMA write.
 */
class WritebackDmaRace : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(WritebackDmaRace, PartialDmaWriteMergesIntoPendingVictim)
{
    // 8-byte lines: the DMA write covers word 0 only, so the dirty
    // word 1 must survive the merge into the write-back.
    test::CheckedRig rig(GetParam(), 2, {256, 8});
    const Addr x = 0x100;
    const Addr conflict = x + 256;  // same set, different tag

    rig.read(1, x);
    rig.write(1, x + 4, 0x11);
    ASSERT_TRUE(needsWriteback(rig.state(1, x)));

    // Queue the evicting read and the DMA write in the same cycle;
    // cache0 (the I/O position) has bus priority and goes first.
    bool evicted = false;
    auto r = rig.caches[1]->cpuAccess({conflict, RefType::DataRead, 0},
                                      [&](Word) { evicted = true; });
    ASSERT_EQ(r.outcome, Cache::AccessOutcome::Pending);
    bool dma_done = false;
    rig.caches[0]->dmaAccess({x, RefType::DataWrite, 0x22},
                             [&](Word) { dma_done = true; });
    while (!evicted || !dma_done)
        rig.sim.run(1);
    rig.sim.run(8);

    EXPECT_EQ(rig.memory.read(x), 0x22u);      // the DMA write
    EXPECT_EQ(rig.memory.read(x + 4), 0x11u);  // the dirty word
    rig.checker->finalCheck();
}

TEST_P(WritebackDmaRace, FullLineDmaWriteIsNotUndoneByVictim)
{
    // 4-byte lines: the DMA write covers the whole line.  Whether the
    // snoop updates or invalidates the victim, the write-back must
    // not roll memory back to the pre-DMA value.
    test::CheckedRig rig(GetParam(), 2, {256, 4});
    const Addr x = 0x100;
    const Addr conflict = x + 256;

    rig.read(1, x);
    rig.write(1, x, 0x11);
    ASSERT_TRUE(needsWriteback(rig.state(1, x)));

    bool evicted = false;
    auto r = rig.caches[1]->cpuAccess({conflict, RefType::DataRead, 0},
                                      [&](Word) { evicted = true; });
    ASSERT_EQ(r.outcome, Cache::AccessOutcome::Pending);
    bool dma_done = false;
    rig.caches[0]->dmaAccess({x, RefType::DataWrite, 0x22},
                             [&](Word) { dma_done = true; });
    while (!evicted || !dma_done)
        rig.sim.run(1);
    rig.sim.run(8);

    EXPECT_EQ(rig.memory.read(x), 0x22u);
    rig.checker->finalCheck();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, WritebackDmaRace,
    ::testing::Values(ProtocolKind::Firefly, ProtocolKind::Dragon,
                      ProtocolKind::Berkeley, ProtocolKind::Mesi),
    [](const ::testing::TestParamInfo<ProtocolKind> &info) {
        return std::string(toString(info.param));
    });
