/**
 * @file
 * End-to-end tests for the fault-injection subsystem (src/fault/):
 *
 *  - a seed x protocol fuzz campaign with parity, ECC, and device
 *    faults armed must stay oracle-clean, with every recoverable
 *    fault observed recovering in the flight recorder;
 *  - deliberately unrecoverable faults (double-bit ECC, parity retry
 *    budget exhaustion) must die with a deterministic machine-check
 *    diagnostic, never a hang or silent corruption;
 *  - a processor fenced mid-run must flush its dirty lines and leave
 *    an N-1 machine that keeps delivering work;
 *  - the event-queue watchdog must turn a wedged simulation into a
 *    diagnostic with the pending-event list.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzz.hh"
#include "fault/fault_injector.hh"
#include "firefly/system.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"
#include "topaz/runtime.hh"
#include "topaz/workloads.hh"

using namespace firefly;
using check::FuzzConfig;
using check::FuzzResult;
using check::runFuzz;
using fault::FaultConfig;
using fault::MachineCheck;

namespace
{

/** Captures every trace event for inspection. */
struct RecordingSink : obs::TraceSink
{
    std::vector<obs::TraceEvent> events;

    void event(const obs::TraceEvent &ev) override
    {
        events.push_back(ev);
    }

    std::size_t
    count(const std::string &name) const
    {
        std::size_t n = 0;
        for (const auto &ev : events)
            n += ev.name == name;
        return n;
    }
};

/** A fuzz config with the standard recoverable-fault campaign. */
FuzzConfig
faultyConfig(ProtocolKind protocol, std::uint64_t seed)
{
    FuzzConfig cfg;
    cfg.protocol = protocol;
    cfg.seed = seed;
    cfg.steps = 500;
    cfg.dmaFrac = 0.2;
    cfg.faults.enabled = true;
    cfg.faults.seed = seed ^ 0xFA17;
    cfg.faults.rates.busParity = 0.01;
    cfg.faults.rates.eccSingle = 0.02;
    cfg.faults.rates.deviceTimeout = 0.1;
    cfg.faults.throwOnMachineCheck = true;
    return cfg;
}

} // namespace

// The acceptance campaign: 20 seeds x 3 protocols with parity, ECC,
// and device-timeout faults all armed.  Every run must finish with
// zero oracle violations, and in aggregate every fault class must
// both fire and recover.
TEST(FaultRecovery, FuzzCampaignRecoversAcrossSeedsAndProtocols)
{
    const ProtocolKind kinds[] = {ProtocolKind::Firefly,
                                  ProtocolKind::Mesi,
                                  ProtocolKind::Dragon};
    FuzzResult total;
    for (const ProtocolKind kind : kinds) {
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            FuzzResult r;
            ASSERT_NO_THROW(r = runFuzz(faultyConfig(kind, seed)))
                << toString(kind) << " seed " << seed;
            // Every NACKed transaction either recovered or is the
            // last one still awaiting its backed-off retry.
            EXPECT_LE(r.parityErrors - r.parityRecovered, 3u)
                << toString(kind) << " seed " << seed;
            total.parityErrors += r.parityErrors;
            total.parityRecovered += r.parityRecovered;
            total.eccCorrected += r.eccCorrected;
            total.deviceTimeouts += r.deviceTimeouts;
            total.deviceRetries += r.deviceRetries;
            total.loadsChecked += r.loadsChecked;
        }
    }
    // The campaign exercised every fault class.
    EXPECT_GT(total.parityErrors, 0u);
    EXPECT_GT(total.parityRecovered, 0u);
    EXPECT_GT(total.eccCorrected, 0u);
    EXPECT_GT(total.deviceTimeouts, 0u);
    EXPECT_GT(total.deviceRetries, 0u);
    EXPECT_GT(total.loadsChecked, 0u);
}

// Every recoverable fault is visible in the flight recorder, and the
// event counts agree exactly with the injector's counters.
TEST(FaultRecovery, FlightRecorderSeesEveryFaultAndRecovery)
{
    RecordingSink sink;
    FuzzResult r;
    {
        obs::ScopedTraceSink scoped(&sink);
        FuzzConfig cfg = faultyConfig(ProtocolKind::Firefly, 42);
        cfg.faults.rates.busParity = 0.03;
        cfg.faults.rates.deviceTimeout = 0.3;
        r = runFuzz(cfg);
    }
    EXPECT_EQ(sink.count("parity-nack"), r.parityErrors);
    EXPECT_EQ(sink.count("parity-recovered"), r.parityRecovered);
    EXPECT_EQ(sink.count("ecc-corrected"), r.eccCorrected);
    EXPECT_EQ(sink.count("device-timeout"), r.deviceTimeouts);
    // The campaign rates make every class fire in this seed.
    EXPECT_GT(r.parityErrors, 0u);
    EXPECT_GT(r.parityRecovered, 0u);
    EXPECT_GT(r.eccCorrected, 0u);
    EXPECT_GT(r.deviceTimeouts, 0u);
}

// Identical seed and fault config reproduce identical fault activity.
TEST(FaultRecovery, FaultCampaignIsDeterministic)
{
    const FuzzConfig cfg = faultyConfig(ProtocolKind::Mesi, 7);
    const FuzzResult a = runFuzz(cfg);
    const FuzzResult b = runFuzz(cfg);
    EXPECT_EQ(a.parityErrors, b.parityErrors);
    EXPECT_EQ(a.parityRecovered, b.parityRecovered);
    EXPECT_EQ(a.eccCorrected, b.eccCorrected);
    EXPECT_EQ(a.deviceTimeouts, b.deviceTimeouts);
    EXPECT_EQ(a.deviceRetries, b.deviceRetries);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loadsChecked, b.loadsChecked);
}

// A double-bit ECC error is unrecoverable: deterministic machine
// check, not a hang and not a wrong value handed to a CPU.
TEST(FaultRecovery, DoubleBitEccIsDeterministicMachineCheck)
{
    FuzzConfig cfg = faultyConfig(ProtocolKind::Firefly, 3);
    cfg.faults.rates = {};
    cfg.faults.rates.eccDouble = 0.05;

    std::string first, second;
    try {
        runFuzz(cfg);
    } catch (const MachineCheck &mc) {
        first = mc.what();
        EXPECT_NE(std::string(mc.diagnostic).find("uncorrectable"),
                  std::string::npos);
    }
    ASSERT_FALSE(first.empty()) << "no machine check raised";
    try {
        runFuzz(cfg);
    } catch (const MachineCheck &mc) {
        second = mc.what();
    }
    EXPECT_EQ(first, second);
}

// Exhausting the parity retry budget is the other unrecoverable
// path: the diagnostic names the budget and reproduces exactly.
TEST(FaultRecovery, ParityBudgetExhaustionIsDeterministicMachineCheck)
{
    FuzzConfig cfg = faultyConfig(ProtocolKind::Firefly, 5);
    cfg.faults.rates = {};
    cfg.faults.rates.busParity = 1.0;  // every attempt is NACKed

    std::string first, second;
    try {
        runFuzz(cfg);
    } catch (const MachineCheck &mc) {
        first = mc.what();
        EXPECT_NE(std::string(mc.diagnostic).find("retry budget"),
                  std::string::npos);
    }
    ASSERT_FALSE(first.empty()) << "no machine check raised";
    try {
        runFuzz(cfg);
    } catch (const MachineCheck &mc) {
        second = mc.what();
    }
    EXPECT_EQ(first, second);
}

// Whole-machine wiring: FireflySystem owns the injector, the oracle
// stays clean under faults, and recovery counters land in the
// system's stat tree.
TEST(FaultRecovery, SystemRunUnderFaultsStaysCoherent)
{
    FireflyConfig cfg = FireflyConfig::microVax(3);
    cfg.coherenceCheck = true;
    cfg.faults.enabled = true;
    cfg.faults.seed = 11;
    cfg.faults.rates.busParity = 0.002;
    cfg.faults.rates.eccSingle = 0.05;

    FireflySystem sys(cfg);
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(0.01);
    sys.checker()->finalCheck();

    const fault::FaultInjector &inj = *sys.faultInjector();
    EXPECT_GT(inj.parityErrors.value(), 0u);
    EXPECT_GT(inj.eccCorrected.value(), 0u);
    EXPECT_LE(inj.parityErrors.value() - inj.parityRecovered.value(),
              cfg.processors);
    EXPECT_EQ(inj.machineChecks.value(), 0u);
    // The injector's counters are registered stats.
    EXPECT_GT(sys.faultInjector()->stats().get("parity_errors"), 0.0);
}

// An unrecoverable fault inside a full system must deliver the
// machine-check interrupt (mbus/interrupts) before the run unwinds.
TEST(FaultRecovery, MachineCheckInterruptDeliveredThroughController)
{
    FireflyConfig cfg = FireflyConfig::microVax(2);
    cfg.faults.enabled = true;
    cfg.faults.seed = 2;
    cfg.faults.rates.eccDouble = 0.01;
    cfg.faults.throwOnMachineCheck = true;

    FireflySystem sys(cfg);
    std::string unit, diag;
    sys.interrupts().setMachineCheckHandler(
        [&](const std::string &u, const std::string &d) {
            unit = u;
            diag = d;
        });
    sys.attachSyntheticWorkload(SyntheticConfig{});

    try {
        sys.run(0.05);
        FAIL() << "expected a machine check";
    } catch (const MachineCheck &mc) {
        // The interrupt fired synchronously with the same payload
        // the exception carries.
        EXPECT_EQ(unit, mc.unit);
        EXPECT_EQ(diag, mc.diagnostic);
        EXPECT_FALSE(diag.empty());
    }
    EXPECT_EQ(sys.interrupts().stats().get("machine_checks"), 1.0);
    EXPECT_EQ(sys.faultInjector()->machineChecks.value(), 1u);
}

// Fencing a processor mid-run: dirty lines flushed (oracle-verified),
// and the remaining N-1 processors keep delivering references.
TEST(FaultRecovery, CpuOfflineKeepsMachineRunning)
{
    FireflyConfig cfg = FireflyConfig::microVax(3);
    cfg.coherenceCheck = true;
    FireflySystem sys(cfg);
    sys.attachSyntheticWorkload(SyntheticConfig{});

    sys.run(0.005);
    const std::uint64_t refs_before = sys.totalCpuRefs();
    ASSERT_GT(refs_before, 0u);

    sys.offlineProcessor(2);
    EXPECT_TRUE(sys.cpu(2).halted());
    EXPECT_TRUE(sys.cache(2).idle());

    sys.run(0.005);
    // The survivors kept issuing; the fenced CPU stayed down.
    EXPECT_GT(sys.totalCpuRefs(), refs_before);
    EXPECT_TRUE(sys.cpu(2).halted());
    // No dirty data was lost at the flush.
    sys.checker()->finalCheck();
}

// Offlining under Topaz: the fenced processor's thread is requeued
// and the workload still runs to completion on N-1 CPUs.
TEST(FaultRecovery, TopazWorkloadCompletesAfterOffline)
{
    const unsigned cpus = 3;
    FireflyConfig cfg = FireflyConfig::microVax(cpus);
    cfg.coherenceCheck = true;
    FireflySystem sys(cfg);

    TopazConfig tc;
    tc.cpus = cpus;
    TopazRuntime runtime(tc);
    ExerciserParams params;
    params.threads = 8;
    params.iterations = 40;
    buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < cpus; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);

    sys.simulator().run(100'000);
    ASSERT_FALSE(runtime.done());

    // Topaz first (requeues the running thread), then the hardware.
    runtime.offlineCpu(2);
    sys.offlineProcessor(2);
    EXPECT_TRUE(sys.cpu(2).halted());

    sys.runToCompletion(100'000'000);
    EXPECT_TRUE(runtime.done());
    sys.checker()->finalCheck();
}

// The watchdog turns "no progress" into a diagnostic that lists the
// pending events instead of spinning forever.
TEST(FaultRecovery, WatchdogReportsWedgeWithPendingEvents)
{
    Simulator sim;
    sim.setWatchdog(1000, true);
    // An event far beyond the horizon: the queue is non-empty but
    // nothing ever executes.
    sim.events().schedule(5'000'000, [] {}, "stuck completion");

    try {
        sim.run(10'000);
        FAIL() << "expected SimulationWedged";
    } catch (const SimulationWedged &w) {
        const std::string what = w.what();
        EXPECT_NE(what.find("no progress"), std::string::npos);
        EXPECT_NE(what.find("stuck completion"), std::string::npos);
    }
}

TEST(FaultRecovery, WatchdogStaysQuietWhileEventsFlow)
{
    Simulator sim;
    sim.setWatchdog(1000, true);
    // A heartbeat every 500 cycles is progress; the watchdog must
    // never fire even over many bounds' worth of time.
    std::function<void()> beat = [&] {
        sim.events().schedule(sim.now() + 500, beat, "heartbeat");
    };
    beat();
    EXPECT_NO_THROW(sim.run(20'000));
}
