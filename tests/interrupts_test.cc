/**
 * @file
 * Tests for mbus/interrupts: delivery timing, same-cycle priority
 * ordering (highest first, ties in raise order), concurrent sources,
 * and the synchronous machine-check path the fault injector uses.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "mbus/interrupts.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

/** One target recording (source, delivery cycle) in handler order. */
struct Recorder
{
    Simulator &sim;
    std::vector<std::pair<unsigned, Cycle>> log;

    InterruptController::Handler
    handler()
    {
        return [this](unsigned source) {
            log.emplace_back(source, sim.now());
        };
    }
};

} // namespace

TEST(Interrupts, DeliveryTakesOneCycle)
{
    Simulator sim;
    InterruptController intc(sim);
    Recorder rec{sim, {}};
    intc.addTarget(rec.handler());

    sim.run(5);
    const Cycle raised_at = sim.now();
    intc.raise(0, 1);
    EXPECT_TRUE(rec.log.empty());  // not synchronous
    sim.run(10);

    ASSERT_EQ(rec.log.size(), 1u);
    EXPECT_EQ(rec.log[0].first, 1u);
    EXPECT_EQ(rec.log[0].second, raised_at + 1);
}

TEST(Interrupts, SameCycleBatchPresentsHighestPriorityFirst)
{
    Simulator sim;
    InterruptController intc(sim);
    Recorder rec{sim, {}};
    intc.addTarget(rec.handler());

    // Raised in ascending-source order with shuffled priorities; all
    // land in the same delivery cycle.
    intc.raise(0, 1, IrqPriority::Ipi);
    intc.raise(0, 2, IrqPriority::MachineCheck);
    intc.raise(0, 3, IrqPriority::Device);
    intc.raise(0, 4, IrqPriority::Device);  // tie with source 3
    intc.raise(0, 5, IrqPriority::Ipi);     // tie with source 1
    sim.run(3);

    ASSERT_EQ(rec.log.size(), 5u);
    // Priority descending; equal priorities keep raise order.
    EXPECT_EQ(rec.log[0].first, 2u);
    EXPECT_EQ(rec.log[1].first, 3u);
    EXPECT_EQ(rec.log[2].first, 4u);
    EXPECT_EQ(rec.log[3].first, 1u);
    EXPECT_EQ(rec.log[4].first, 5u);
    // All in the same cycle.
    for (const auto &[source, when] : rec.log)
        EXPECT_EQ(when, rec.log[0].second);
}

TEST(Interrupts, ConcurrentSourcesSortPerTarget)
{
    Simulator sim;
    InterruptController intc(sim);
    Recorder rec0{sim, {}};
    Recorder rec1{sim, {}};
    intc.addTarget(rec0.handler());
    intc.addTarget(rec1.handler());

    // Interleave raises to both targets in one cycle; each target's
    // batch sorts independently.
    intc.raise(0, 7, IrqPriority::Ipi);
    intc.raise(1, 8, IrqPriority::Ipi);
    intc.raise(0, 9, IrqPriority::Device);
    intc.raise(1, 10, IrqPriority::MachineCheck);
    sim.run(3);

    ASSERT_EQ(rec0.log.size(), 2u);
    EXPECT_EQ(rec0.log[0].first, 9u);   // Device above Ipi
    EXPECT_EQ(rec0.log[1].first, 7u);
    ASSERT_EQ(rec1.log.size(), 2u);
    EXPECT_EQ(rec1.log[0].first, 10u);  // MachineCheck above Ipi
    EXPECT_EQ(rec1.log[1].first, 8u);
}

TEST(Interrupts, RaiseFromHandlerLandsNextCycle)
{
    Simulator sim;
    InterruptController intc(sim);
    Recorder rec{sim, {}};
    bool chained = false;
    intc.addTarget([&](unsigned source) {
        rec.log.emplace_back(source, sim.now());
        if (!chained) {
            chained = true;
            intc.raise(0, 99, IrqPriority::Device);
        }
    });

    intc.raise(0, 1);
    sim.run(5);

    ASSERT_EQ(rec.log.size(), 2u);
    EXPECT_EQ(rec.log[0].first, 1u);
    EXPECT_EQ(rec.log[1].first, 99u);
    EXPECT_EQ(rec.log[1].second, rec.log[0].second + 1);
}

TEST(Interrupts, BroadcastSkipsTheSource)
{
    Simulator sim;
    InterruptController intc(sim);
    Recorder rec0{sim, {}};
    Recorder rec1{sim, {}};
    Recorder rec2{sim, {}};
    intc.addTarget(rec0.handler());
    intc.addTarget(rec1.handler());
    intc.addTarget(rec2.handler());

    intc.broadcast(1, IrqPriority::Device);
    sim.run(3);

    EXPECT_EQ(rec0.log.size(), 1u);
    EXPECT_TRUE(rec1.log.empty());
    EXPECT_EQ(rec2.log.size(), 1u);
}

TEST(Interrupts, MachineCheckIsSynchronousAndCounted)
{
    Simulator sim;
    InterruptController intc(sim);
    std::string got_unit, got_diag;
    intc.setMachineCheckHandler(
        [&](const std::string &unit, const std::string &diag) {
            got_unit = unit;
            got_diag = diag;
        });

    // Delivered before any simulated time passes: the faulting access
    // cannot complete, so there is no cycle of latency.
    intc.raiseMachineCheck("mem0", "uncorrectable ECC at 0x100");
    EXPECT_EQ(got_unit, "mem0");
    EXPECT_EQ(got_diag, "uncorrectable ECC at 0x100");
    EXPECT_EQ(intc.stats().get("machine_checks"), 1.0);

    // A maskable interrupt raised in the same cycle still waits.
    Recorder rec{sim, {}};
    intc.addTarget(rec.handler());
    intc.raise(0, 1, IrqPriority::Device);
    EXPECT_TRUE(rec.log.empty());
}

TEST(Interrupts, MachineCheckWithoutHandlerIsSafe)
{
    Simulator sim;
    InterruptController intc(sim);
    intc.raiseMachineCheck("mbus", "parity retry budget exhausted");
    EXPECT_EQ(intc.stats().get("machine_checks"), 1.0);
}
