/**
 * @file
 * Frame buffer / BitBlt / MDC tests: raster-op semantics, overlap
 * handling, the work-queue protocol, font painting, input deposits,
 * and the paper's display timing claims.
 */

#include <gtest/gtest.h>

#include "io/mdc.hh"
#include "test_util.hh"

using namespace firefly;
using firefly::test::TestRig;

namespace
{

constexpr Addr kIoLimit = 16 * 1024 * 1024;
constexpr Addr kQueueBase = 0x0010'0000;
constexpr Addr kInputBase = 0x0011'0000;
constexpr Addr kCharsBase = 0x0012'0000;

struct MdcRig : TestRig
{
    QBus qbus;
    Mdc mdc;

    MdcRig()
        : TestRig(ProtocolKind::Firefly, 1),
          qbus(sim, *caches[0], kIoLimit),
          mdc(sim, qbus, makeConfig())
    {
        qbus.identityMap();
        mdc.start();
    }

    static Mdc::Config
    makeConfig()
    {
        Mdc::Config cfg;
        cfg.queueBase = kQueueBase;
        cfg.inputBase = kInputBase;
        return cfg;
    }

    /** Host-side enqueue: write the command block and bump producer. */
    void
    enqueue(const MdcCommand &command)
    {
        const Word producer = memory.read(kQueueBase);
        const Addr entry = kQueueBase + 8 +
            (producer % makeConfig().queueEntries) *
                sizeof(MdcCommand);
        for (unsigned i = 0; i < command.size(); ++i)
            memory.write(entry + 4 * i, command[i]);
        memory.write(kQueueBase, producer + 1);
    }

    /** Run until the MDC's consumer index catches the producer. */
    void
    drain(Cycle limit = 30'000'000)
    {
        const Cycle deadline = sim.now() + limit;
        while (memory.read(kQueueBase + 4) != memory.read(kQueueBase) &&
               sim.now() < deadline) {
            sim.run(1000);
        }
        ASSERT_EQ(memory.read(kQueueBase + 4), memory.read(kQueueBase))
            << "MDC did not drain the work queue";
    }
};

} // namespace

TEST(FrameBuffer, PixelSetAndGet)
{
    FrameBuffer fb;
    EXPECT_FALSE(fb.pixel(10, 10));
    fb.setPixel(10, 10, true);
    EXPECT_TRUE(fb.pixel(10, 10));
    EXPECT_FALSE(fb.pixel(11, 10));
    fb.setPixel(10, 10, false);
    EXPECT_FALSE(fb.pixel(10, 10));
}

TEST(FrameBuffer, FillAndCount)
{
    FrameBuffer fb;
    const auto pixels = fb.fill({100, 100, 50, 40}, RasterOp::Set);
    EXPECT_EQ(pixels, 2000u);
    EXPECT_EQ(fb.litPixels({100, 100, 50, 40}), 2000u);
    EXPECT_EQ(fb.litPixels({0, 0, 100, 100}), 0u);
    fb.fill({100, 100, 50, 40}, RasterOp::Clear);
    EXPECT_EQ(fb.litPixels({100, 100, 50, 40}), 0u);
}

TEST(FrameBuffer, XorFillInverts)
{
    FrameBuffer fb;
    fb.fill({0, 0, 10, 10}, RasterOp::Set);
    fb.fill({5, 5, 10, 10}, RasterOp::Xor);
    EXPECT_TRUE(fb.pixel(0, 0));    // untouched lit
    EXPECT_FALSE(fb.pixel(6, 6));   // inverted from lit
    EXPECT_TRUE(fb.pixel(12, 12));  // inverted from clear
}

TEST(FrameBuffer, RasterOpsCombineCorrectly)
{
    FrameBuffer fb;
    // src pattern at (0,0): pixel (0,0) lit, (1,0) clear.
    fb.setPixel(0, 0, true);
    // dst at (10,0): (10,0) lit, (11,0) lit.
    fb.setPixel(10, 0, true);
    fb.setPixel(11, 0, true);

    FrameBuffer copy = fb;
    copy.blt({0, 0, 2, 1}, 10, 0, RasterOp::Copy);
    EXPECT_TRUE(copy.pixel(10, 0));
    EXPECT_FALSE(copy.pixel(11, 0));

    FrameBuffer orfb = fb;
    orfb.blt({0, 0, 2, 1}, 10, 0, RasterOp::Or);
    EXPECT_TRUE(orfb.pixel(10, 0));
    EXPECT_TRUE(orfb.pixel(11, 0));

    FrameBuffer andnot = fb;
    andnot.blt({0, 0, 2, 1}, 10, 0, RasterOp::AndNot);
    EXPECT_FALSE(andnot.pixel(10, 0));  // erased under src
    EXPECT_TRUE(andnot.pixel(11, 0));
}

TEST(FrameBuffer, OverlappingBltIsCorrect)
{
    FrameBuffer fb;
    // A recognisable diagonal.
    for (unsigned i = 0; i < 16; ++i)
        fb.setPixel(20 + i, 20 + i, true);
    // Shift right by 4 with overlap.
    fb.blt({20, 20, 16, 16}, 24, 20, RasterOp::Copy);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_TRUE(fb.pixel(24 + i, 20 + i)) << i;
}

TEST(FrameBuffer, ClipsAtEdges)
{
    FrameBuffer fb;
    const auto pixels =
        fb.fill({FrameBuffer::widthPx - 10, 5, 100, 3}, RasterOp::Set);
    EXPECT_EQ(pixels, 30u);  // clipped to 10 wide
    EXPECT_EQ(fb.litPixels({0, 0, FrameBuffer::widthPx,
                            FrameBuffer::heightPx}), 30u);
}

TEST(FrameBuffer, AsciiRendering)
{
    FrameBuffer fb;
    fb.setPixel(0, 0, true);
    fb.setPixel(2, 1, true);
    const std::string art = fb.ascii({0, 0, 4, 2});
    EXPECT_EQ(art, "#...\n..#.\n");
}

TEST(Mdc, FillCommandThroughWorkQueue)
{
    MdcRig rig;
    rig.enqueue(Mdc::encodeFill(10, 10, 20, 20, RasterOp::Set));
    rig.drain();
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({10, 10, 20, 20}), 400u);
    EXPECT_EQ(rig.mdc.commandsExecuted.value(), 1u);
    EXPECT_EQ(rig.mdc.pixelsPainted.value(), 400u);
}

TEST(Mdc, CommandsExecuteInOrder)
{
    MdcRig rig;
    rig.enqueue(Mdc::encodeFill(0, 0, 32, 32, RasterOp::Set));
    rig.enqueue(Mdc::encodeFill(8, 8, 16, 16, RasterOp::Clear));
    rig.drain();
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({0, 0, 32, 32}),
              32u * 32 - 16 * 16);
}

TEST(Mdc, CopyRectMovesScreenContents)
{
    MdcRig rig;
    rig.enqueue(Mdc::encodeFill(0, 0, 8, 8, RasterOp::Set));
    rig.enqueue(
        Mdc::encodeCopyRect(0, 0, 100, 100, 8, 8, RasterOp::Copy));
    rig.drain();
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({100, 100, 8, 8}), 64u);
}

TEST(Mdc, PaintCharsUsesFontCache)
{
    MdcRig rig;
    rig.mdc.loadBuiltinFont();
    // "Hi" packed little-endian into one word.
    rig.memory.write(kCharsBase, 'H' | ('i' << 8));
    rig.enqueue(Mdc::encodePaintChars(100, 100, 2, kCharsBase));
    rig.drain();
    EXPECT_EQ(rig.mdc.charsPainted.value(), 2u);
    // 'H' has lit pixels in its cell; the cell right of 'i' is blank.
    EXPECT_GT(rig.mdc.frameBuffer().litPixels({100, 100, 8, 16}), 10u);
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({116, 100, 8, 16}), 0u);
}

TEST(Mdc, BltFromMemoryUploadsBitmap)
{
    MdcRig rig;
    // A 32x2 bitmap: first word all ones, second all zeros.
    rig.memory.write(kCharsBase, 0xffffffff);
    rig.memory.write(kCharsBase + 4, 0x00000000);
    rig.enqueue(Mdc::encodeBltFromMemory(kCharsBase, 1, 200, 200, 32, 2));
    rig.drain();
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({200, 200, 32, 1}), 32u);
    EXPECT_EQ(rig.mdc.frameBuffer().litPixels({200, 201, 32, 1}), 0u);
}

TEST(Mdc, LargeFillApproaches16MegapixelsPerSecond)
{
    MdcRig rig;
    const Cycle start = rig.sim.now();
    rig.enqueue(Mdc::encodeFill(0, 0, 1024, 768, RasterOp::Set));
    rig.drain();
    const double seconds = (rig.sim.now() - start) * 100e-9;
    const double mpix_per_s = 1024.0 * 768 / seconds / 1e6;
    EXPECT_GT(mpix_per_s, 12.0);
    EXPECT_LT(mpix_per_s, 16.5);
}

TEST(Mdc, CharacterRateNearTwentyThousandPerSecond)
{
    MdcRig rig;
    rig.mdc.loadBuiltinFont();
    for (unsigned i = 0; i < 64; ++i)
        rig.memory.write(kCharsBase + 4 * i, 0x41414141);  // "AAAA"
    const Cycle start = rig.sim.now();
    // 8 commands of 256 chars = 2048 characters.
    for (int cmd = 0; cmd < 8; ++cmd) {
        rig.enqueue(Mdc::encodePaintChars(0, 16 * cmd, 256,
                                          kCharsBase));
    }
    rig.drain();
    const double seconds = (rig.sim.now() - start) * 100e-9;
    const double chars_per_s = 2048.0 / seconds;
    EXPECT_GT(chars_per_s, 15000.0);
    EXPECT_LT(chars_per_s, 26000.0);
}

TEST(Mdc, InputDepositsAtSixtyHertz)
{
    MdcRig rig;
    rig.mdc.setMouse(123, 456);
    rig.mdc.keyEvent(65, true);
    rig.sim.run(secondsToCycles(0.1));  // ~6 deposit periods
    EXPECT_GE(rig.mdc.deposits.value(), 5u);
    EXPECT_LE(rig.mdc.deposits.value(), 7u);
    EXPECT_EQ(rig.memory.read(kInputBase), 123u);
    EXPECT_EQ(rig.memory.read(kInputBase + 4), 456u);
    // Key 65 lives in keyboard word 2 (bits 64..95), bit 1.
    EXPECT_EQ(rig.memory.read(kInputBase + 8 + 4 * 2), 2u);
}

TEST(Mdc, GlyphRectLayout)
{
    const auto rect = Mdc::glyphRect('A');
    EXPECT_EQ(rect.x, static_cast<unsigned>('A') * 8);
    EXPECT_EQ(rect.y, FrameBuffer::visibleRows);
    EXPECT_EQ(rect.width, 8u);
    EXPECT_EQ(rect.height, 16u);
}
