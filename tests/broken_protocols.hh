/**
 * @file
 * Deliberately broken coherence protocols, for proving the checker
 * has teeth.  Each wrapper delegates to a real protocol and breaks
 * exactly one rule; the checker tests and the fuzzer assert that the
 * resulting incoherence is caught with a line-level diagnostic.
 */

#ifndef FIREFLY_TESTS_BROKEN_PROTOCOLS_HH
#define FIREFLY_TESTS_BROKEN_PROTOCOLS_HH

#include <memory>
#include <utility>

#include "cache/protocol.hh"

namespace firefly::test
{

/** Forwards every decision to a wrapped real protocol. */
class DelegatingProtocol : public CoherenceProtocol
{
  public:
    explicit DelegatingProtocol(std::unique_ptr<CoherenceProtocol> p)
        : inner(std::move(p))
    {
    }

    const char *name() const override { return inner->name(); }

    WriteHitAction
    writeHit(const CacheLine &line) const override
    {
        return inner->writeHit(line);
    }

    WriteMissAction
    writeMiss(unsigned line_words) const override
    {
        return inner->writeMiss(line_words);
    }

    LineState
    fillState(bool mshared) const override
    {
        return inner->fillState(mshared);
    }

    LineState
    afterWriteThrough(bool mshared) const override
    {
        return inner->afterWriteThrough(mshared);
    }

    LineState ownedState() const override { return inner->ownedState(); }

    bool
    fillsUpdateMemory() const override
    {
        return inner->fillsUpdateMemory();
    }

    SnoopReply
    snoopProbe(const CacheLine &line,
               const MBusTransaction &txn) const override
    {
        return inner->snoopProbe(line, txn);
    }

    void
    snoopApply(CacheLine &line, const MBusTransaction &txn,
               unsigned line_words) const override
    {
        inner->snoopApply(line, txn, line_words);
    }

  protected:
    std::unique_ptr<CoherenceProtocol> inner;
};

/**
 * Skips the MShared update on fills: every miss installs the line in
 * the exclusive clean state even when the bus said other caches hold
 * it.  Violates exclusivity (I3) as soon as a line is actually
 * shared.
 */
class IgnoreMSharedProtocol : public DelegatingProtocol
{
  public:
    using DelegatingProtocol::DelegatingProtocol;

    LineState fillState(bool) const override { return LineState::Valid; }
};

/**
 * Ignores snooped bus writes: foreign write-throughs, updates, and
 * DMA writes never reach this cache's copies.  Stale data survives
 * in the cache, violating agreement (I4) on the first lost write.
 */
class DeafToWritesProtocol : public DelegatingProtocol
{
  public:
    using DelegatingProtocol::DelegatingProtocol;

    void
    snoopApply(CacheLine &line, const MBusTransaction &txn,
               unsigned line_words) const override
    {
        if (txn.type == MBusOpType::MWrite)
            return;  // the lost update
        DelegatingProtocol::snoopApply(line, txn, line_words);
    }
};

} // namespace firefly::test

#endif // FIREFLY_TESTS_BROKEN_PROTOCOLS_HH
