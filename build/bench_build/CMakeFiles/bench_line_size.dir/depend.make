# Empty dependencies file for bench_line_size.
# This may be replaced when dependencies are built.
