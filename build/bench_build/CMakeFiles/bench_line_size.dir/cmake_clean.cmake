file(REMOVE_RECURSE
  "../bench/bench_line_size"
  "../bench/bench_line_size.pdb"
  "CMakeFiles/bench_line_size.dir/bench_line_size.cc.o"
  "CMakeFiles/bench_line_size.dir/bench_line_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
