file(REMOVE_RECURSE
  "../bench/bench_cvax_upgrade"
  "../bench/bench_cvax_upgrade.pdb"
  "CMakeFiles/bench_cvax_upgrade.dir/bench_cvax_upgrade.cc.o"
  "CMakeFiles/bench_cvax_upgrade.dir/bench_cvax_upgrade.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cvax_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
