# Empty compiler generated dependencies file for bench_cvax_upgrade.
# This may be replaced when dependencies are built.
