# Empty dependencies file for bench_fig4_mbus_timing.
# This may be replaced when dependencies are built.
