file(REMOVE_RECURSE
  "../bench/bench_fig4_mbus_timing"
  "../bench/bench_fig4_mbus_timing.pdb"
  "CMakeFiles/bench_fig4_mbus_timing.dir/bench_fig4_mbus_timing.cc.o"
  "CMakeFiles/bench_fig4_mbus_timing.dir/bench_fig4_mbus_timing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mbus_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
