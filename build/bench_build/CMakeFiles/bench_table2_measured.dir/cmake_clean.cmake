file(REMOVE_RECURSE
  "../bench/bench_table2_measured"
  "../bench/bench_table2_measured.pdb"
  "CMakeFiles/bench_table2_measured.dir/bench_table2_measured.cc.o"
  "CMakeFiles/bench_table2_measured.dir/bench_table2_measured.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
