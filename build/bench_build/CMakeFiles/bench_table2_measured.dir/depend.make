# Empty dependencies file for bench_table2_measured.
# This may be replaced when dependencies are built.
