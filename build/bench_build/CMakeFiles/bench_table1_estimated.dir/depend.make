# Empty dependencies file for bench_table1_estimated.
# This may be replaced when dependencies are built.
