file(REMOVE_RECURSE
  "../bench/bench_table1_estimated"
  "../bench/bench_table1_estimated.pdb"
  "CMakeFiles/bench_table1_estimated.dir/bench_table1_estimated.cc.o"
  "CMakeFiles/bench_table1_estimated.dir/bench_table1_estimated.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_estimated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
