file(REMOVE_RECURSE
  "../bench/bench_mdc_display"
  "../bench/bench_mdc_display.pdb"
  "CMakeFiles/bench_mdc_display.dir/bench_mdc_display.cc.o"
  "CMakeFiles/bench_mdc_display.dir/bench_mdc_display.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mdc_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
