# Empty compiler generated dependencies file for bench_mdc_display.
# This may be replaced when dependencies are built.
