file(REMOVE_RECURSE
  "../bench/bench_protocols"
  "../bench/bench_protocols.pdb"
  "CMakeFiles/bench_protocols.dir/bench_protocols.cc.o"
  "CMakeFiles/bench_protocols.dir/bench_protocols.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
