file(REMOVE_RECURSE
  "../bench/bench_fig3_states"
  "../bench/bench_fig3_states.pdb"
  "CMakeFiles/bench_fig3_states.dir/bench_fig3_states.cc.o"
  "CMakeFiles/bench_fig3_states.dir/bench_fig3_states.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
