# Empty compiler generated dependencies file for bench_fig3_states.
# This may be replaced when dependencies are built.
