# Empty dependencies file for bench_migration.
# This may be replaced when dependencies are built.
