file(REMOVE_RECURSE
  "../bench/bench_migration"
  "../bench/bench_migration.pdb"
  "CMakeFiles/bench_migration.dir/bench_migration.cc.o"
  "CMakeFiles/bench_migration.dir/bench_migration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
