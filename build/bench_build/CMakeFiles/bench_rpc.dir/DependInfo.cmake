
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rpc.cc" "bench_build/CMakeFiles/bench_rpc.dir/bench_rpc.cc.o" "gcc" "bench_build/CMakeFiles/bench_rpc.dir/bench_rpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_system.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_topaz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mbus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
