file(REMOVE_RECURSE
  "../bench/bench_rpc"
  "../bench/bench_rpc.pdb"
  "CMakeFiles/bench_rpc.dir/bench_rpc.cc.o"
  "CMakeFiles/bench_rpc.dir/bench_rpc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
