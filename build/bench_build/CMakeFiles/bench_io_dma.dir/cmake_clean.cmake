file(REMOVE_RECURSE
  "../bench/bench_io_dma"
  "../bench/bench_io_dma.pdb"
  "CMakeFiles/bench_io_dma.dir/bench_io_dma.cc.o"
  "CMakeFiles/bench_io_dma.dir/bench_io_dma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
