# Empty dependencies file for cache_protocols_test.
# This may be replaced when dependencies are built.
