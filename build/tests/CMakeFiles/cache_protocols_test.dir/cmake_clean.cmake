file(REMOVE_RECURSE
  "CMakeFiles/cache_protocols_test.dir/cache_protocols_test.cc.o"
  "CMakeFiles/cache_protocols_test.dir/cache_protocols_test.cc.o.d"
  "cache_protocols_test"
  "cache_protocols_test.pdb"
  "cache_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
