# Empty dependencies file for topaz_test.
# This may be replaced when dependencies are built.
