file(REMOVE_RECURSE
  "CMakeFiles/topaz_test.dir/topaz_test.cc.o"
  "CMakeFiles/topaz_test.dir/topaz_test.cc.o.d"
  "topaz_test"
  "topaz_test.pdb"
  "topaz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topaz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
