# Empty compiler generated dependencies file for color_display_test.
# This may be replaced when dependencies are built.
