file(REMOVE_RECURSE
  "CMakeFiles/color_display_test.dir/color_display_test.cc.o"
  "CMakeFiles/color_display_test.dir/color_display_test.cc.o.d"
  "color_display_test"
  "color_display_test.pdb"
  "color_display_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/color_display_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
