file(REMOVE_RECURSE
  "CMakeFiles/mbus_test.dir/mbus_test.cc.o"
  "CMakeFiles/mbus_test.dir/mbus_test.cc.o.d"
  "mbus_test"
  "mbus_test.pdb"
  "mbus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
