# Empty dependencies file for mbus_test.
# This may be replaced when dependencies are built.
