file(REMOVE_RECURSE
  "CMakeFiles/cache_firefly_test.dir/cache_firefly_test.cc.o"
  "CMakeFiles/cache_firefly_test.dir/cache_firefly_test.cc.o.d"
  "cache_firefly_test"
  "cache_firefly_test.pdb"
  "cache_firefly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_firefly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
