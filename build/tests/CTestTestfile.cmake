# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/mbus_test[1]_include.cmake")
include("/root/repo/build/tests/cache_firefly_test[1]_include.cmake")
include("/root/repo/build/tests/cache_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_property_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/analytic_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/topaz_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/display_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/color_display_test[1]_include.cmake")
