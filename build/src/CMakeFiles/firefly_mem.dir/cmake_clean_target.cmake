file(REMOVE_RECURSE
  "libfirefly_mem.a"
)
