
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/firefly_mem.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/firefly_mem.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/memory_module.cc" "src/CMakeFiles/firefly_mem.dir/mem/memory_module.cc.o" "gcc" "src/CMakeFiles/firefly_mem.dir/mem/memory_module.cc.o.d"
  "/root/repo/src/mem/sparse_memory.cc" "src/CMakeFiles/firefly_mem.dir/mem/sparse_memory.cc.o" "gcc" "src/CMakeFiles/firefly_mem.dir/mem/sparse_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
