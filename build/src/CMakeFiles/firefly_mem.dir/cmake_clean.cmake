file(REMOVE_RECURSE
  "CMakeFiles/firefly_mem.dir/mem/main_memory.cc.o"
  "CMakeFiles/firefly_mem.dir/mem/main_memory.cc.o.d"
  "CMakeFiles/firefly_mem.dir/mem/memory_module.cc.o"
  "CMakeFiles/firefly_mem.dir/mem/memory_module.cc.o.d"
  "CMakeFiles/firefly_mem.dir/mem/sparse_memory.cc.o"
  "CMakeFiles/firefly_mem.dir/mem/sparse_memory.cc.o.d"
  "libfirefly_mem.a"
  "libfirefly_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
