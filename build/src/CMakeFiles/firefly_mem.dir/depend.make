# Empty dependencies file for firefly_mem.
# This may be replaced when dependencies are built.
