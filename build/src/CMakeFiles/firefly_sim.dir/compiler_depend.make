# Empty compiler generated dependencies file for firefly_sim.
# This may be replaced when dependencies are built.
