file(REMOVE_RECURSE
  "libfirefly_sim.a"
)
