file(REMOVE_RECURSE
  "CMakeFiles/firefly_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/firefly_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/firefly_sim.dir/sim/logging.cc.o"
  "CMakeFiles/firefly_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/firefly_sim.dir/sim/random.cc.o"
  "CMakeFiles/firefly_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/firefly_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/firefly_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/firefly_sim.dir/sim/stats.cc.o"
  "CMakeFiles/firefly_sim.dir/sim/stats.cc.o.d"
  "libfirefly_sim.a"
  "libfirefly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
