file(REMOVE_RECURSE
  "CMakeFiles/firefly_mbus.dir/mbus/interrupts.cc.o"
  "CMakeFiles/firefly_mbus.dir/mbus/interrupts.cc.o.d"
  "CMakeFiles/firefly_mbus.dir/mbus/mbus.cc.o"
  "CMakeFiles/firefly_mbus.dir/mbus/mbus.cc.o.d"
  "libfirefly_mbus.a"
  "libfirefly_mbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_mbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
