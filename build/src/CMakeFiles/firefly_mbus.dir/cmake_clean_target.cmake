file(REMOVE_RECURSE
  "libfirefly_mbus.a"
)
