
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbus/interrupts.cc" "src/CMakeFiles/firefly_mbus.dir/mbus/interrupts.cc.o" "gcc" "src/CMakeFiles/firefly_mbus.dir/mbus/interrupts.cc.o.d"
  "/root/repo/src/mbus/mbus.cc" "src/CMakeFiles/firefly_mbus.dir/mbus/mbus.cc.o" "gcc" "src/CMakeFiles/firefly_mbus.dir/mbus/mbus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
