# Empty dependencies file for firefly_mbus.
# This may be replaced when dependencies are built.
