
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/berkeley_protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/berkeley_protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/berkeley_protocol.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/firefly_cache.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/dragon_protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/dragon_protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/dragon_protocol.cc.o.d"
  "/root/repo/src/cache/firefly_protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/firefly_protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/firefly_protocol.cc.o.d"
  "/root/repo/src/cache/mesi_protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/mesi_protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/mesi_protocol.cc.o.d"
  "/root/repo/src/cache/protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/protocol.cc.o.d"
  "/root/repo/src/cache/wti_protocol.cc" "src/CMakeFiles/firefly_cache.dir/cache/wti_protocol.cc.o" "gcc" "src/CMakeFiles/firefly_cache.dir/cache/wti_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_mbus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
