file(REMOVE_RECURSE
  "libfirefly_cache.a"
)
