# Empty dependencies file for firefly_cache.
# This may be replaced when dependencies are built.
