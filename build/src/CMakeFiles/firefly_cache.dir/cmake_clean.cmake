file(REMOVE_RECURSE
  "CMakeFiles/firefly_cache.dir/cache/berkeley_protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/berkeley_protocol.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/cache.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/dragon_protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/dragon_protocol.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/firefly_protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/firefly_protocol.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/mesi_protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/mesi_protocol.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/protocol.cc.o.d"
  "CMakeFiles/firefly_cache.dir/cache/wti_protocol.cc.o"
  "CMakeFiles/firefly_cache.dir/cache/wti_protocol.cc.o.d"
  "libfirefly_cache.a"
  "libfirefly_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
