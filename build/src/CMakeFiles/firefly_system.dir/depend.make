# Empty dependencies file for firefly_system.
# This may be replaced when dependencies are built.
