file(REMOVE_RECURSE
  "CMakeFiles/firefly_system.dir/firefly/config.cc.o"
  "CMakeFiles/firefly_system.dir/firefly/config.cc.o.d"
  "CMakeFiles/firefly_system.dir/firefly/system.cc.o"
  "CMakeFiles/firefly_system.dir/firefly/system.cc.o.d"
  "libfirefly_system.a"
  "libfirefly_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
