file(REMOVE_RECURSE
  "libfirefly_system.a"
)
