# Empty compiler generated dependencies file for firefly_trace.
# This may be replaced when dependencies are built.
