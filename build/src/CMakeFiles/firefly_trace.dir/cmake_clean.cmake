file(REMOVE_RECURSE
  "CMakeFiles/firefly_trace.dir/trace/trace.cc.o"
  "CMakeFiles/firefly_trace.dir/trace/trace.cc.o.d"
  "libfirefly_trace.a"
  "libfirefly_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
