file(REMOVE_RECURSE
  "libfirefly_trace.a"
)
