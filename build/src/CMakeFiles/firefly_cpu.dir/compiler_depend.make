# Empty compiler generated dependencies file for firefly_cpu.
# This may be replaced when dependencies are built.
