file(REMOVE_RECURSE
  "libfirefly_cpu.a"
)
