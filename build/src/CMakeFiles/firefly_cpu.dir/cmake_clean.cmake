file(REMOVE_RECURSE
  "CMakeFiles/firefly_cpu.dir/cpu/onchip_cache.cc.o"
  "CMakeFiles/firefly_cpu.dir/cpu/onchip_cache.cc.o.d"
  "CMakeFiles/firefly_cpu.dir/cpu/synthetic_stream.cc.o"
  "CMakeFiles/firefly_cpu.dir/cpu/synthetic_stream.cc.o.d"
  "CMakeFiles/firefly_cpu.dir/cpu/trace_cpu.cc.o"
  "CMakeFiles/firefly_cpu.dir/cpu/trace_cpu.cc.o.d"
  "CMakeFiles/firefly_cpu.dir/cpu/vax_mix.cc.o"
  "CMakeFiles/firefly_cpu.dir/cpu/vax_mix.cc.o.d"
  "libfirefly_cpu.a"
  "libfirefly_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
