
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/onchip_cache.cc" "src/CMakeFiles/firefly_cpu.dir/cpu/onchip_cache.cc.o" "gcc" "src/CMakeFiles/firefly_cpu.dir/cpu/onchip_cache.cc.o.d"
  "/root/repo/src/cpu/synthetic_stream.cc" "src/CMakeFiles/firefly_cpu.dir/cpu/synthetic_stream.cc.o" "gcc" "src/CMakeFiles/firefly_cpu.dir/cpu/synthetic_stream.cc.o.d"
  "/root/repo/src/cpu/trace_cpu.cc" "src/CMakeFiles/firefly_cpu.dir/cpu/trace_cpu.cc.o" "gcc" "src/CMakeFiles/firefly_cpu.dir/cpu/trace_cpu.cc.o.d"
  "/root/repo/src/cpu/vax_mix.cc" "src/CMakeFiles/firefly_cpu.dir/cpu/vax_mix.cc.o" "gcc" "src/CMakeFiles/firefly_cpu.dir/cpu/vax_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mbus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
