file(REMOVE_RECURSE
  "CMakeFiles/firefly_analytic.dir/analytic/queueing_model.cc.o"
  "CMakeFiles/firefly_analytic.dir/analytic/queueing_model.cc.o.d"
  "libfirefly_analytic.a"
  "libfirefly_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
