# Empty compiler generated dependencies file for firefly_analytic.
# This may be replaced when dependencies are built.
