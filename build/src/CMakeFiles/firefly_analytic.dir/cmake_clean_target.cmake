file(REMOVE_RECURSE
  "libfirefly_analytic.a"
)
