# Empty compiler generated dependencies file for firefly_topaz.
# This may be replaced when dependencies are built.
