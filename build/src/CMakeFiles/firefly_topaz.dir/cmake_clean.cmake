file(REMOVE_RECURSE
  "CMakeFiles/firefly_topaz.dir/topaz/arena.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/arena.cc.o.d"
  "CMakeFiles/firefly_topaz.dir/topaz/behavior.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/behavior.cc.o.d"
  "CMakeFiles/firefly_topaz.dir/topaz/rpc.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/rpc.cc.o.d"
  "CMakeFiles/firefly_topaz.dir/topaz/runtime.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/runtime.cc.o.d"
  "CMakeFiles/firefly_topaz.dir/topaz/scheduler.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/scheduler.cc.o.d"
  "CMakeFiles/firefly_topaz.dir/topaz/workloads.cc.o"
  "CMakeFiles/firefly_topaz.dir/topaz/workloads.cc.o.d"
  "libfirefly_topaz.a"
  "libfirefly_topaz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_topaz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
