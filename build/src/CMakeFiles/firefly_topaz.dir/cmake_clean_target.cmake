file(REMOVE_RECURSE
  "libfirefly_topaz.a"
)
