file(REMOVE_RECURSE
  "CMakeFiles/firefly_io.dir/io/color_display.cc.o"
  "CMakeFiles/firefly_io.dir/io/color_display.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/disk.cc.o"
  "CMakeFiles/firefly_io.dir/io/disk.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/dma_engine.cc.o"
  "CMakeFiles/firefly_io.dir/io/dma_engine.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/ethernet.cc.o"
  "CMakeFiles/firefly_io.dir/io/ethernet.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/framebuffer.cc.o"
  "CMakeFiles/firefly_io.dir/io/framebuffer.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/mdc.cc.o"
  "CMakeFiles/firefly_io.dir/io/mdc.cc.o.d"
  "CMakeFiles/firefly_io.dir/io/qbus.cc.o"
  "CMakeFiles/firefly_io.dir/io/qbus.cc.o.d"
  "libfirefly_io.a"
  "libfirefly_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firefly_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
