# Empty compiler generated dependencies file for firefly_io.
# This may be replaced when dependencies are built.
