file(REMOVE_RECURSE
  "libfirefly_io.a"
)
