
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/color_display.cc" "src/CMakeFiles/firefly_io.dir/io/color_display.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/color_display.cc.o.d"
  "/root/repo/src/io/disk.cc" "src/CMakeFiles/firefly_io.dir/io/disk.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/disk.cc.o.d"
  "/root/repo/src/io/dma_engine.cc" "src/CMakeFiles/firefly_io.dir/io/dma_engine.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/dma_engine.cc.o.d"
  "/root/repo/src/io/ethernet.cc" "src/CMakeFiles/firefly_io.dir/io/ethernet.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/ethernet.cc.o.d"
  "/root/repo/src/io/framebuffer.cc" "src/CMakeFiles/firefly_io.dir/io/framebuffer.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/framebuffer.cc.o.d"
  "/root/repo/src/io/mdc.cc" "src/CMakeFiles/firefly_io.dir/io/mdc.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/mdc.cc.o.d"
  "/root/repo/src/io/qbus.cc" "src/CMakeFiles/firefly_io.dir/io/qbus.cc.o" "gcc" "src/CMakeFiles/firefly_io.dir/io/qbus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/firefly_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mbus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/firefly_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
