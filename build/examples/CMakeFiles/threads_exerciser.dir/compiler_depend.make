# Empty compiler generated dependencies file for threads_exerciser.
# This may be replaced when dependencies are built.
