file(REMOVE_RECURSE
  "CMakeFiles/threads_exerciser.dir/threads_exerciser.cpp.o"
  "CMakeFiles/threads_exerciser.dir/threads_exerciser.cpp.o.d"
  "threads_exerciser"
  "threads_exerciser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads_exerciser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
