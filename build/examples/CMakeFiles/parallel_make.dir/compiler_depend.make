# Empty compiler generated dependencies file for parallel_make.
# This may be replaced when dependencies are built.
