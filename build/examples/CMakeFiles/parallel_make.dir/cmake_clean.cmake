file(REMOVE_RECURSE
  "CMakeFiles/parallel_make.dir/parallel_make.cpp.o"
  "CMakeFiles/parallel_make.dir/parallel_make.cpp.o.d"
  "parallel_make"
  "parallel_make.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_make.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
