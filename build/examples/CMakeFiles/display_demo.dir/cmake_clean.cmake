file(REMOVE_RECURSE
  "CMakeFiles/display_demo.dir/display_demo.cpp.o"
  "CMakeFiles/display_demo.dir/display_demo.cpp.o.d"
  "display_demo"
  "display_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
