# Empty dependencies file for display_demo.
# This may be replaced when dependencies are built.
