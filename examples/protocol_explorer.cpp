/**
 * @file
 * Protocol explorer: narrate what the coherence hardware does, bus
 * operation by bus operation, for a canonical two-processor sharing
 * scenario.  Useful for teaching the Firefly protocol and comparing
 * it with the baselines.
 *
 * Usage: protocol_explorer [firefly|dragon|wti|berkeley|mesi]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "cache/cache.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

struct Explorer
{
    Simulator sim;
    MainMemory memory;
    MBus bus;
    Cache a, b;

    explicit Explorer(ProtocolKind kind)
        : bus(sim, memory),
          a(sim, bus, makeProtocol(kind), {}, "cpu0-cache"),
          b(sim, bus, makeProtocol(kind), {}, "cpu1-cache")
    {
        memory.addModule(4 * 1024 * 1024);
        bus.setTraceHook([](Cycle now, const std::string &phase,
                            const std::string &detail) {
            std::printf("      [cycle %3llu] %-11s %s\n",
                        static_cast<unsigned long long>(now),
                        phase.c_str(), detail.c_str());
        });
    }

    void
    access(Cache &cache, bool write, Addr addr, Word value)
    {
        bool done = false;
        auto result = cache.cpuAccess(
            {addr, write ? RefType::DataWrite : RefType::DataRead,
             value},
            [&](Word) { done = true; });
        if (result.outcome == Cache::AccessOutcome::Hit) {
            std::printf("      (cache hit, no bus traffic)\n");
            return;
        }
        while (!done)
            sim.run(1);
    }

    void
    show(Addr addr)
    {
        auto state = [&](Cache &cache) {
            return cache.holds(addr) ? toString(cache.lineAt(addr).state)
                                     : "Invalid";
        };
        std::printf("      state: cpu0=%s cpu1=%s memory=0x%x\n\n",
                    state(a), state(b), memory.read(addr));
    }
};

} // namespace

int
main(int argc, char **argv)
{
    ProtocolKind kind = ProtocolKind::Firefly;
    if (argc > 1) {
        const std::string name = argv[1];
        if (name == "dragon") kind = ProtocolKind::Dragon;
        else if (name == "wti") kind = ProtocolKind::WriteThroughInvalidate;
        else if (name == "berkeley") kind = ProtocolKind::Berkeley;
        else if (name == "mesi") kind = ProtocolKind::Mesi;
        else if (name != "firefly") {
            std::fprintf(stderr, "unknown protocol '%s'\n",
                         name.c_str());
            return 1;
        }
    }

    Explorer ex(kind);
    const Addr addr = 0x1000;
    std::printf("=== %s protocol, two processors, one location "
                "(0x%x) ===\n\n", toString(kind), addr);

    std::printf("1. cpu0 reads (cold miss):\n");
    ex.access(ex.a, false, addr, 0);
    ex.show(addr);

    std::printf("2. cpu0 writes 0x11 (hit):\n");
    ex.access(ex.a, true, addr, 0x11);
    ex.show(addr);

    std::printf("3. cpu1 reads (miss; who supplies the data?):\n");
    ex.access(ex.b, false, addr, 0);
    ex.show(addr);

    std::printf("4. cpu0 writes 0x22 while shared (the protocols "
                "diverge here):\n");
    ex.access(ex.a, true, addr, 0x22);
    ex.show(addr);

    std::printf("5. cpu1 reads again (does it cost a bus trip?):\n");
    ex.access(ex.b, false, addr, 0);
    ex.show(addr);

    std::printf("6. cpu1 evicts its copy (conflicting read), then "
                "cpu0 writes 0x33:\n");
    ex.access(ex.b, false, addr + 16 * 1024, 0);
    ex.access(ex.a, true, addr, 0x33);
    ex.show(addr);

    std::printf("7. cpu0 writes 0x44 (is the line private again?):\n");
    ex.access(ex.a, true, addr, 0x44);
    ex.show(addr);

    std::printf("Under Firefly, step 4 is a write-through that "
                "updates cpu1 in place,\nstep 5 is then a free cache "
                "hit, and step 6's write-through sees no\nMShared so "
                "step 7 reverts to silent write-back - conditional\n"
                "write-through in action.\n");
    return 0;
}
