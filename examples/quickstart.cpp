/**
 * @file
 * Quickstart: build the standard five-processor MicroVAX Firefly,
 * run the calibrated workload for a tenth of a simulated second, and
 * print the numbers the paper leads with - per-processor speed, bus
 * load, miss rate.
 *
 * Usage: quickstart [processors] [--topology]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "firefly/system.hh"

using namespace firefly;

int
main(int argc, char **argv)
{
    unsigned processors = 5;
    bool topology_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--topology") == 0)
            topology_only = true;
        else
            processors = std::atoi(argv[i]);
    }

    // 1. Configure and build the machine (paper Figure 1).
    FireflySystem sys(FireflyConfig::microVax(processors));
    std::printf("%s\n", sys.topologyArt().c_str());
    if (topology_only)
        return 0;

    // 2. Attach a workload: the synthetic VAX reference stream,
    //    calibrated to the paper's M~0.2, D~0.25, S=0.1.
    sys.attachSyntheticWorkload(SyntheticConfig{});

    // 3. Run a tenth of a simulated second.
    std::printf("running 0.1 simulated seconds...\n\n");
    sys.run(0.1);

    // 4. Read the results off the machine.
    std::printf("%-34s %12s\n", "", "value");
    for (unsigned i = 0; i < sys.processorCount(); ++i) {
        std::printf("cpu%u: %8.0fK instr/s   TPI %.2f   miss rate "
                    "%.3f\n",
                    i, sys.cpu(i).instructions() / sys.seconds() / 1e3,
                    sys.cpu(i).tpi(),
                    sys.cache(i).stats().get("miss_rate"));
    }
    std::printf("\nMBus load:            %.2f   (paper: ~0.4 on the "
                "standard machine)\n", sys.busLoad());
    const double nowait = 1.0 / (microVaxBaseTpi * 200e-9);
    double total_ips = 0;
    for (unsigned i = 0; i < sys.processorCount(); ++i)
        total_ips += sys.cpu(i).instructions() / sys.seconds();
    std::printf("Total performance:    %.2fx a no-wait-state "
                "processor (paper: \"somewhat more than four times\" "
                "with five CPUs)\n", total_ips / nowait);
    std::printf("Refs by all CPUs:     %.0fK/s\n",
                sys.totalCpuRefs() / sys.seconds() / 1e3);
    return 0;
}
