/**
 * @file
 * The parallel make of paper Section 6: "we have implemented a
 * parallel version of the Unix make utility, which forks multiple
 * compilations in parallel when possible."  A coordinator thread
 * forks compilation jobs and joins them; we sweep the processor
 * count and print the build-time speedup - the coarse-grained
 * parallelism the Firefly was built for.
 *
 * Usage: parallel_make [jobs]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "firefly/system.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

double
buildTime(unsigned cpus, unsigned jobs)
{
    FireflySystem sys(FireflyConfig::microVax(cpus));
    TopazConfig tc;
    tc.cpus = cpus;
    TopazRuntime runtime(tc);

    ParallelMakeParams params;
    params.jobs = jobs;
    params.jobInstructions = 20000;
    buildParallelMake(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < cpus; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);
    sys.runToCompletion();
    return sys.seconds();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = argc > 1 ? std::atoi(argv[1]) : 8;

    std::printf("parallel make: %u compilation jobs\n\n", jobs);
    std::printf("%6s %14s %10s %12s\n", "CPUs", "build time (ms)",
                "speedup", "efficiency");

    const double serial = buildTime(1, jobs);
    for (unsigned cpus : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
        const double t = cpus == 1 ? serial : buildTime(cpus, jobs);
        std::printf("%6u %14.1f %9.2fx %11.0f%%\n", cpus, t * 1e3,
                    serial / t, 100.0 * serial / t / cpus);
    }
    std::printf("\n(Compilations are independent, so the build scales "
                "until it runs out of jobs or bus bandwidth - the "
                "coarse-grained concurrency of Section 2.)\n");
    return 0;
}
