/**
 * @file
 * Drive the monochrome display controller the way Trestle would:
 * enqueue BitBlt and character-painting commands in the main-memory
 * work queue, let the MDC poll and execute them, then render part of
 * the simulated 1024x768 screen as ASCII art.
 *
 * Usage: display_demo [message]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "cache/cache.hh"
#include "io/mdc.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

constexpr Addr kQueueBase = 0x0010'0000;
constexpr Addr kInputBase = 0x0011'0000;
constexpr Addr kTextBase = 0x0012'0000;

struct Machine
{
    Simulator sim;
    MainMemory memory;
    MBus bus;
    Cache ioCache;
    QBus qbus;
    Mdc mdc;

    Machine()
        : bus(sim, memory),
          ioCache(sim, bus, makeProtocol(ProtocolKind::Firefly), {},
                  "io-cache"),
          qbus(sim, ioCache, 16 * 1024 * 1024), mdc(sim, qbus, config())
    {
        memory.addModule(4 * 1024 * 1024);
        qbus.identityMap();
        mdc.loadBuiltinFont();
        mdc.start();
    }

    static Mdc::Config
    config()
    {
        Mdc::Config cfg;
        cfg.queueBase = kQueueBase;
        cfg.inputBase = kInputBase;
        return cfg;
    }

    void
    enqueue(const MdcCommand &command)
    {
        const Word producer = memory.read(kQueueBase);
        const Addr entry = kQueueBase + 8 +
            (producer % config().queueEntries) * sizeof(MdcCommand);
        for (unsigned i = 0; i < command.size(); ++i)
            memory.write(entry + 4 * i, command[i]);
        memory.write(kQueueBase, producer + 1);
    }

    void
    drain()
    {
        while (memory.read(kQueueBase + 4) != memory.read(kQueueBase))
            sim.run(10000);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string message =
        argc > 1 ? argv[1] : "FIREFLY: A Multiprocessor Workstation";

    Machine machine;

    // A window frame: filled title bar, border, then the message
    // painted from the off-screen font cache.
    machine.enqueue(Mdc::encodeFill(16, 16, 640, 96, RasterOp::Clear));
    machine.enqueue(Mdc::encodeFill(16, 16, 640, 2, RasterOp::Set));
    machine.enqueue(Mdc::encodeFill(16, 110, 640, 2, RasterOp::Set));
    machine.enqueue(Mdc::encodeFill(16, 16, 2, 96, RasterOp::Set));
    machine.enqueue(Mdc::encodeFill(654, 16, 2, 96, RasterOp::Set));
    machine.enqueue(Mdc::encodeFill(16, 16, 640, 20, RasterOp::Set));

    // The message text, packed four characters per word.
    for (unsigned i = 0; i < message.size(); i += 4) {
        Word word = 0;
        for (unsigned b = 0; b < 4 && i + b < message.size(); ++b)
            word |= static_cast<Word>(message[i + b]) << (8 * b);
        machine.memory.write(kTextBase + i, word);
    }
    machine.enqueue(Mdc::encodePaintChars(
        32, 56, message.size(), kTextBase));

    machine.drain();

    std::printf("MDC executed %llu commands, painted %llu pixels and "
                "%llu characters in %.2f simulated ms\n\n",
                static_cast<unsigned long long>(
                    machine.mdc.commandsExecuted.value()),
                static_cast<unsigned long long>(
                    machine.mdc.pixelsPainted.value()),
                static_cast<unsigned long long>(
                    machine.mdc.charsPainted.value()),
                machine.sim.seconds() * 1e3);

    // Show the painted region (downsampled 2x horizontally).
    const unsigned text_px = 8 * message.size();
    std::printf("%s\n",
                machine.mdc.frameBuffer()
                    .ascii({24, 48, text_px + 24, 32}, 1)
                    .c_str());
    return 0;
}
