/**
 * @file
 * The Topaz Threads exerciser (the Table 2 workload) as a runnable
 * program: forks worker threads that lock, update shared counters
 * through the coherent memory system, signal, wait, yield and
 * migrate, then verifies the counters and prints the machine's
 * hardware-counter view.
 *
 * Usage: threads_exerciser [cpus] [threads] [affinity|global]
 *        threads_exerciser --structure   (print paper Figure 2)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "firefly/system.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

void
printStructure()
{
    // Paper Figure 2: the internal structure of Topaz.
    std::puts(
        "  Internal structure of Topaz (paper Figure 2)\n"
        "\n"
        "   user mode\n"
        "  +-------------+  +-------------+  +---------+  +---------+\n"
        "  | Ultrix      |  | Topaz       |  | Taos    |  | UserTTD |\n"
        "  | application |  | application |  | (OS)    |  | (debug) |\n"
        "  | (1 thread)  |  | (n threads) |  |         |  |         |\n"
        "  +------+------+  +------+------+  +----+----+  +----+----+\n"
        "         |                |              |            |\n"
        "         +-------- remote procedure calls ------------+\n"
        "                          |\n"
        "   kernel mode     +------+------+\n"
        "                   |     Nub     |  virtual memory, thread\n"
        "                   |  (+ NubTTD) |  scheduling, drivers, RPC\n"
        "                   +-------------+  transport\n");
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cpus = 4;
    unsigned threads = 12;
    SchedulerPolicy policy = SchedulerPolicy::Affinity;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--structure") == 0) {
            printStructure();
            return 0;
        } else if (std::strcmp(argv[i], "global") == 0) {
            policy = SchedulerPolicy::Global;
        } else if (std::strcmp(argv[i], "affinity") == 0) {
            policy = SchedulerPolicy::Affinity;
        } else if (i == 1) {
            cpus = std::atoi(argv[i]);
        } else {
            threads = std::atoi(argv[i]);
        }
    }

    FireflySystem sys(FireflyConfig::microVax(cpus));
    TopazConfig tc;
    tc.cpus = cpus;
    tc.policy = policy;
    TopazRuntime runtime(tc);

    ExerciserParams params;
    params.threads = threads;
    params.iterations = 200;
    const auto expected = buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < cpus; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);

    std::printf("Threads exerciser: %u threads on %u CPUs, %s "
                "scheduler\n", threads, cpus, toString(policy));
    sys.runToCompletion();

    // Verify the lock-protected counters end-to-end: every increment
    // was a real read-modify-write through the coherent caches.
    for (unsigned i = 0; i < cpus; ++i)
        sys.cache(i).flushFunctional();
    std::uint64_t total = 0;
    for (unsigned g = 0; g < params.groups; ++g)
        total += sys.memory().read(runtime.counterAddr(g));
    std::printf("\nshared counters: %llu of %llu expected increments "
                "%s\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(expected),
                total == expected ? "(exact - coherence held)"
                                  : "(MISMATCH!)");

    std::printf("\nruntime statistics after %.3f simulated "
                "seconds:\n", sys.seconds());
    std::printf("  context switches  %10llu\n",
                static_cast<unsigned long long>(
                    runtime.contextSwitches.value()));
    std::printf("  migrations        %10llu\n",
                static_cast<unsigned long long>(
                    runtime.migrations.value()));
    std::printf("  locks acquired    %10llu (%llu contended)\n",
                static_cast<unsigned long long>(
                    runtime.locksAcquired.value()),
                static_cast<unsigned long long>(
                    runtime.lockContentions.value()));
    std::printf("  waits / signals   %10llu / %llu\n",
                static_cast<unsigned long long>(runtime.waits.value()),
                static_cast<unsigned long long>(
                    runtime.signals.value()));

    double wt_shared = 0, wt_clear = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        wt_shared += sys.cache(i).wtMshared.value();
        wt_clear += sys.cache(i).wtNoMshared.value();
    }
    std::printf("\nhardware view:\n");
    std::printf("  bus load                    %6.2f\n", sys.busLoad());
    std::printf("  write-throughs w/ MShared   %6.0f%%  (the Table 2 "
                "sharing signature)\n",
                100.0 * wt_shared / (wt_shared + wt_clear));
    return total == expected ? 0 : 1;
}
