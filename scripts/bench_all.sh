#!/bin/sh
# Run every sweep bench serially (--jobs=1) and in parallel
# (--jobs=N), verify the parallel run reproduces the serial stats
# byte for byte, and record wall-clock and speedup per sweep in
# BENCH_sweeps.json - the start of the perf trajectory.  Then run
# the host-throughput bench (firefly_perf) and record its grid in
# BENCH_perf.json - the baseline scripts/check.sh perf compares
# against.
#
#   scripts/bench_all.sh [builddir] [jobs]
#
# Defaults: builddir = build, jobs = nproc.  Exits nonzero if any
# bench fails or any parallel stats file diverges from its serial
# twin (the determinism contract: same seed => identical stats,
# independent of --jobs).
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
builddir="${1:-$repo/build}"
jobs="${2:-$(nproc)}"
out="$repo/BENCH_sweeps.json"

sweeps="bench_protocols bench_scaling bench_line_size bench_migration \
bench_cvax_upgrade bench_table1_estimated"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

now_ns() { date +%s%N; }

for bench in $sweeps; do
    bin="$builddir/bench/$bench"
    [ -x "$bin" ] || { echo "missing $bin (build first)" >&2; exit 1; }

    echo "== $bench --jobs=1"
    t0=$(now_ns)
    "$bin" --jobs=1 --stats-json="$tmpdir/$bench.serial.json" \
        > /dev/null
    t1=$(now_ns)

    echo "== $bench --jobs=$jobs"
    "$bin" --jobs="$jobs" --stats-json="$tmpdir/$bench.parallel.json" \
        > /dev/null
    t2=$(now_ns)

    identical=na
    if [ -s "$tmpdir/$bench.serial.json" ]; then
        if cmp -s "$tmpdir/$bench.serial.json" \
                  "$tmpdir/$bench.parallel.json"; then
            identical=true
        else
            echo "$bench: stats diverge between --jobs=1 and" \
                 "--jobs=$jobs" >&2
            exit 1
        fi
    fi
    echo "$bench $((t1 - t0)) $((t2 - t1)) $identical" \
        >> "$tmpdir/rows"
done

python3 - "$tmpdir/rows" "$jobs" "$out" <<'EOF'
import json, os, sys, time

rows_path, jobs, out = sys.argv[1], int(sys.argv[2]), sys.argv[3]
sweeps = []
for line in open(rows_path):
    bench, serial_ns, parallel_ns, identical = line.split()
    serial_s, parallel_s = int(serial_ns) / 1e9, int(parallel_ns) / 1e9
    sweeps.append({
        "bench": bench,
        "seconds_jobs1": round(serial_s, 3),
        f"seconds_jobs{jobs}": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "stats_identical": {"true": True, "na": None}[identical],
    })
doc = {
    "schema": "firefly-bench-sweeps-v1",
    "recorded_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "host_cores": os.cpu_count(),
    "jobs": jobs,
    "sweeps": sweeps,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
EOF

echo "== firefly_perf"
"$builddir/bench/firefly_perf" --perf-json="$repo/BENCH_perf.json"
echo "wrote $repo/BENCH_perf.json"
