#!/bin/sh
# One-command verification: configure, build, and run the test suite,
# then smoke-test the flight recorder end to end.
#
#   scripts/check.sh                 # plain RelWithDebInfo build
#   scripts/check.sh address         # AddressSanitizer build
#   scripts/check.sh undefined       # UBSan build
#   scripts/check.sh thread          # ThreadSanitizer build
#   scripts/check.sh fuzz            # coherence fuzzing under ASan
#   scripts/check.sh faults          # fault injection under ASan
#   scripts/check.sh perf            # host-performance lane
#
# Each variant uses its own build directory so they do not trample
# one another's caches.  The thread variant runs the tests labelled
# "tsan" (sweep harness, observability, logging - everything the
# parallel harness threads through) so new threading stays race-clean
# without paying TSan's ~10x slowdown on the whole cycle-level suite.
# The fuzz variant runs the "checker"-labelled tests plus the
# fixed-seed firefly_fuzz corpus (5 protocols x 3 machine shapes)
# under AddressSanitizer; see DESIGN.md section 9.  The faults
# variant runs the "faults"-labelled tests, the firefly_faults
# availability experiment (with a --jobs determinism check), and the
# fuzz corpus with fault injection armed, all under ASan with the
# coherence checker on; see DESIGN.md section 10.  The perf variant
# guards the host-performance work (DESIGN.md section 11): it proves
# idle fast-forward changes nothing observable (byte-identical stats
# exports with FIREFLY_NO_FASTFORWARD=1), that the idle-heavy
# speedup is still there, and that throughput has not cratered
# against the committed BENCH_perf.json baseline (lenient threshold:
# hosts differ; the committed file tracks the trajectory).
set -eu

sanitize="${1:-}"
repo="$(cd "$(dirname "$0")/.." && pwd)"

case "$sanitize" in
    "")        builddir="$repo/build" ;;
    address)   builddir="$repo/build-asan" ;;
    undefined) builddir="$repo/build-ubsan" ;;
    thread)    builddir="$repo/build-tsan" ;;
    fuzz)      builddir="$repo/build-asan" ;;
    faults)    builddir="$repo/build-asan" ;;
    perf)      builddir="$repo/build" ;;
    *)
        echo "usage: $0 [address|undefined|thread|fuzz|faults|perf]" >&2
        exit 2
        ;;
esac

if [ "$sanitize" = fuzz ]; then
    cmake -B "$builddir" -S "$repo" -DFIREFLY_SANITIZE=address
    cmake --build "$builddir" -j "$(nproc)"
    (cd "$builddir" && ctest --output-on-failure -j "$(nproc)" -L checker)
    # The full fixed-seed corpus, parallel, with a deeper reference
    # stream than the ctest default.  Any violation exits nonzero
    # with the checker's diagnostic and the reproduction seed.
    FIREFLY_FUZZ_SEEDS=10 FIREFLY_FUZZ_STEPS=4000 \
        "$builddir/bench/firefly_fuzz" --jobs="$(nproc)"
    echo "check.sh: all green (fuzz)"
    exit 0
fi

if [ "$sanitize" = faults ]; then
    cmake -B "$builddir" -S "$repo" -DFIREFLY_SANITIZE=address
    cmake --build "$builddir" -j "$(nproc)"
    (cd "$builddir" && ctest --output-on-failure -j "$(nproc)" -L faults)
    faultdir="$(mktemp -d)"
    trap 'rm -rf "$faultdir"' EXIT
    # The availability experiment: recoverable faults recover, device
    # timeouts fail gracefully, a fenced CPU leaves a working N-1
    # machine - and the same fault config exports a byte-identical
    # stats file whatever --jobs is.
    "$builddir/bench/firefly_faults" --jobs=1 \
        --stats-json="$faultdir/serial.json" > /dev/null
    "$builddir/bench/firefly_faults" --jobs=8 \
        --stats-json="$faultdir/parallel.json" > /dev/null
    cmp "$faultdir/serial.json" "$faultdir/parallel.json" || {
        echo "fault stats diverge between --jobs=1 and --jobs=8" >&2
        exit 1
    }
    # The coherence fuzz corpus with faults armed: injected parity,
    # ECC, and device timeouts must never perturb load values.
    FIREFLY_FUZZ_SEEDS=4 FIREFLY_FUZZ_STEPS=1500 \
        "$builddir/bench/firefly_fuzz" --fault-rate=0.01 \
        --jobs="$(nproc)"
    # Fault flags exist only on the fault-aware benches; everything
    # else must reject them as unknown arguments.
    for bench in bench_scaling bench_protocols bench_io_dma; do
        if "$builddir/bench/$bench" --fault-rate=0.01 \
                > /dev/null 2>&1; then
            echo "$bench accepted --fault-rate; it must reject it" >&2
            exit 1
        fi
    done
    echo "check.sh: all green (faults)"
    exit 0
fi

if [ "$sanitize" = perf ]; then
    cmake -B "$builddir" -S "$repo"
    cmake --build "$builddir" -j "$(nproc)"
    perfdir="$(mktemp -d)"
    trap 'rm -rf "$perfdir"' EXIT

    # 1. Fast-forward must be invisible: the perf bench's headline
    #    stat export and a standard event-heavy bench's export must be
    #    byte-identical with the fast path on and forced off.
    "$builddir/bench/firefly_perf" --perf-reps=1 --perf-seconds=0.01 \
        --stats-json="$perfdir/perf.fast.json" \
        --perf-json="$perfdir/perf.fast.perf.json" > /dev/null
    FIREFLY_NO_FASTFORWARD=1 \
        "$builddir/bench/firefly_perf" --perf-reps=1 \
        --perf-seconds=0.01 \
        --stats-json="$perfdir/perf.slow.json" > /dev/null
    cmp "$perfdir/perf.fast.json" "$perfdir/perf.slow.json" || {
        echo "stats diverge between fast-forward and forced-slow" >&2
        exit 1
    }
    "$builddir/bench/bench_io_dma" \
        --stats-json="$perfdir/dma.fast.json" > /dev/null
    FIREFLY_NO_FASTFORWARD=1 "$builddir/bench/bench_io_dma" \
        --stats-json="$perfdir/dma.slow.json" > /dev/null
    cmp "$perfdir/dma.fast.json" "$perfdir/dma.slow.json" || {
        echo "bench_io_dma stats diverge with fast-forward off" >&2
        exit 1
    }

    # 2. The point of the machinery: a real measurement run, checked
    #    for the idle-heavy speedup and (leniently - hosts vary) for
    #    throughput against the committed baseline.
    "$builddir/bench/firefly_perf" \
        --perf-json="$perfdir/perf.json" > /dev/null
    python3 - "$perfdir/perf.json" "$repo/BENCH_perf.json" <<'EOF'
import json, sys

cur = json.load(open(sys.argv[1]))
points = {(p["workload"], p["protocol"], p["cpus"]): p
          for p in cur["points"]}

# Idle fast-forward must still deliver: >= 3x over the forced-slow
# path on every idle-heavy point (measured well above 10x in
# practice; 3x is the contract).
for key, p in points.items():
    if key[0] != "idle":
        continue
    if p["speedup_vs_slow"] < 3.0:
        sys.exit(f"idle point {key}: fast-forward speedup "
                 f"{p['speedup_vs_slow']:.2f}x < 3x")

# Trajectory check against the committed baseline.  Hosts differ, so
# only a collapse (< 0.4x of the recorded throughput) fails; slower
# hosts trip nothing, real regressions (an accidental O(n) in the
# cycle loop) trip everything.
try:
    base = json.load(open(sys.argv[2]))
except FileNotFoundError:
    print("no committed BENCH_perf.json; skipping trajectory check")
    sys.exit(0)
for bp in base["points"]:
    key = (bp["workload"], bp["protocol"], bp["cpus"])
    p = points.get(key)
    if p is None:
        continue
    ratio = p["fast_cycles_per_sec"] / bp["fast_cycles_per_sec"]
    if ratio < 0.4:
        sys.exit(f"point {key}: {p['fast_cycles_per_sec']:.3g} "
                 f"cycles/s is {ratio:.2f}x of the committed "
                 f"baseline - host-performance regression")
print("perf lane: fast/slow identical, idle speedup >= 3x, "
      "throughput within baseline envelope")
EOF
    echo "check.sh: all green (perf)"
    exit 0
fi

cmake -B "$builddir" -S "$repo" \
    ${sanitize:+-DFIREFLY_SANITIZE="$sanitize"}
cmake --build "$builddir" -j "$(nproc)"
if [ "$sanitize" = thread ]; then
    (cd "$builddir" && ctest --output-on-failure -j "$(nproc)" -L tsan)
    # A parallel sweep in a real bench binary must run race-free and
    # produce the same stats file as the serial loop.
    tsandir="$(mktemp -d)"
    trap 'rm -rf "$tsandir"' EXIT
    "$builddir/bench/bench_line_size" --jobs=1 \
        --stats-json="$tsandir/serial.json" > /dev/null
    "$builddir/bench/bench_line_size" --jobs=4 \
        --stats-json="$tsandir/parallel.json" > /dev/null
    cmp "$tsandir/serial.json" "$tsandir/parallel.json" || {
        echo "stats diverge between --jobs=1 and --jobs=4" >&2
        exit 1
    }
    # The fuzz corpus shares checker state across sweep workers; it
    # must be race-clean too - with and without fault injection.
    "$builddir/bench/firefly_fuzz" --jobs=4 > /dev/null
    FIREFLY_FUZZ_SEEDS=2 FIREFLY_FUZZ_STEPS=800 \
        "$builddir/bench/firefly_fuzz" --fault-rate=0.01 --jobs=4 \
        > /dev/null
    echo "check.sh: all green (sanitize=thread)"
    exit 0
fi
(cd "$builddir" && ctest --output-on-failure -j "$(nproc)")

# Flight-recorder smoke test: the observed bench run must produce a
# parseable trace and stats export (obs_test covers the details; this
# checks the command-line plumbing in a real binary).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
"$builddir/bench/bench_scaling" \
    --trace-out="$tmpdir/trace.json" \
    --stats-json="$tmpdir/stats.json" > /dev/null
for f in trace.json stats.json stats.json.timeseries.csv; do
    test -s "$tmpdir/$f" || { echo "missing $f" >&2; exit 1; }
done
python3 - "$tmpdir" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(f"{d}/trace.json"))
cats = {r.get("cat") for r in trace if r["ph"] != "M"}
assert {"MBus", "Cache", "Cpu", "Sched"} <= cats, cats
stats = json.load(open(f"{d}/stats.json"))
assert stats["name"] == "system"
EOF

echo "check.sh: all green${sanitize:+ (sanitize=$sanitize)}"
