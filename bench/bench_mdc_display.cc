/**
 * @file
 * Experiment X7: the display controller's performance claims.
 *
 * "The MDC can paint a large area of the screen at 16 megapixels per
 * second, and can paint approximately 20,000 10-point characters per
 * second."  Both are measured through the real work-queue protocol:
 * commands in main memory, polled and executed by the controller,
 * with every queue and character fetch a real DMA through the I/O
 * processor's cache.
 */

#include <cstdio>

#include "bench_util.hh"
#include "io/mdc.hh"
#include "mem/main_memory.hh"
#include "mbus/mbus.hh"
#include "cache/cache.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

constexpr Addr kQueueBase = 0x0010'0000;
constexpr Addr kInputBase = 0x0011'0000;
constexpr Addr kCharsBase = 0x0012'0000;

struct Rig
{
    Simulator sim;
    MainMemory memory;
    MBus bus;
    Cache ioCache;
    QBus qbus;
    Mdc mdc;

    Rig()
        : bus(sim, memory),
          ioCache(sim, bus, makeProtocol(ProtocolKind::Firefly), {},
                  "io-cache"),
          qbus(sim, ioCache, 16 * 1024 * 1024), mdc(sim, qbus, config())
    {
        memory.addModule(4 * 1024 * 1024);
        qbus.identityMap();
        mdc.loadBuiltinFont();
        mdc.start();
    }

    static Mdc::Config
    config()
    {
        Mdc::Config cfg;
        cfg.queueBase = kQueueBase;
        cfg.inputBase = kInputBase;
        return cfg;
    }

    void
    enqueue(const MdcCommand &command)
    {
        const Word producer = memory.read(kQueueBase);
        const Addr entry = kQueueBase + 8 +
            (producer % config().queueEntries) * sizeof(MdcCommand);
        for (unsigned i = 0; i < command.size(); ++i)
            memory.write(entry + 4 * i, command[i]);
        memory.write(kQueueBase, producer + 1);
    }

    void
    drain()
    {
        while (memory.read(kQueueBase + 4) != memory.read(kQueueBase))
            sim.run(10000);
    }
};

void
experiment()
{
    bench::banner("X7", "MDC display controller performance");

    {
        Rig rig;
        const Cycle start = rig.sim.now();
        for (int i = 0; i < 8; ++i) {
            rig.enqueue(Mdc::encodeFill(0, 0, 1024, 768,
                                        i % 2 ? RasterOp::Clear
                                              : RasterOp::Set));
            rig.drain();
        }
        const double secs = (rig.sim.now() - start) * 100e-9;
        const double mpix = 8.0 * 1024 * 768 / secs / 1e6;
        std::printf("\nFull-screen fills: %.1f Mpixel/s  (paper: "
                    "\"16 megapixels per second\")\n", mpix);
    }

    {
        Rig rig;
        // 4096 characters through the font cache.
        for (unsigned i = 0; i < 128; ++i)
            rig.memory.write(kCharsBase + 4 * i,
                             0x41424344 + (i & 7));
        const Cycle start = rig.sim.now();
        for (int cmd = 0; cmd < 16; ++cmd) {
            rig.enqueue(Mdc::encodePaintChars(0, (cmd % 48) * 16, 256,
                                              kCharsBase));
            if (cmd % 4 == 3)
                rig.drain();
        }
        rig.drain();
        const double secs = (rig.sim.now() - start) * 100e-9;
        const double cps = 16.0 * 256 / secs;
        std::printf("Character painting: %.0f chars/s  (paper: "
                    "\"approximately 20,000 10-point characters per "
                    "second\")\n", cps);
    }

    {
        Rig rig;
        rig.sim.run(secondsToCycles(0.5));
        std::printf("Input deposits over 0.5 s: %llu  (paper: "
                    "\"sixty times per second\")\n",
                    static_cast<unsigned long long>(
                        rig.mdc.deposits.value()));
    }

    {
        // Scrolling (the window manager's bread and butter): copy
        // the screen up one text row, clear the bottom row.
        Rig rig;
        rig.enqueue(Mdc::encodeFill(0, 0, 1024, 768, RasterOp::Set));
        rig.drain();
        const Cycle start = rig.sim.now();
        rig.enqueue(Mdc::encodeCopyRect(0, 16, 0, 0, 1024, 752,
                                        RasterOp::Copy));
        rig.enqueue(Mdc::encodeFill(0, 752, 1024, 16,
                                    RasterOp::Clear));
        rig.drain();
        const double ms = (rig.sim.now() - start) * 100e-9 * 1e3;
        std::printf("Full-screen scroll by one text row: %.1f ms\n",
                    ms);
        bench::exportStats(rig.mdc.stats());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
