/**
 * @file
 * Experiment F3: regenerate paper Figure 3, "Cache Line States" -
 * the Firefly protocol's state transition diagram, derived by driving
 * a two-cache machine through every (state x operation x MShared)
 * combination and observing the resulting state.  Each observed
 * transition is checked against the paper's figure.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cache/cache.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

constexpr Addr kA = 0x1000;
constexpr Addr kConflict = kA + 16 * 1024;

/** Two Firefly caches on one bus, with blocking access helpers. */
struct Rig
{
    Simulator sim;
    MainMemory memory;
    MBus bus;
    Cache c0, c1;

    Rig()
        : bus(sim, memory),
          c0(sim, bus, makeProtocol(ProtocolKind::Firefly), {}, "c0"),
          c1(sim, bus, makeProtocol(ProtocolKind::Firefly), {}, "c1")
    {
        memory.addModule(4 * 1024 * 1024);
    }

    void
    access(Cache &cache, const MemRef &ref)
    {
        bool done = false;
        auto result = cache.cpuAccess(ref, [&](Word) { done = true; });
        if (result.outcome == Cache::AccessOutcome::Hit)
            return;
        while (!done)
            sim.run(1);
    }

    void read(Cache &c, Addr a) { access(c, {a, RefType::DataRead, 0}); }
    void write(Cache &c, Addr a) { access(c, {a, RefType::DataWrite, 1}); }

    LineState
    state(const Cache &cache) const
    {
        if (!cache.holds(kA))
            return LineState::Invalid;
        return cache.lineAt(kA).state;
    }

    /** Bring c0's line for kA into `target`, with or without c1
     *  sharing it. */
    void
    prepare(LineState target, bool other_holds)
    {
        switch (target) {
          case LineState::Invalid:
            break;
          case LineState::Valid:
            read(c0, kA);
            break;
          case LineState::Dirty:
            write(c0, kA);  // WT-allocate, Valid
            write(c0, kA);  // silent, Dirty
            break;
          case LineState::Shared:
            read(c1, kA);
            read(c0, kA);
            if (!other_holds)
                read(c1, kConflict);  // evict c1's copy
            return;
          default:
            break;
        }
        if (other_holds)
            read(c1, kA);
    }
};

struct Transition
{
    LineState from;
    std::string operation;  ///< paper notation: P-read, P-write, M-...
    std::string condition;  ///< MShared response, if relevant
    LineState expected;
    std::function<void(Rig &)> prepare;
    std::function<void(Rig &)> act;
};

void
experiment()
{
    bench::banner("Figure 3",
                  "Firefly cache line states and transitions");

    std::vector<Transition> transitions = {
        // --- processor reads ------------------------------------------
        {LineState::Invalid, "P-read miss", "(not MShared)",
         LineState::Valid,
         [](Rig &) {},
         [](Rig &r) { r.read(r.c0, kA); }},
        {LineState::Invalid, "P-read miss", "(MShared)",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Invalid, true); },
         [](Rig &r) { r.read(r.c0, kA); }},
        {LineState::Valid, "P-read hit", "",
         LineState::Valid,
         [](Rig &r) { r.prepare(LineState::Valid, false); },
         [](Rig &r) { r.read(r.c0, kA); }},
        {LineState::Dirty, "P-read hit", "",
         LineState::Dirty,
         [](Rig &r) { r.prepare(LineState::Dirty, false); },
         [](Rig &r) { r.read(r.c0, kA); }},
        {LineState::Shared, "P-read hit", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Shared, true); },
         [](Rig &r) { r.read(r.c0, kA); }},

        // --- processor writes -----------------------------------------
        {LineState::Invalid, "P-write miss (WT, no fill)",
         "(not MShared)", LineState::Valid,
         [](Rig &) {},
         [](Rig &r) { r.write(r.c0, kA); }},
        {LineState::Invalid, "P-write miss (WT, no fill)", "(MShared)",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Invalid, true); },
         [](Rig &r) { r.write(r.c0, kA); }},
        {LineState::Valid, "P-write hit", "(no bus op)",
         LineState::Dirty,
         [](Rig &r) { r.prepare(LineState::Valid, false); },
         [](Rig &r) { r.write(r.c0, kA); }},
        {LineState::Dirty, "P-write hit", "(no bus op)",
         LineState::Dirty,
         [](Rig &r) { r.prepare(LineState::Dirty, false); },
         [](Rig &r) { r.write(r.c0, kA); }},
        {LineState::Shared, "P-write hit (write-through)", "(MShared)",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Shared, true); },
         [](Rig &r) { r.write(r.c0, kA); }},
        {LineState::Shared, "P-write hit (write-through)",
         "(not MShared)", LineState::Valid,
         [](Rig &r) { r.prepare(LineState::Shared, false); },
         [](Rig &r) { r.write(r.c0, kA); }},

        // --- bus (M) operations observed by a snooping cache ----------
        {LineState::Valid, "M-read (snooped)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Valid, false); },
         [](Rig &r) { r.read(r.c1, kA); }},
        {LineState::Dirty, "M-read (snooped, supplies data)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Dirty, false); },
         [](Rig &r) { r.read(r.c1, kA); }},
        {LineState::Shared, "M-read (snooped)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Shared, true); },
         [](Rig &r) { r.read(r.c1, kA); }},
        {LineState::Shared, "M-write (snooped update)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Shared, true); },
         [](Rig &r) { r.write(r.c1, kA); }},
        {LineState::Dirty, "M-write (snooped update)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Dirty, false); },
         [](Rig &r) { r.write(r.c1, kA); }},
        {LineState::Valid, "M-write (snooped update)", "",
         LineState::Shared,
         [](Rig &r) { r.prepare(LineState::Valid, false); },
         [](Rig &r) { r.write(r.c1, kA); }},
    };

    std::printf("%-9s %-34s %-15s %-9s %-9s %s\n", "from", "operation",
                "condition", "expected", "observed", "check");
    bench::rule();

    int failures = 0;
    for (const auto &t : transitions) {
        Rig rig;
        t.prepare(rig);
        t.act(rig);
        const LineState observed = rig.state(rig.c0);
        const bool ok = observed == t.expected;
        failures += !ok;
        bench::exportStats(rig.c0.stats());
        std::printf("%-9s %-34s %-15s %-9s %-9s %s\n",
                    toString(t.from), t.operation.c_str(),
                    t.condition.c_str(), toString(t.expected),
                    toString(observed), ok ? "OK" : "** MISMATCH **");
    }
    bench::rule();
    std::printf("%zu transitions checked, %d mismatches "
                "(paper Figure 3 is reproduced when 0)\n",
                transitions.size(), failures);
}

void
stateTransitionLatency(benchmark::State &state)
{
    // How fast the simulator executes a sharing ping-pong.
    Rig rig;
    rig.read(rig.c0, kA);
    rig.read(rig.c1, kA);
    for (auto _ : state) {
        rig.write(rig.c0, kA);
        rig.write(rig.c1, kA);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(stateTransitionLatency);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
