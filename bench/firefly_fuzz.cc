/**
 * @file
 * Coherence fuzzing driver: the checker subsystem (src/check/) run as
 * a standalone corpus, not a table from the paper.  Every point is a
 * randomized multi-CPU reference stream executed against one of the
 * five protocols with the golden-memory oracle and invariant scanner
 * armed; any violation aborts the run with the checker's line-level
 * diagnostic and replay log.
 *
 * The corpus is fixed-seed (harness::pointSeed off one base), so a
 * failure reproduces exactly: rerun with FIREFLY_FUZZ_BASE_SEED set
 * to the printed base and the same shape/seed indices.
 *
 *   FIREFLY_FUZZ_SEEDS=N       seeds per protocol x shape cell (8)
 *   FIREFLY_FUZZ_STEPS=N       references per run (2000)
 *   FIREFLY_FUZZ_BASE_SEED=N   corpus base seed (0xF1EF7)
 *
 * (Environment variables, because the bench CLI rejects unknown
 * flags; --jobs=N parallelizes the sweep as usual.)
 *
 * Fault injection (src/fault/) composes with the corpus:
 *
 *   --fault-rate=F   inject bus parity, single-bit ECC, and device
 *                    timeout faults at per-draw rate F into every run
 *   --fault-seed=N   fault-plan seed (default: the corpus base seed)
 *
 * Faults change timing, never values, so the oracle and the
 * differential pass must stay clean with any rate.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "check/fuzz.hh"

using namespace firefly;
using check::FuzzConfig;
using check::FuzzResult;
using check::runFuzz;

namespace
{

constexpr ProtocolKind kProtocols[] = {
    ProtocolKind::Firefly,       ProtocolKind::Dragon,
    ProtocolKind::Mesi,          ProtocolKind::Berkeley,
    ProtocolKind::WriteThroughInvalidate,
};

/** The three machine shapes the corpus cycles through. */
struct Shape
{
    const char *name;
    void (*apply)(FuzzConfig &);
};

constexpr Shape kShapes[] = {
    {"1-word lines", [](FuzzConfig &) {}},
    {"2-word lines, heavy DMA",
     [](FuzzConfig &cfg) {
         cfg.lineBytes = 8;
         cfg.dmaFrac = 0.2;
         cfg.dmaBurstMax = 4;
     }},
    {"4 caches, tiny, contended",
     [](FuzzConfig &cfg) {
         cfg.nCaches = 4;
         cfg.cacheBytes = 128;
         cfg.sharedFrac = 0.85;
         cfg.migrateFrac = 0.3;
     }},
};

std::optional<double> gFaultRate;     // --fault-rate=F
std::optional<std::uint64_t> gFaultSeed;  // --fault-seed=N

/** Arm the fault campaign on one corpus point, if requested. */
void
applyFaults(FuzzConfig &cfg, std::uint64_t base)
{
    if (!gFaultRate)
        return;
    cfg.faults.enabled = true;
    cfg.faults.seed = gFaultSeed.value_or(base);
    cfg.faults.rates.busParity = *gFaultRate;
    cfg.faults.rates.eccSingle = *gFaultRate;
    cfg.faults.rates.deviceTimeout = *gFaultRate;
    // Unrecoverable faults surface as a catchable MachineCheck with
    // the reproduction banner, not an abort.
    cfg.faults.throwOnMachineCheck = true;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(value, &end, 0);
    if (*end != '\0') {
        std::fprintf(stderr, "%s: not a number: '%s'\n", name, value);
        std::exit(2);
    }
    return n;
}

void
experiment()
{
    bench::banner("FUZZ", "Randomized coherence checking corpus");

    const std::uint64_t base = envU64("FIREFLY_FUZZ_BASE_SEED", 0xF1EF7);
    const unsigned seeds =
        static_cast<unsigned>(envU64("FIREFLY_FUZZ_SEEDS", 8));
    const unsigned steps =
        static_cast<unsigned>(envU64("FIREFLY_FUZZ_STEPS", 2000));

    std::printf("base seed 0x%llx, %u seeds/cell, %u refs/run\n",
                static_cast<unsigned long long>(base), seeds, steps);
    if (gFaultRate) {
        std::printf("fault injection armed: rate %g, fault seed "
                    "0x%llx\n",
                    *gFaultRate,
                    static_cast<unsigned long long>(
                        gFaultSeed.value_or(base)));
    }
    std::printf("\n");

    std::vector<FuzzConfig> corpus;
    for (unsigned p = 0; p < std::size(kProtocols); ++p) {
        for (unsigned sh = 0; sh < std::size(kShapes); ++sh) {
            for (unsigned s = 0; s < seeds; ++s) {
                FuzzConfig cfg;
                cfg.protocol = kProtocols[p];
                cfg.seed = harness::pointSeed(base, p, sh, s);
                cfg.steps = steps;
                kShapes[sh].apply(cfg);
                applyFaults(cfg, base);
                corpus.push_back(cfg);
            }
        }
    }

    std::vector<FuzzResult> results;
    try {
        results = bench::runSweep(
            corpus, [](const FuzzConfig &cfg) { return runFuzz(cfg); });
    } catch (const std::exception &e) {
        std::fprintf(stderr, "\n%s\n", e.what());
        std::fprintf(stderr,
                     "\nreproduce: FIREFLY_FUZZ_BASE_SEED=0x%llx "
                     "FIREFLY_FUZZ_STEPS=%u %s\n",
                     static_cast<unsigned long long>(base), steps,
                     "bench/firefly_fuzz");
        std::exit(1);
    }

    // Per protocol x shape cell: how much checking actually happened.
    std::printf("%-10s %-26s %10s %12s %12s %10s\n", "protocol",
                "shape", "loads", "writes", "scans", "cycles");
    bench::rule();
    StatGroup summary("fuzz");
    Counter loads, writes, scans, runs;
    Counter parity, recovered, timeouts;
    summary.addCounter(&runs, "runs", "fuzz executions, all clean");
    summary.addCounter(&loads, "loads_checked",
                       "loads validated against the oracle");
    summary.addCounter(&writes, "writes_tracked",
                       "writes serialized into the oracle");
    summary.addCounter(&scans, "full_scans",
                       "whole-machine invariant scans");
    summary.addCounter(&parity, "parity_errors",
                       "bus parity NACKs injected");
    summary.addCounter(&recovered, "parity_recovered",
                       "NACKed transactions that recovered");
    summary.addCounter(&timeouts, "device_timeouts",
                       "DMA requests timed out");

    std::size_t at = 0;
    for (unsigned p = 0; p < std::size(kProtocols); ++p) {
        for (unsigned sh = 0; sh < std::size(kShapes); ++sh) {
            std::uint64_t cell_loads = 0, cell_writes = 0;
            std::uint64_t cell_scans = 0, cell_cycles = 0;
            for (unsigned s = 0; s < seeds; ++s, ++at) {
                const FuzzResult &r = results[at];
                cell_loads += r.loadsChecked;
                cell_writes += r.writesTracked;
                cell_scans += r.fullScans;
                cell_cycles += r.cycles;
                runs += 1;
                loads += r.loadsChecked;
                writes += r.writesTracked;
                scans += r.fullScans;
                parity += r.parityErrors;
                recovered += r.parityRecovered;
                timeouts += r.deviceTimeouts;
            }
            std::printf("%-10s %-26s %10llu %12llu %12llu %10llu\n",
                        toString(kProtocols[p]), kShapes[sh].name,
                        static_cast<unsigned long long>(cell_loads),
                        static_cast<unsigned long long>(cell_writes),
                        static_cast<unsigned long long>(cell_scans),
                        static_cast<unsigned long long>(cell_cycles));
        }
    }
    std::printf("\n%zu runs, zero violations.\n", results.size());
    if (gFaultRate) {
        std::printf("faults injected: %llu parity NACKs (%llu "
                    "recovered), %llu device timeouts\n",
                    static_cast<unsigned long long>(parity.value()),
                    static_cast<unsigned long long>(recovered.value()),
                    static_cast<unsigned long long>(timeouts.value()));
    }

    // Differential pass: the reference stream is a pure function of
    // the seed, so all five protocols must return identical values
    // for every load.  Protocols differ in cost, never in answers.
    std::printf("\nDifferential cross-protocol pass:\n");
    const unsigned diff_seeds = seeds < 4 ? seeds : 4;
    for (unsigned s = 0; s < diff_seeds; ++s) {
        std::vector<FuzzConfig> points;
        for (const ProtocolKind kind : kProtocols) {
            FuzzConfig cfg;
            cfg.protocol = kind;
            cfg.seed = harness::pointSeed(base, 900, s);
            cfg.steps = steps;
            cfg.recordLoads = true;
            applyFaults(cfg, base);
            points.push_back(cfg);
        }
        const auto runs_out = bench::runSweep(
            points, [](const FuzzConfig &cfg) { return runFuzz(cfg); });
        for (std::size_t i = 1; i < runs_out.size(); ++i) {
            if (runs_out[i].loadLog != runs_out[0].loadLog) {
                std::fprintf(stderr,
                             "DIVERGENCE: %s disagrees with %s on "
                             "seed index %u\n",
                             toString(points[i].protocol),
                             toString(points[0].protocol), s);
                std::exit(1);
            }
        }
        std::printf("  seed %u: %zu loads identical across %zu "
                    "protocols\n",
                    s, runs_out[0].loadLog.size(), runs_out.size());
    }

    bench::exportStats(summary);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<bench::ExtraFlag> flags = {
        {"--fault-rate=",
         "inject parity/ECC/device faults at per-draw rate F",
         [](const std::string &value) {
             char *end = nullptr;
             const double rate = std::strtod(value.c_str(), &end);
             if (*end != '\0' || rate < 0.0 || rate > 1.0)
                 return false;
             gFaultRate = rate;
             return true;
         }},
        {"--fault-seed=",
         "seed for the fault plan (default: corpus base seed)",
         [](const std::string &value) {
             char *end = nullptr;
             const unsigned long long n =
                 std::strtoull(value.c_str(), &end, 0);
             if (*end != '\0')
                 return false;
             gFaultSeed = n;
             return true;
         }},
    };
    return firefly::bench::runBenchMain(argc, argv, experiment, flags);
}
