/**
 * @file
 * Experiment X1: validate the Section 5.2 analytic model against the
 * cycle-level simulator across processor counts, reproducing the
 * paper's scaling claims: bus load ~0.4 and ~85% per-processor speed
 * at five CPUs, saturation around nine.
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "analytic/queueing_model.hh"
#include "bench_util.hh"
#include "firefly/system.hh"
#include "obs/stat_sampler.hh"
#include "topaz/runtime.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

struct SimPoint
{
    double load;
    double tpi;
    double rp;
    double tp;
    double missRate;
};

SimPoint
simulate(unsigned np, double seconds = 0.12)
{
    // The sweep simulates 1.2 s of machine time across ten
    // configurations; tracing it would swamp the recorded file (the
    // flight-recorder run below is the tracing target), so mute the
    // sink for the sweep's duration.
    obs::ScopedTraceSink mute(nullptr);

    FireflySystem sys(FireflyConfig::microVax(np));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(seconds);

    double tpi_sum = 0;
    double total_ips = 0;
    double miss_sum = 0;
    for (unsigned i = 0; i < np; ++i) {
        tpi_sum += sys.cpu(i).tpi();
        total_ips += sys.cpu(i).instructions() / sys.seconds();
        miss_sum += sys.cache(i).stats().get("miss_rate");
    }
    const double tpi = tpi_sum / np;
    // One no-wait-state processor executes 1/(11.9 * 200ns) instr/s.
    const double nowait_ips = 1.0 / (microVaxBaseTpi * 200e-9);
    return {sys.busLoad(), tpi, microVaxBaseTpi / tpi,
            total_ips / nowait_ips, miss_sum / np};
}

/**
 * The flight-recorder run: a five-CPU machine driving the Topaz
 * Threads exerciser, so the recorded trace carries every subsystem -
 * MBus transactions, cache line transitions, CPU stalls, and
 * scheduler dispatch/ready/migrate - and --stats-json captures the
 * full Table-2 stat tree.  Only runs when observability output was
 * requested; the printed experiment above is unchanged either way.
 */
void
observedRun()
{
    const unsigned cpus = 5;
    FireflySystem sys(FireflyConfig::microVax(cpus));
    TopazConfig tc;
    tc.cpus = cpus;
    TopazRuntime runtime(tc);
    ExerciserParams params;
    params.threads = 16;
    params.iterations = 10;
    buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < cpus; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);

    // Bus-utilisation- and miss-rate-vs-time, sampled every 10k
    // cycles (1 ms simulated).
    obs::StatSampler sampler(sys.simulator(), 10'000);
    sampler.addStat(sys.bus().stats(), "busy_cycles",
                    obs::StatSampler::Mode::Delta, "bus.busy");
    sampler.addStat(sys.cache(0).stats(), "fills",
                    obs::StatSampler::Mode::Delta, "cache0.fills");
    sampler.addStat(sys.cache(0).stats(), "miss_rate");

    sys.runToCompletion(20'000'000);

    std::printf("\nObserved run (5 CPUs, Threads exerciser): "
                "%.3f ms simulated, bus load %.2f, %zu samples\n",
                sys.seconds() * 1e3, sys.busLoad(),
                sampler.sampleCount());

    bench::exportStats(sys.stats());
    const std::string &json = bench::obsOptions().statsJsonPath;
    if (!json.empty()) {
        std::ofstream csv(json + ".timeseries.csv");
        sampler.writeCsv(csv);
    }
}

void
experiment()
{
    bench::banner("X1",
                  "Scaling: analytic model vs cycle-level simulation");
    std::printf("Synthetic calibrated workload (M~0.2, D~0.25, "
                "S=0.1); simulation of 0.12 s per point.\n\n");
    std::printf("%4s | %21s | %31s\n", "",
                "analytic (Table 1 model)", "simulated (this system)");
    std::printf("%4s | %6s %6s %6s %6s | %6s %6s %6s %6s %6s\n", "NP",
                "L", "TPI", "RP", "TP", "L", "TPI", "RP", "TP", "M");
    bench::rule();

    QueueingModel model;
    // The ten table rows plus the headline five-CPU machine, one
    // independent simulation per point, --jobs at a time.
    const std::vector<unsigned> nps = {1u, 2u,  3u, 4u, 5u, 6u,
                                       7u, 8u, 10u, 12u, 5u};
    const auto sims = bench::runSweep(
        nps, [](unsigned np) { return simulate(np); });
    for (std::size_t i = 0; i + 1 < nps.size(); ++i) {
        const unsigned np = nps[i];
        const auto row = model.rowForProcessors(np);
        const auto &sim = sims[i];
        std::printf(
            "%4u | %6.2f %6.1f %6.2f %6.2f | %6.2f %6.1f %6.2f %6.2f "
            "%6.2f\n",
            np, row.busLoad, row.tpi, row.relativePerf, row.totalPerf,
            sim.load, sim.tpi, sim.rp, sim.tp, sim.missRate);
    }

    bench::rule();
    const auto &five = sims.back();
    std::printf("Five-CPU machine (paper: L~0.4, RP~0.85, TP>4): "
                "simulated L=%.2f RP=%.2f TP=%.2f\n",
                five.load, five.rp, five.tp);

    if (bench::obsOptions().observing())
        observedRun();
}

void
simulatorSpeed(benchmark::State &state)
{
    // Wall-clock cost of simulating one millisecond of a machine.
    for (auto _ : state) {
        FireflySystem sys(
            FireflyConfig::microVax(state.range(0)));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(0.001);
        benchmark::DoNotOptimize(sys.busLoad());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(simulatorSpeed)->Arg(1)->Arg(5);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
