/**
 * @file
 * Experiment X1: validate the Section 5.2 analytic model against the
 * cycle-level simulator across processor counts, reproducing the
 * paper's scaling claims: bus load ~0.4 and ~85% per-processor speed
 * at five CPUs, saturation around nine.
 */

#include <cstdio>

#include "analytic/queueing_model.hh"
#include "bench_util.hh"
#include "firefly/system.hh"

using namespace firefly;

namespace
{

struct SimPoint
{
    double load;
    double tpi;
    double rp;
    double tp;
    double missRate;
};

SimPoint
simulate(unsigned np, double seconds = 0.12)
{
    FireflySystem sys(FireflyConfig::microVax(np));
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(seconds);

    double tpi_sum = 0;
    double total_ips = 0;
    double miss_sum = 0;
    for (unsigned i = 0; i < np; ++i) {
        tpi_sum += sys.cpu(i).tpi();
        total_ips += sys.cpu(i).instructions() / sys.seconds();
        miss_sum += sys.cache(i).stats().get("miss_rate");
    }
    const double tpi = tpi_sum / np;
    // One no-wait-state processor executes 1/(11.9 * 200ns) instr/s.
    const double nowait_ips = 1.0 / (microVaxBaseTpi * 200e-9);
    return {sys.busLoad(), tpi, microVaxBaseTpi / tpi,
            total_ips / nowait_ips, miss_sum / np};
}

void
experiment()
{
    bench::banner("X1",
                  "Scaling: analytic model vs cycle-level simulation");
    std::printf("Synthetic calibrated workload (M~0.2, D~0.25, "
                "S=0.1); simulation of 0.12 s per point.\n\n");
    std::printf("%4s | %21s | %31s\n", "",
                "analytic (Table 1 model)", "simulated (this system)");
    std::printf("%4s | %6s %6s %6s %6s | %6s %6s %6s %6s %6s\n", "NP",
                "L", "TPI", "RP", "TP", "L", "TPI", "RP", "TP", "M");
    bench::rule();

    QueueingModel model;
    for (unsigned np : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 10u, 12u}) {
        const auto row = model.rowForProcessors(np);
        const auto sim = simulate(np);
        std::printf(
            "%4u | %6.2f %6.1f %6.2f %6.2f | %6.2f %6.1f %6.2f %6.2f "
            "%6.2f\n",
            np, row.busLoad, row.tpi, row.relativePerf, row.totalPerf,
            sim.load, sim.tpi, sim.rp, sim.tp, sim.missRate);
    }

    bench::rule();
    const auto five = simulate(5);
    std::printf("Five-CPU machine (paper: L~0.4, RP~0.85, TP>4): "
                "simulated L=%.2f RP=%.2f TP=%.2f\n",
                five.load, five.rp, five.tp);
}

void
simulatorSpeed(benchmark::State &state)
{
    // Wall-clock cost of simulating one millisecond of a machine.
    for (auto _ : state) {
        FireflySystem sys(
            FireflyConfig::microVax(state.range(0)));
        sys.attachSyntheticWorkload(SyntheticConfig{});
        sys.run(0.001);
        benchmark::DoNotOptimize(sys.busLoad());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(simulatorSpeed)->Arg(1)->Arg(5);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
