/**
 * @file
 * Experiment X5: the CVAX upgrade (second-generation Firefly).
 *
 * Claims to reproduce (Section 5.3 and Section 5):
 *  - "the upgrade has improved execution speeds by factors of 2.0 to
 *    2.5" (less than the chip's raw 2.5-3.2x because the Firefly
 *    kept the original MBus and did not cache data on chip);
 *  - "the combination of a faster processor and larger cache results
 *    in approximately the same bus load per processor";
 *  - the on-chip cache is configured instruction-only "to simplify
 *    the problem of maintaining memory coherence" - enabling data
 *    caching without snooping would have served stale data (counted
 *    here as stale incidents).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"

using namespace firefly;

namespace
{

struct Result
{
    double instrPerSec;
    double busLoadPerCpu;
    double missRate;
    double onchipStale;
};

Result
run(MachineVersion version, unsigned cpus,
    OnChipCache::DataMode mode = OnChipCache::DataMode::InstructionsOnly,
    bool onchip_enabled = true, double seconds = 0.1)
{
    FireflyConfig cfg = version == MachineVersion::MicroVax
        ? FireflyConfig::microVax(cpus)
        : FireflyConfig::cvax(cpus);
    if (version == MachineVersion::Cvax) {
        cfg.onChipCacheEnabled = onchip_enabled;
        cfg.onChipMode = mode;
    }
    FireflySystem sys(cfg);

    SyntheticConfig workload;
    if (version == MachineVersion::Cvax) {
        // CVAX chip: ~8.5 ticks of 100 ns per instruction, of which
        // the same 2.13 refs occupy 2 ticks each.
        workload.computeTicksPerInstr = cvaxBaseTpi - 2.13 * hitTicks;
    }
    sys.attachSyntheticWorkload(workload);
    sys.run(seconds);
    bench::exportStats(sys.stats());

    double instrs = 0, miss = 0, stale = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        instrs += static_cast<double>(sys.cpu(i).instructions());
        miss += sys.cache(i).stats().get("miss_rate");
        if (sys.onChip(i))
            stale += static_cast<double>(
                sys.onChip(i)->staleIncidents.value());
    }
    return {instrs / seconds, sys.busLoad() / cpus, miss / cpus,
            stale / seconds / 1e3};
}

void
experiment()
{
    bench::banner("X5", "MicroVAX -> CVAX upgrade");
    std::printf("Same calibrated workload on both generations.\n\n");
    std::printf("%-26s %12s %14s %8s\n", "machine", "MIPS (total)",
                "bus load/CPU", "M");
    bench::rule();

    // One independent simulation per point, --jobs at a time.
    struct Point
    {
        MachineVersion version;
        unsigned cpus;
        OnChipCache::DataMode mode =
            OnChipCache::DataMode::InstructionsOnly;
        bool onchipEnabled = true;
    };
    auto sweep = [](const std::vector<Point> &points) {
        return bench::runSweep(points, [](const Point &p) {
            return run(p.version, p.cpus, p.mode, p.onchipEnabled);
        });
    };

    std::vector<Point> generations;
    for (unsigned cpus : {1u, 5u}) {
        generations.push_back({MachineVersion::MicroVax, cpus});
        generations.push_back({MachineVersion::Cvax, cpus});
    }
    const auto genResults = sweep(generations);
    for (std::size_t i = 0; i < generations.size(); i += 2) {
        const unsigned cpus = generations[i].cpus;
        const auto &mv = genResults[i];
        const auto &cv = genResults[i + 1];
        std::printf("%u-CPU MicroVAX (16KB $)    %12.2f %14.3f %8.3f\n",
                    cpus, mv.instrPerSec / 1e6, mv.busLoadPerCpu,
                    mv.missRate);
        std::printf("%u-CPU CVAX     (64KB $)    %12.2f %14.3f %8.3f\n",
                    cpus, cv.instrPerSec / 1e6, cv.busLoadPerCpu,
                    cv.missRate);
        std::printf("  speedup: %.2fx  (paper: 2.0-2.5x)\n",
                    cv.instrPerSec / mv.instrPerSec);
        std::printf("  bus load per CPU: %.3f -> %.3f  (paper: "
                    "\"approximately the same\")\n\n",
                    mv.busLoadPerCpu, cv.busLoadPerCpu);
    }

    bench::rule();
    std::printf("On-chip cache configuration (5-CPU CVAX):\n\n");
    const auto onchip = sweep({
        {MachineVersion::Cvax, 5,
         OnChipCache::DataMode::InstructionsOnly},
        {MachineVersion::Cvax, 5,
         OnChipCache::DataMode::InstructionsAndData},
        {MachineVersion::Cvax, 5,
         OnChipCache::DataMode::InstructionsOnly, false},
    });
    const auto &ionly = onchip[0];
    const auto &idata = onchip[1];
    const auto &none = onchip[2];
    std::printf("%-28s %12s %20s\n", "on-chip mode", "MIPS",
                "stale hits (K/s)");
    std::printf("%-28s %12.2f %20s\n", "disabled",
                none.instrPerSec / 1e6, "-");
    std::printf("%-28s %12.2f %20.1f\n", "instructions only (real HW)",
                ionly.instrPerSec / 1e6, ionly.onchipStale);
    std::printf("%-28s %12.2f %20.1f\n", "instructions + data",
                idata.instrPerSec / 1e6, idata.onchipStale);
    std::printf(
        "\nCaching data on chip is faster but, with no on-chip\n"
        "snooping, every stale hit would have returned wrong data -\n"
        "the coherence problem the designers avoided by caching\n"
        "instructions only.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
