/**
 * @file
 * Shared helpers for the experiment regeneration binaries.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper (see DESIGN.md's experiment index): it prints the paper's
 * numbers next to the model's/simulator's, so the shape comparison is
 * immediate.  Passing --gbench additionally runs any registered
 * google-benchmark microbenchmarks (simulator speed measurements).
 *
 * Observability options, understood by every bench binary:
 *
 *   --stats-json=FILE    write the headline system's full StatGroup
 *                        tree as JSON (StatGroup::dumpJson)
 *   --trace-out=FILE     record a Chrome trace-event JSON file of the
 *                        whole run (load it at ui.perfetto.dev)
 *   --debug-flags=A,B    enable debug-trace categories (MBus, Cache,
 *                        Cpu, Dma, Sched, Rpc) printed to stderr
 *
 * runBenchMain() parses these, attaches the sinks around the
 * experiment, and flushes/finalises them afterwards.  Experiments
 * honour --stats-json by calling bench::exportStats(sys.stats()) on
 * their headline system (the last call wins).
 */

#ifndef FIREFLY_BENCH_BENCH_UTIL_HH
#define FIREFLY_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "obs/chrome_trace.hh"
#include "obs/text_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace firefly::bench
{

/** Observability options shared by every bench binary. */
struct ObsOptions
{
    std::string statsJsonPath;  ///< --stats-json=FILE
    std::string traceOutPath;   ///< --trace-out=FILE
    std::string debugFlags;     ///< --debug-flags=MBus,Cache,...

    /** True if any observability output was requested. */
    bool
    observing() const
    {
        return !statsJsonPath.empty() || !traceOutPath.empty() ||
               !debugFlags.empty();
    }
};

inline ObsOptions &
obsOptions()
{
    static ObsOptions opts;
    return opts;
}

/**
 * Write `root`'s full stat tree to the --stats-json file.  A no-op
 * when the option was not given.  Benches call this on the system
 * whose numbers headline the experiment; if several systems are
 * simulated the last exported one lands in the file.
 */
inline void
exportStats(const StatGroup &root)
{
    const std::string &path = obsOptions().statsJsonPath;
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write stats JSON to %s\n",
                     path.c_str());
        return;
    }
    root.dumpJson(os);
}

/**
 * RAII bundle of the sinks requested on the command line, attached
 * process-wide for its lifetime.  Built once by runBenchMain around
 * the experiment so a sweep of several simulated machines lands in
 * one concatenated trace file.
 */
class Observation
{
  public:
    Observation()
    {
        const ObsOptions &opts = obsOptions();
        if (!opts.traceOutPath.empty())
            chrome = std::make_unique<obs::ChromeTraceSink>(
                opts.traceOutPath);
        if (anyDebugFlagsSet())
            text = std::make_unique<obs::TextTraceSink>();

        obs::TraceSink *sink = nullptr;
        if (chrome && text) {
            tee = std::make_unique<obs::TeeSink>();
            tee->add(chrome.get());
            tee->add(text.get());
            sink = tee.get();
        } else if (chrome) {
            sink = chrome.get();
        } else if (text) {
            sink = text.get();
        }
        if (sink)
            scoped.emplace(sink);
    }

  private:
    std::unique_ptr<obs::ChromeTraceSink> chrome;
    std::unique_ptr<obs::TextTraceSink> text;
    std::unique_ptr<obs::TeeSink> tee;
    std::optional<obs::ScopedTraceSink> scoped;
};

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/**
 * Standard main body: parse the observability options, run the
 * experiment under the requested sinks, then google-benchmark if
 * requested.  Returns the process exit code.
 */
inline int
runBenchMain(int argc, char **argv, void (*experiment)())
{
    bool gbench = false;
    ObsOptions &opts = obsOptions();
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--gbench") == 0)
            gbench = true;
        else if (std::strncmp(arg, "--stats-json=", 13) == 0)
            opts.statsJsonPath = arg + 13;
        else if (std::strncmp(arg, "--trace-out=", 12) == 0)
            opts.traceOutPath = arg + 12;
        else if (std::strncmp(arg, "--debug-flags=", 14) == 0)
            opts.debugFlags = arg + 14;
    }
    if (!opts.debugFlags.empty())
        setDebugFlags(opts.debugFlags);

    {
        Observation observation;
        experiment();
    }

    if (gbench) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return 0;
}

} // namespace firefly::bench

#endif // FIREFLY_BENCH_BENCH_UTIL_HH
