/**
 * @file
 * Shared helpers for the experiment regeneration binaries.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper (see DESIGN.md's experiment index): it prints the paper's
 * numbers next to the model's/simulator's, so the shape comparison is
 * immediate.  Passing --gbench additionally runs any registered
 * google-benchmark microbenchmarks (simulator speed measurements).
 *
 * Options, understood by every bench binary:
 *
 *   --stats-json=FILE    write the headline system's full StatGroup
 *                        tree as JSON (StatGroup::dumpJson)
 *   --trace-out=FILE     record a Chrome trace-event JSON file of the
 *                        whole run (load it at ui.perfetto.dev)
 *   --debug-flags=A,B    enable debug-trace categories (MBus, Cache,
 *                        Cpu, Dma, Sched, Rpc) printed to stderr
 *   --jobs=N             run independent sweep points on N worker
 *                        threads (default 1 = today's serial loop)
 *
 * Unrecognized arguments are an error (usage + nonzero exit), so a
 * typo like "--trace-out foo" or an empty "--stats-json=" cannot
 * silently produce no output.
 *
 * runBenchMain() parses these, attaches the sinks around the
 * experiment, and flushes/finalises them afterwards.  Experiments
 * honour --stats-json by calling bench::exportStats(sys.stats()) on
 * their headline system (the last call wins - under --jobs N "last"
 * means the highest sweep point in input order, so the exported file
 * is byte-identical however many workers ran the sweep).
 */

#ifndef FIREFLY_BENCH_BENCH_UTIL_HH
#define FIREFLY_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hh"
#include "obs/chrome_trace.hh"
#include "obs/text_trace.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace firefly::bench
{

/** Command-line options shared by every bench binary. */
struct ObsOptions
{
    std::string statsJsonPath;  ///< --stats-json=FILE
    std::string traceOutPath;   ///< --trace-out=FILE
    std::string debugFlags;     ///< --debug-flags=MBus,Cache,...
    unsigned jobs = 1;          ///< --jobs=N

    /** True if any observability output was requested. */
    bool
    observing() const
    {
        return !statsJsonPath.empty() || !traceOutPath.empty() ||
               !debugFlags.empty();
    }
};

inline ObsOptions &
obsOptions()
{
    static ObsOptions opts;
    return opts;
}

namespace detail
{

/**
 * Deterministic --stats-json arbitration.  "Last export wins" is
 * only well defined when the export order is; under --jobs N the
 * completion order is whatever the scheduler produced.  So every
 * export carries a sequence number equal to its position in the
 * *serial* execution order - plain exports draw from a global
 * counter, sweep points are pre-assigned base+index by runSweep() -
 * and the highest sequence seen is buffered and written out once at
 * the end of runBenchMain().  jobs=1 and jobs=N therefore produce
 * byte-identical files.
 */
inline std::atomic<std::uint64_t> exportSeqCounter{0};
inline thread_local std::uint64_t pinnedExportSeq = 0;
inline thread_local bool exportSeqPinned = false;

struct ExportBuffer
{
    std::mutex mutex;
    bool pending = false;        // guarded by mutex
    std::uint64_t seq = 0;       // guarded by mutex
    std::string json;            // guarded by mutex
};

inline ExportBuffer &
exportBuffer()
{
    static ExportBuffer buffer;
    return buffer;
}

/** Pins this thread's export sequence for one sweep point. */
class ScopedExportSeq
{
  public:
    explicit ScopedExportSeq(std::uint64_t seq)
    {
        pinnedExportSeq = seq;
        exportSeqPinned = true;
    }

    ~ScopedExportSeq() { exportSeqPinned = false; }

    ScopedExportSeq(const ScopedExportSeq &) = delete;
    ScopedExportSeq &operator=(const ScopedExportSeq &) = delete;
};

/** Write the winning export to the --stats-json file, if any. */
inline void
flushExportedStats()
{
    ExportBuffer &buffer = exportBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (!buffer.pending)
        return;
    const std::string &path = obsOptions().statsJsonPath;
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write stats JSON to %s\n",
                     path.c_str());
        return;
    }
    os << buffer.json;
}

} // namespace detail

/**
 * Export `root`'s full stat tree to the --stats-json file.  A no-op
 * when the option was not given.  Benches call this on the system
 * whose numbers headline the experiment; if several systems are
 * simulated the one last in serial execution order lands in the file
 * (see detail::ExportBuffer), written when runBenchMain() finishes.
 */
inline void
exportStats(const StatGroup &root)
{
    if (obsOptions().statsJsonPath.empty())
        return;
    std::ostringstream os;
    root.dumpJson(os);
    const std::uint64_t seq = detail::exportSeqPinned
        ? detail::pinnedExportSeq
        : detail::exportSeqCounter.fetch_add(1);

    detail::ExportBuffer &buffer = detail::exportBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (!buffer.pending || seq >= buffer.seq) {
        buffer.pending = true;
        buffer.seq = seq;
        buffer.json = os.str();
    }
}

/**
 * The worker count sweeps actually run with.  Trace sinks are
 * single-threaded observers attached to the main thread (workers
 * start with none - obs/trace.hh), so when tracing is on, sweeps
 * stay serial; byte-identical numbers either way, just slower.
 */
inline unsigned
effectiveJobs()
{
    const ObsOptions &opts = obsOptions();
    if (opts.jobs <= 1)
        return 1;
    if (!opts.traceOutPath.empty() || anyDebugFlagsSet()) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            warn("tracing observes one thread; --jobs forced to 1");
        });
        return 1;
    }
    return opts.jobs;
}

/**
 * Run a sweep of independent experiment points, --jobs at a time,
 * results in input order (harness::runSweep).  Also pre-assigns each
 * point's exportStats() sequence number so the headline stats file
 * is independent of --jobs.
 */
template <typename Config, typename Fn>
auto
runSweep(const std::vector<Config> &configs, Fn fn)
{
    const std::uint64_t base =
        detail::exportSeqCounter.fetch_add(configs.size());
    return harness::runSweep(
        configs,
        [&](const Config &config, std::size_t index) {
            detail::ScopedExportSeq seq(base + index);
            return harness::detail::invokePoint(fn, config, index);
        },
        effectiveJobs());
}

/**
 * RAII bundle of the sinks requested on the command line, attached
 * to the main thread for its lifetime.  Built once by runBenchMain
 * around the experiment so a sweep of several simulated machines
 * lands in one concatenated trace file; sweeps stay serial while
 * tracing (see effectiveJobs) so every machine runs under the sink.
 */
class Observation
{
  public:
    Observation()
    {
        const ObsOptions &opts = obsOptions();
        if (!opts.traceOutPath.empty())
            chrome = std::make_unique<obs::ChromeTraceSink>(
                opts.traceOutPath);
        if (anyDebugFlagsSet())
            text = std::make_unique<obs::TextTraceSink>();

        obs::TraceSink *sink = nullptr;
        if (chrome && text) {
            tee = std::make_unique<obs::TeeSink>();
            tee->add(chrome.get());
            tee->add(text.get());
            sink = tee.get();
        } else if (chrome) {
            sink = chrome.get();
        } else if (text) {
            sink = text.get();
        }
        if (sink)
            scoped.emplace(sink);
    }

  private:
    std::unique_ptr<obs::ChromeTraceSink> chrome;
    std::unique_ptr<obs::TextTraceSink> text;
    std::unique_ptr<obs::TeeSink> tee;
    std::optional<obs::ScopedTraceSink> scoped;
};

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/**
 * An extra "--name=value" option one specific bench understands
 * (e.g. the fault-injection flags of firefly_faults/firefly_fuzz).
 * Benches that do not register a flag reject it like any other
 * unknown argument, so "--fault-rate=" on a fault-unaware bench is a
 * hard usage error, never silently ignored.
 */
struct ExtraFlag
{
    const char *prefix;  ///< "--fault-rate=" (trailing '=' included)
    const char *help;    ///< one-line description for --help
    /** Parses the value; return false to reject it (usage error). */
    std::function<bool(const std::string &value)> parse;
};

/** Print the option summary every bench binary shares. */
inline void
printUsage(const char *prog, const std::vector<ExtraFlag> &extras = {})
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --stats-json=FILE   write the headline stat tree as JSON\n"
                 "  --trace-out=FILE    record a Chrome trace-event JSON file\n"
                 "  --debug-flags=A,B   enable debug-trace categories\n"
                 "                      (MBus, Cache, Cpu, Dma, Sched, Rpc,\n"
                 "                      Fault)\n"
                 "  --jobs=N            run sweep points on N worker threads\n"
                 "  --gbench            also run google-benchmark "
                 "microbenchmarks\n"
                 "                      (--benchmark_* options pass through)\n",
                 prog);
    for (const ExtraFlag &flag : extras)
        std::fprintf(stderr, "  %-19s %s\n", flag.prefix, flag.help);
    std::fprintf(stderr,
                 "Fault-injection flags (--fault-rate=F, --fault-seed=N) "
                 "exist only on the\nfault-aware benches (firefly_faults, "
                 "firefly_fuzz); every other bench\nrejects them.\n");
}

/**
 * Standard main body: parse the shared options (rejecting anything
 * unrecognized), run the experiment under the requested sinks, then
 * google-benchmark if requested.  Returns the process exit code.
 * `extras` registers bench-specific "--name=value" flags.
 */
inline int
runBenchMain(int argc, char **argv, void (*experiment)(),
             const std::vector<ExtraFlag> &extras = {})
{
    bool gbench = false;
    ObsOptions &opts = obsOptions();

    // Returns the value of "--name=value" or nullopt if `arg` is a
    // different option; an empty value is a hard usage error.
    auto valueOf = [&](const char *arg,
                       const char *prefix) -> std::optional<std::string> {
        const std::size_t len = std::strlen(prefix);
        if (std::strncmp(arg, prefix, len) != 0)
            return std::nullopt;
        std::string value = arg + len;
        if (value.empty()) {
            std::fprintf(stderr, "%s: option '%s' requires a value\n",
                         argv[0], arg);
            printUsage(argv[0], extras);
            std::exit(2);
        }
        return value;
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--gbench") == 0) {
            gbench = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(argv[0], extras);
            return 0;
        } else if (auto v = valueOf(arg, "--stats-json=")) {
            opts.statsJsonPath = *v;
        } else if (auto v = valueOf(arg, "--trace-out=")) {
            opts.traceOutPath = *v;
        } else if (auto v = valueOf(arg, "--debug-flags=")) {
            opts.debugFlags = *v;
        } else if (auto v = valueOf(arg, "--jobs=")) {
            char *end = nullptr;
            const unsigned long n = std::strtoul(v->c_str(), &end, 10);
            if (*end != '\0' || n == 0 || n > 1024) {
                std::fprintf(stderr,
                             "%s: --jobs needs an integer in [1, 1024], "
                             "got '%s'\n",
                             argv[0], v->c_str());
                printUsage(argv[0], extras);
                return 2;
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (std::strncmp(arg, "--benchmark_", 12) == 0) {
            // Left in argv for benchmark::Initialize below.
        } else {
            bool matched = false;
            for (const ExtraFlag &flag : extras) {
                auto v = valueOf(arg, flag.prefix);
                if (!v)
                    continue;
                if (!flag.parse(*v)) {
                    std::fprintf(stderr,
                                 "%s: bad value for '%s': '%s'\n",
                                 argv[0], flag.prefix, v->c_str());
                    printUsage(argv[0], extras);
                    return 2;
                }
                matched = true;
                break;
            }
            if (!matched) {
                std::fprintf(stderr, "%s: unrecognized argument '%s'\n",
                             argv[0], arg);
                printUsage(argv[0], extras);
                return 2;
            }
        }
    }
    if (!opts.debugFlags.empty())
        setDebugFlags(opts.debugFlags);

    {
        Observation observation;
        experiment();
    }
    detail::flushExportedStats();

    if (gbench) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return 0;
}

} // namespace firefly::bench

#endif // FIREFLY_BENCH_BENCH_UTIL_HH
