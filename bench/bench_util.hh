/**
 * @file
 * Shared helpers for the experiment regeneration binaries.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper (see DESIGN.md's experiment index): it prints the paper's
 * numbers next to the model's/simulator's, so the shape comparison is
 * immediate.  Passing --gbench additionally runs any registered
 * google-benchmark microbenchmarks (simulator speed measurements).
 */

#ifndef FIREFLY_BENCH_BENCH_UTIL_HH
#define FIREFLY_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace firefly::bench
{

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** Print a horizontal rule. */
inline void
rule()
{
    std::printf("--------------------------------------------------------------\n");
}

/**
 * Standard main body: run the experiment, then google-benchmark if
 * requested.  Returns the process exit code.
 */
inline int
runBenchMain(int argc, char **argv, void (*experiment)())
{
    bool gbench = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--gbench") == 0)
            gbench = true;
    }

    experiment();

    if (gbench) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }
    return 0;
}

} // namespace firefly::bench

#endif // FIREFLY_BENCH_BENCH_UTIL_HH
