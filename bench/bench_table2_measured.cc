/**
 * @file
 * Experiment T2: regenerate paper Table 2, "Firefly Measured
 * Performance (K refs/sec)" - the Topaz Threads exerciser running on
 * one-CPU and five-CPU machines, with the hardware counter box's
 * categories: per-CPU read/write rates, MBus total references and
 * load, per-CPU MBus reads (miss ratio M), write-throughs split by
 * MShared, and victim writes.
 *
 * The paper's "Expected" column came from the authors' trace-driven
 * simulation; their "Actual" column from hardware counters.  We print
 * both next to this simulator's measurement.  Absolute rates need not
 * match (the real exerciser's instruction mix is lost); the shape
 * must: heavy sharing (a large fraction of bus writes receiving
 * MShared on the 5-CPU machine), few victim writes relative to
 * write-throughs, higher bus load with five CPUs, and a 5-CPU
 * per-processor rate below the 1-CPU rate.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

struct Table2Column
{
    unsigned cpus;
    double perCpuReadsK;
    double perCpuWritesK;
    double perCpuTotalK;
    double mbusTotalK;
    double busLoad;
    double perCpuMbusReadsK;
    double missRatio;          ///< MBus reads / CPU refs (paper's M)
    double wtMsharedK;
    double wtNoMsharedK;
    double victimsK;
    double wtMsharedFraction;  ///< of all CPU bus writes
};

Table2Column
runExerciser(unsigned cpus)
{
    FireflySystem sys(FireflyConfig::microVax(cpus));
    TopazConfig tc;
    tc.cpus = cpus;
    TopazRuntime runtime(tc);
    ExerciserParams params;
    params.threads = 16;
    params.iterations = cpus == 1 ? 120 : 400;
    buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < cpus; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);
    sys.runToCompletion(20'000'000);  // at most 2 simulated seconds
    bench::exportStats(sys.stats());

    const double secs = sys.seconds();
    double reads = 0, writes = 0, fills = 0, wt_sh = 0, wt_no = 0,
           victims = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        reads += sys.cache(i).refsInstr.value() +
                 sys.cache(i).refsRead.value();
        writes += sys.cache(i).refsWrite.value();
        fills += sys.cache(i).fills.value();
        wt_sh += sys.cache(i).wtMshared.value();
        wt_no += sys.cache(i).wtNoMshared.value();
        victims += sys.cache(i).victimWrites.value();
    }
    const double mbus_refs = sys.bus().stats().get("reads") +
                             sys.bus().stats().get("writes");

    Table2Column col;
    col.cpus = cpus;
    col.perCpuReadsK = reads / cpus / secs / 1e3;
    col.perCpuWritesK = writes / cpus / secs / 1e3;
    col.perCpuTotalK = (reads + writes) / cpus / secs / 1e3;
    col.mbusTotalK = mbus_refs / secs / 1e3;
    col.busLoad = sys.busLoad();
    col.perCpuMbusReadsK = fills / cpus / secs / 1e3;
    col.missRatio = fills / (reads + writes);
    col.wtMsharedK = wt_sh / cpus / secs / 1e3;
    col.wtNoMsharedK = wt_no / cpus / secs / 1e3;
    col.victimsK = victims / cpus / secs / 1e3;
    const double bus_writes = wt_sh + wt_no + victims;
    col.wtMsharedFraction = bus_writes > 0 ? wt_sh / bus_writes : 0.0;
    return col;
}

void
experiment()
{
    bench::banner("Table 2",
                  "Firefly Measured Performance (K refs/sec), Topaz "
                  "Threads exerciser");

    const Table2Column one = runExerciser(1);
    const Table2Column five = runExerciser(5);

    std::printf("\n%-38s %14s %14s\n", "", "One-CPU system",
                "Five-CPU system");
    std::printf("%-38s %14s %14s\n", "(paper expected / paper actual)",
                "(850 / 1350)", "(752 / 1075)");
    bench::rule();
    auto row = [](const char *name, double a, double b) {
        std::printf("%-38s %14.0f %14.0f\n", name, a, b);
    };
    row("Per CPU: Reads (K/s)", one.perCpuReadsK, five.perCpuReadsK);
    std::printf("%-38s %14s %14s\n", "  (paper expected/actual)",
                "688 / 1125", "609 / 850");
    row("Per CPU: Writes (K/s)", one.perCpuWritesK,
        five.perCpuWritesK);
    std::printf("%-38s %14s %14s\n", "  (paper expected/actual)",
                "161 / 240", "143 / 225");
    row("Per CPU: Total (K/s)", one.perCpuTotalK, five.perCpuTotalK);
    bench::rule();
    row("MBus total references (K/s)", one.mbusTotalK,
        five.mbusTotalK);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "440", "1350");
    std::printf("%-38s %13.2f  %13.2f\n", "Bus load L", one.busLoad,
                five.busLoad);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "0.18",
                "0.54");
    bench::rule();
    row("MBus reads per CPU (K/s)", one.perCpuMbusReadsK,
        five.perCpuMbusReadsK);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "340 (M=.3)",
                "145 (M=.17)");
    std::printf("%-38s %13.2f  %13.2f\n", "  miss ratio M",
                one.missRatio, five.missRatio);
    row("Writes that received MShared (K/s)", one.wtMsharedK,
        five.wtMsharedK);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "0", "75");
    row("Writes without MShared (K/s)", one.wtNoMsharedK,
        five.wtNoMsharedK);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "50", "20");
    row("Victim writes (K/s)", one.victimsK, five.victimsK);
    std::printf("%-38s %14s %14s\n", "  (paper actual)", "10", "50");
    bench::rule();

    std::printf(
        "Shape checks (paper Section 5.3):\n"
        "  5-CPU write-throughs receiving MShared: %.0f%% of CPU bus "
        "writes (paper: 75 of 95+50 non-victim, ~33%% of all 225 "
        "writes)\n",
        five.wtMsharedFraction * 100);
    std::printf("  1-CPU MShared write-throughs: %.1f K/s (paper: 0 - "
                "nobody to share with)\n", one.wtMsharedK);
    std::printf("  Bus load rises 1->5 CPUs: %.2f -> %.2f (paper: "
                "0.18 -> 0.54)\n", one.busLoad, five.busLoad);
    std::printf("  Per-CPU rate falls 1->5 CPUs: %.0f -> %.0f K "
                "refs/s (paper actual: 1350 -> 1075)\n",
                one.perCpuTotalK, five.perCpuTotalK);
}

void
exerciserThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        FireflySystem sys(FireflyConfig::microVax(2));
        TopazConfig tc;
        tc.cpus = 2;
        TopazRuntime runtime(tc);
        ExerciserParams params;
        params.threads = 4;
        params.iterations = 10;
        buildThreadsExerciser(runtime, params);
        std::vector<RefSource *> sources{&runtime.port(0),
                                         &runtime.port(1)};
        sys.attachSources(sources);
        sys.runToCompletion(5'000'000);
        benchmark::DoNotOptimize(sys.busLoad());
    }
}
BENCHMARK(exerciserThroughput);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
