/**
 * X-PERF: host throughput of the simulator itself.
 *
 * Every other bench regenerates a number from the paper; this one
 * measures the tool.  The sweep harness (X-JOBS), the fuzzer (X-FUZZ)
 * and the fault campaigns (X-FAULT) all burn simulated cycles by the
 * hundreds of millions, so simulated-cycles-per-host-second is the
 * binding constraint on every experiment grid.  This bench pins that
 * number down across protocols x CPU counts x workloads and writes a
 * machine-readable BENCH_perf.json so regressions show up in review
 * instead of in someone's overnight sweep.
 *
 * Two workloads bracket the space:
 *
 *   saturated - the calibrated synthetic stream on every CPU, endless;
 *               at 7 processors the MBus runs near its ~0.97 load
 *               asymptote.  This measures the cycle-by-cycle engine:
 *               bus phases, snoops, cache dispatch.
 *   idle      - each CPU halts after a small instruction burst, then
 *               the machine idles to the horizon.  This measures the
 *               idle fast-forward path: the simulator should leap to
 *               the horizon instead of ticking ~half a million empty
 *               cycles.
 *
 * Each point runs twice, fast-forward on and (forcibly) off, and
 * reports the ratio; behaviour and statistics are bit-identical
 * between the two (scripts/check.sh perf byte-compares the exports).
 * Wall clock is std::chrono::steady_clock; every point gets a warmup
 * run plus `--perf-reps` measured repetitions, best-of reported
 * (minimum wall time - host noise only ever slows a run down).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"
#include "sim/stats.hh"

namespace firefly
{
namespace
{

double perfSimSeconds = 0.05;
unsigned perfReps = 3;
std::string perfJsonPath;

struct Point
{
    const char *workload;  ///< "saturated" or "idle"
    ProtocolKind proto;
    unsigned cpus;
};

struct Measure
{
    double wallSec = 0.0;
    Cycle simCycles = 0;
    std::uint64_t refs = 0;
    Cycle ffSkipped = 0;

    double
    cyclesPerSec() const
    {
        return wallSec > 0.0 ? simCycles / wallSec : 0.0;
    }

    double
    refsPerSec() const
    {
        return wallSec > 0.0 ? refs / wallSec : 0.0;
    }
};

/** One full simulation of the point; returns wall time and totals.
 *  `headline` additionally exports the stat tree (--stats-json). */
Measure
runOnce(const Point &pt, bool fast_forward, bool headline)
{
    FireflyConfig cfg = FireflyConfig::microVax(pt.cpus);
    cfg.protocol = pt.proto;
    FireflySystem sys(cfg);

    SyntheticConfig sc;
    double simSeconds = perfSimSeconds;
    if (std::string(pt.workload) == "idle") {
        // A short burst, then halt: the machine spends the vast
        // majority of the (10x longer) simulated span with every
        // component quiescent.  This models the real duty cycle of a
        // workstation - bursts of activity in a sea of idle time.
        sc.instructionLimit = 500;
        simSeconds *= 10.0;
    }
    sys.attachSyntheticWorkload(sc);
    sys.simulator().setFastForward(fast_forward);

    const auto t0 = std::chrono::steady_clock::now();
    sys.run(simSeconds);
    const auto t1 = std::chrono::steady_clock::now();

    Measure m;
    m.wallSec = std::chrono::duration<double>(t1 - t0).count();
    m.simCycles = sys.simulator().now();
    m.refs = sys.totalCpuRefs();
    m.ffSkipped = sys.simulator().cyclesFastForwarded();
    if (headline)
        bench::exportStats(sys.stats());
    return m;
}

/** Warmup + perfReps measured runs; keeps the best (min wall). */
Measure
measure(const Point &pt, bool fast_forward, bool headline)
{
    runOnce(pt, fast_forward, false);  // warmup (host caches, JIT-free
                                       // but branch predictors count)
    Measure best;
    for (unsigned rep = 0; rep < perfReps; ++rep) {
        const Measure m = runOnce(pt, fast_forward, headline);
        if (rep == 0 || m.wallSec < best.wallSec)
            best = m;
    }
    return best;
}

void
experiment()
{
    bench::banner("X-PERF", "Host throughput of the simulator");
    std::printf(
        "Simulating %.3f s per point (%llu cycles), best of %u reps "
        "after warmup.\nff = idle fast-forward; 'speedup' is ff-on vs "
        "ff-off wall clock on the\nsame build (stats are "
        "byte-identical either way).\n\n",
        perfSimSeconds,
        static_cast<unsigned long long>(secondsToCycles(perfSimSeconds)),
        perfReps);

    const std::vector<Point> points = {
        {"idle", ProtocolKind::Firefly, 1},
        {"idle", ProtocolKind::Firefly, 4},
        {"idle", ProtocolKind::Firefly, 7},
        {"saturated", ProtocolKind::Firefly, 1},
        {"saturated", ProtocolKind::Firefly, 4},
        {"saturated", ProtocolKind::Firefly, 7},
        {"saturated", ProtocolKind::Dragon, 7},
        {"saturated", ProtocolKind::Mesi, 7},
    };

    std::printf("%-9s %-8s %3s | %12s %12s %9s | %12s %8s\n",
                "workload", "protocol", "np", "Mcycles/s", "Mrefs/s",
                "ff-skip%", "slow Mcyc/s", "speedup");
    bench::rule();

    std::string json;
    json += "{\"bench\":\"firefly_perf\",\"sim_seconds\":";
    json += statNumber(perfSimSeconds);
    json += ",\"reps\":" + std::to_string(perfReps);
    json += ",\"points\":[";

    bool first = true;
    for (const Point &pt : points) {
        // The headline export is the saturated 7-CPU Firefly machine.
        const bool headline = std::string(pt.workload) == "saturated" &&
                              pt.proto == ProtocolKind::Firefly &&
                              pt.cpus == 7;
        const Measure fast = measure(pt, true, headline);
        const Measure slow = measure(pt, false, false);
        const double speedup = fast.wallSec > 0.0
            ? slow.wallSec / fast.wallSec
            : 0.0;
        const double skipFrac = fast.simCycles
            ? 100.0 * fast.ffSkipped / fast.simCycles
            : 0.0;

        std::printf(
            "%-9s %-8s %3u | %12.2f %12.2f %8.1f%% | %12.2f %7.2fx\n",
            pt.workload, toString(pt.proto), pt.cpus,
            fast.cyclesPerSec() / 1e6, fast.refsPerSec() / 1e6,
            skipFrac, slow.cyclesPerSec() / 1e6, speedup);

        if (!first)
            json += ",";
        first = false;
        json += "{\"workload\":\"";
        json += pt.workload;
        json += "\",\"protocol\":\"";
        json += toString(pt.proto);
        json += "\",\"cpus\":" + std::to_string(pt.cpus);
        json += ",\"sim_cycles\":" + std::to_string(fast.simCycles);
        json += ",\"refs\":" + std::to_string(fast.refs);
        json += ",\"ff_skipped_cycles\":" +
                std::to_string(fast.ffSkipped);
        json += ",\"fast_cycles_per_sec\":" +
                statNumber(fast.cyclesPerSec());
        json += ",\"fast_refs_per_sec\":" +
                statNumber(fast.refsPerSec());
        json += ",\"slow_cycles_per_sec\":" +
                statNumber(slow.cyclesPerSec());
        json += ",\"speedup_vs_slow\":" + statNumber(speedup);
        json += "}";
    }
    json += "]}\n";

    bench::rule();
    std::printf("Host numbers vary by machine; the committed "
                "BENCH_perf.json is the trajectory\nbaseline "
                "scripts/check.sh perf compares against.\n");

    if (!perfJsonPath.empty()) {
        std::ofstream os(perfJsonPath);
        if (!os)
            fatal("cannot write perf JSON to %s", perfJsonPath.c_str());
        os << json;
    }
}

} // namespace
} // namespace firefly

int
main(int argc, char **argv)
{
    using firefly::bench::ExtraFlag;
    const std::vector<ExtraFlag> extras = {
        {"--perf-json=", "write machine-readable results to FILE",
         [](const std::string &v) {
             firefly::perfJsonPath = v;
             return true;
         }},
        {"--perf-reps=", "measured repetitions per point (default 3)",
         [](const std::string &v) {
             const int n = std::atoi(v.c_str());
             if (n < 1 || n > 100)
                 return false;
             firefly::perfReps = static_cast<unsigned>(n);
             return true;
         }},
        {"--perf-seconds=", "simulated seconds per point (default 0.05)",
         [](const std::string &v) {
             const double s = std::atof(v.c_str());
             if (s <= 0.0 || s > 10.0)
                 return false;
             firefly::perfSimSeconds = s;
             return true;
         }},
    };
    return firefly::bench::runBenchMain(argc, argv,
                                        firefly::experiment, extras);
}
