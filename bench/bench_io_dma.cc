/**
 * @file
 * Experiment X6: I/O DMA and main-memory bandwidth.
 *
 * "When fully loaded, the QBus consumes about 30% of the main memory
 * bandwidth.  The average I/O load is much lower."  We saturate the
 * QBus with device DMA (Ethernet receive + disk streams) while the
 * processors run the calibrated workload, and report how much MBus
 * bandwidth the DMA takes and what it costs the processors.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"
#include "io/disk.hh"
#include "io/ethernet.hh"

using namespace firefly;

namespace
{

struct Result
{
    double busLoad;
    double dmaShareOfBus;   ///< fraction of bus ops that are DMA
    double cpuMips;
    double dmaMBps;
};

Result
run(bool saturate_io, unsigned cpus = 4, double seconds = 0.1)
{
    FireflySystem sys(FireflyConfig::microVax(cpus));
    sys.attachSyntheticWorkload(SyntheticConfig{});

    QBus qbus(sys.simulator(), sys.ioCache(),
              sys.config().ioAddressLimit());
    qbus.identityMap();
    EthernetController nic(sys.simulator(), qbus, "net0");

    // Saturation: a firehose of back-to-back received packets DMAed
    // into a ring of buffers, forever.
    std::function<void()> inject = [&] {
        if (!saturate_io)
            return;
        static unsigned ring = 0;
        const Addr buf = 0x0030'0000 + (ring++ % 8) * 2048;
        nic.addReceiveBuffer(buf, 2048);
        nic.injectFromWire(std::vector<Word>(375, 0x55aa55aa), 1500);
        // Next packet as soon as the wire could deliver one.
        sys.simulator().events().schedule(
            sys.simulator().now() + 1200, [&] { inject(); });
    };
    if (saturate_io)
        inject();

    sys.run(seconds);
    bench::exportStats(sys.stats());

    double instrs = 0;
    for (unsigned i = 0; i < cpus; ++i)
        instrs += static_cast<double>(sys.cpu(i).instructions());

    const double dma_ops = sys.bus().stats().get("dma_reads") +
                           sys.bus().stats().get("dma_writes");
    const double all_ops = sys.bus().stats().get("reads") +
                           sys.bus().stats().get("writes");
    const double dma_bytes =
        (qbus.engine().wordsRead.value() +
         qbus.engine().wordsWritten.value()) * 4.0;
    return {sys.busLoad(), all_ops > 0 ? dma_ops / all_ops : 0.0,
            instrs / seconds / 1e6, dma_bytes / seconds / 1e6};
}

void
experiment()
{
    bench::banner("X6", "QBus DMA vs main-memory bandwidth");

    const auto quiet = run(false);
    const auto loaded = run(true);

    std::printf("\n4-CPU machine, calibrated workload:\n\n");
    std::printf("%-28s %10s %10s\n", "", "idle I/O", "QBus full");
    bench::rule();
    std::printf("%-28s %10.2f %10.2f\n", "MBus load", quiet.busLoad,
                loaded.busLoad);
    std::printf("%-28s %10.2f %10.2f\n", "DMA share of bus ops",
                quiet.dmaShareOfBus, loaded.dmaShareOfBus);
    std::printf("%-28s %10.2f %10.2f\n", "DMA throughput (MB/s)",
                quiet.dmaMBps, loaded.dmaMBps);
    std::printf("%-28s %10.2f %10.2f\n", "CPU throughput (MIPS)",
                quiet.cpuMips, loaded.cpuMips);
    bench::rule();

    // A fully loaded QBus alone on an otherwise idle machine: the
    // cleanest version of the 30% claim.
    {
        FireflySystem sys(FireflyConfig::microVax(1));
        QBus qbus(sys.simulator(), sys.ioCache(),
                  sys.config().ioAddressLimit());
        qbus.identityMap();
        // Stream DMA writes continuously (writes always use the bus).
        std::function<void()> feed = [&] {
            qbus.engine().writeWords(
                0x0030'0000, std::vector<Word>(256, 1),
                [&](IoStatus) { feed(); });
        };
        feed();
        sys.simulator().run(secondsToCycles(0.05));
        std::printf(
            "Fully loaded QBus on an idle machine: MBus load %.2f\n"
            "  (paper: \"the QBus consumes about 30%% of the main "
            "memory bandwidth\")\n",
            sys.bus().load());
    }
    std::printf("CPU slowdown under full I/O load: %.1f%%  (the "
                "\"average I/O load is much lower\" in practice)\n",
                (1.0 - loaded.cpuMips / quiet.cpuMips) * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
