/**
 * @file
 * Experiment T1: regenerate paper Table 1, "Firefly Estimated
 * Performance" - the Section 5.2 queueing model evaluated at
 * NP = 2..12 processors, printed against the paper's published row
 * values.
 */

#include <cstdio>
#include <vector>

#include "analytic/queueing_model.hh"
#include "bench_util.hh"

using namespace firefly;

namespace
{

void
experiment()
{
    bench::banner("Table 1", "Firefly Estimated Performance");
    std::printf("Model inputs (paper Section 5.2): TR=2.13 refs/instr "
                "(IR=.95 DR=.78 DW=.40),\nM=0.2, D=0.25, S=0.1, N=2 "
                "ticks/bus-op, base TPI=11.9\n\n");

    QueueingModel model;
    const auto rows = model.table1();

    // The paper's printed values (NP=2 bus load reconstructed).
    const double paper_l[] = {0.18, 0.33, 0.47, 0.60, 0.70, 0.78};
    const double paper_tpi[] = {13.4, 13.9, 14.5, 15.3, 16.3, 17.7};
    const double paper_rp[] = {0.89, 0.85, 0.82, 0.78, 0.72, 0.67};
    const double paper_tp[] = {1.77, 3.43, 4.93, 6.23, 7.29, 8.07};

    std::printf("%-28s", "NP (number of processors):");
    for (const auto &row : rows)
        std::printf("%8.0f", row.processors);
    std::printf("\n");
    bench::rule();

    auto line = [&](const char *name, auto get, const double *paper,
                    const char *fmt) {
        std::printf("%-28s", name);
        for (const auto &row : rows)
            std::printf(fmt, get(row));
        std::printf("\n%-28s", "    (paper)");
        for (int i = 0; i < 6; ++i)
            std::printf(fmt, paper[i]);
        std::printf("\n");
    };

    line("L (bus loading):",
         [](const PerformanceRow &r) { return r.busLoad; }, paper_l,
         "%8.2f");
    line("TPI (ticks per instr):",
         [](const PerformanceRow &r) { return r.tpi; }, paper_tpi,
         "%8.1f");
    line("RP (relative perf):",
         [](const PerformanceRow &r) { return r.relativePerf; },
         paper_rp, "%8.2f");
    line("TP (total perf):",
         [](const PerformanceRow &r) { return r.totalPerf; }, paper_tp,
         "%8.2f");

    std::printf("%-28s", "TP (closed-model check):");
    // The MVA evaluation is an independent computation per NP, so it
    // sweeps through the harness like the simulator benches do.
    std::vector<unsigned> nps;
    for (const auto &row : rows)
        nps.push_back(static_cast<unsigned>(row.processors));
    const auto closed = bench::runSweep(nps, [&model](unsigned np) {
        return model.closedRowForProcessors(np);
    });
    for (const auto &row : closed)
        std::printf("%8.2f", row.totalPerf);
    std::printf("\n  (MVA with the bounded request population the "
                "paper notes its open model ignores)\n");

    bench::rule();
    const auto five = model.rowForProcessors(5.0);
    std::printf("Standard 5-processor machine: L=%.2f, RP=%.2f, "
                "TP=%.2f\n  (paper: \"bus load ... 0.4\", \"about 85%%\","
                " \"somewhat more than four times\")\n",
                five.busLoad, five.relativePerf, five.totalPerf);
    std::printf("Saturation: marginal gain per processor drops below "
                "0.5 after NP=%.0f\n  (paper: \"the Firefly MBus can "
                "support perhaps nine processors\")\n",
                model.saturationProcessors());
}

void
modelEvaluation(benchmark::State &state)
{
    QueueingModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.rowForProcessors(state.range(0)));
    }
}
BENCHMARK(modelEvaluation)->Arg(2)->Arg(8)->Arg(12);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
