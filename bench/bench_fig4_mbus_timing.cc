/**
 * @file
 * Experiment F4: regenerate paper Figure 4, "MBus Timing" - the
 * cycle-by-cycle structure of MRead and MWrite operations, plus the
 * resulting 10 MB/s aggregate bandwidth.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cache/cache.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

using namespace firefly;

namespace
{

/** Capture one transaction's phase-by-phase trace. */
std::vector<std::string>
traceTransaction(ProtocolKind kind, bool make_shared, bool is_write)
{
    Simulator sim;
    MainMemory memory;
    memory.addModule(4 * 1024 * 1024);
    MBus bus(sim, memory);
    Cache initiator(sim, bus, makeProtocol(kind), {}, "initiator");
    Cache other(sim, bus, makeProtocol(kind), {}, "other");

    const Addr addr = 0x1000;
    auto blocking = [&](Cache &cache, const MemRef &ref) {
        bool done = false;
        auto result = cache.cpuAccess(ref, [&](Word) { done = true; });
        if (result.outcome == Cache::AccessOutcome::Hit)
            return;
        while (!done)
            sim.run(1);
    };

    if (make_shared) {
        blocking(other, {addr, RefType::DataRead, 0});
        blocking(initiator, {addr, RefType::DataRead, 0});
    }

    std::vector<std::string> lines;
    bus.setTraceHook([&](Cycle now, const std::string &phase,
                         const std::string &detail) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "  cycle %2llu (%3llu ns)  %-12s %s",
                      static_cast<unsigned long long>(now),
                      static_cast<unsigned long long>(now * 100),
                      phase.c_str(), detail.c_str());
        lines.emplace_back(buf);
    });

    blocking(initiator,
             {addr, is_write ? RefType::DataWrite : RefType::DataRead,
              0xbeef});
    bench::exportStats(bus.stats());
    return lines;
}

void
experiment()
{
    bench::banner("Figure 4", "MBus timing (four 100 ns cycles per op)");

    std::printf("\nMRead, no other cache holds the line:\n");
    for (const auto &line :
         traceTransaction(ProtocolKind::Firefly, false, false))
        std::printf("%s\n", line.c_str());

    std::printf("\nMRead, another cache holds the line (MShared, "
                "memory inhibited):\n");
    {
        // Make the other cache the only holder: trace a fresh read.
        Simulator sim;
        MainMemory memory;
        memory.addModule(4 * 1024 * 1024);
        MBus bus(sim, memory);
        Cache a(sim, bus, makeProtocol(ProtocolKind::Firefly), {}, "a");
        Cache b(sim, bus, makeProtocol(ProtocolKind::Firefly), {}, "b");
        bool done = false;
        b.cpuAccess({0x1000, RefType::DataRead, 0},
                    [&](Word) { done = true; });
        while (!done)
            sim.run(1);
        bus.setTraceHook([&](Cycle now, const std::string &phase,
                             const std::string &detail) {
            std::printf("  cycle %2llu (%3llu ns)  %-12s %s\n",
                        static_cast<unsigned long long>(now),
                        static_cast<unsigned long long>(now * 100),
                        phase.c_str(), detail.c_str());
        });
        done = false;
        a.cpuAccess({0x1000, RefType::DataRead, 0},
                    [&](Word) { done = true; });
        while (!done)
            sim.run(1);
    }

    std::printf("\nMWrite (conditional write-through to a shared "
                "line):\n");
    for (const auto &line :
         traceTransaction(ProtocolKind::Firefly, true, true))
        std::printf("%s\n", line.c_str());

    // Bandwidth: saturate the bus for a millisecond.
    bench::rule();
    {
        Simulator sim;
        MainMemory memory;
        memory.addModule(4 * 1024 * 1024);
        MBus bus(sim, memory);

        struct Hammer : MBusClient, Clocked
        {
            MBus *bus;
            std::uint64_t done = 0;
            std::string busClientName() const override { return "h"; }
            SnoopReply snoopProbe(const MBusTransaction &) override
            {
                return {};
            }
            void transactionDone(const MBusTransaction &) override
            {
                ++done;
            }
            void
            tick(Cycle) override
            {
                if (!bus->busy(this)) {
                    MBusTransaction txn;
                    txn.type = MBusOpType::MRead;
                    txn.addr = 0x100;
                    txn.initiator = this;
                    bus->request(txn);
                }
            }
        } hammer;
        hammer.bus = &bus;
        bus.attach(&hammer);
        sim.addClocked(&hammer, Phase::Cpu);
        sim.run(10000);  // 1 ms
        const double mb_per_s =
            hammer.done * 4.0 / sim.seconds() / 1e6;
        std::printf("Saturated bus: %llu transfers in %.3f ms -> "
                    "%.2f MB/s  (paper: \"one four-byte transfer "
                    "every 400 ns ... 10 megabytes per second\")\n",
                    static_cast<unsigned long long>(hammer.done),
                    sim.seconds() * 1e3, mb_per_s);
        std::printf("Bus load: %.3f\n", bus.load());
    }
}

void
busTransactionThroughput(benchmark::State &state)
{
    Simulator sim;
    MainMemory memory;
    memory.addModule(4 * 1024 * 1024);
    MBus bus(sim, memory);
    struct Client : MBusClient
    {
        std::string busClientName() const override { return "c"; }
        SnoopReply snoopProbe(const MBusTransaction &) override
        {
            return {};
        }
    } client;
    bus.attach(&client);
    for (auto _ : state) {
        MBusTransaction txn;
        txn.type = MBusOpType::MRead;
        txn.addr = 0x100;
        txn.initiator = &client;
        bus.request(txn);
        sim.run(4);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(busTransactionThroughput);

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
