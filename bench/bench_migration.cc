/**
 * @file
 * Experiment X3: the process-migration ablation.
 *
 * "The disadvantage of this conditional write-through strategy is
 * that write-through continues as long as a datum resides in more
 * than one cache... If processes are allowed to move freely between
 * processors, the number of unnecessary writes could be significant,
 * since most of the writeable data for a process will be in both the
 * old and the new cache... For this reason, the Topaz scheduler goes
 * to some effort to avoid process migration."
 *
 * We run the Threads exerciser under the affinity scheduler and the
 * free-migration (global queue) scheduler and compare migrations,
 * MShared write-throughs, and bus load.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"
#include "topaz/workloads.hh"

using namespace firefly;

namespace
{

struct Result
{
    double migrations;
    double wtMshared;      ///< per 1000 user instructions
    double busLoad;
    double elapsedMs;
};

Result
run(SchedulerPolicy policy, ProtocolKind protocol)
{
    auto cfg = FireflyConfig::microVax(4);
    cfg.protocol = protocol;
    FireflySystem sys(cfg);

    TopazConfig tc;
    tc.cpus = 4;
    tc.policy = policy;
    TopazRuntime runtime(tc);
    ExerciserParams params;
    params.threads = 12;
    params.iterations = 250;
    buildThreadsExerciser(runtime, params);

    std::vector<RefSource *> sources;
    for (unsigned i = 0; i < 4; ++i)
        sources.push_back(&runtime.port(i));
    sys.attachSources(sources);
    sys.runToCompletion(40'000'000);
    bench::exportStats(sys.stats());

    double wt_shared = 0;
    for (unsigned i = 0; i < 4; ++i)
        wt_shared += sys.cache(i).wtMshared.value();
    const double kinstr =
        (runtime.userInstructions.value() +
         runtime.kernelInstructions.value()) / 1000.0;
    return {static_cast<double>(runtime.migrations.value()),
            wt_shared / kinstr, sys.busLoad(),
            sys.seconds() * 1e3};
}

void
experiment()
{
    bench::banner("X3",
                  "Scheduler migration policy vs conditional "
                  "write-through");
    std::printf("Threads exerciser, 12 threads, 4 CPUs.\n\n");
    std::printf("%-10s %-10s %12s %18s %10s %12s\n", "protocol",
                "scheduler", "migrations", "MShared WT/k-instr",
                "bus load", "runtime(ms)");
    bench::rule();

    // One independent simulation per (protocol, policy) point.
    struct Point
    {
        ProtocolKind protocol;
        SchedulerPolicy policy;
    };
    std::vector<Point> points;
    for (auto protocol : {ProtocolKind::Firefly, ProtocolKind::Mesi}) {
        for (auto policy :
             {SchedulerPolicy::Affinity, SchedulerPolicy::Global})
            points.push_back({protocol, policy});
    }
    const auto results = bench::runSweep(points, [](const Point &p) {
        return run(p.policy, p.protocol);
    });
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &result = results[i];
        std::printf("%-10s %-10s %12.0f %18.1f %10.2f %12.1f\n",
                    toString(points[i].protocol),
                    toString(points[i].policy), result.migrations,
                    result.wtMshared, result.busLoad,
                    result.elapsedMs);
    }

    bench::rule();
    std::printf(
        "Expected shape: under Firefly, the global queue migrates\n"
        "threads constantly, leaving stale copies in old caches, so\n"
        "write-throughs with MShared and the bus load rise and the\n"
        "run takes longer - the reason Topaz avoids migration.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
