/**
 * @file
 * Experiment X2: coherence protocol comparison (the design space of
 * Section 5.1 and the Archibald & Baer survey the paper cites).
 *
 * Claims to reproduce:
 *  - write-through-invalidate "is not a practical protocol for more
 *    than a few processors, because the substantial write traffic
 *    will rapidly saturate the bus";
 *  - invalidation protocols (Berkeley, MESI) "perform poorly when
 *    actual sharing occurs, since the invalidated information must
 *    be reloaded";
 *  - Firefly/Dragon update protocols keep shared data cheap at the
 *    cost of continued write-throughs/updates.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"

using namespace firefly;

namespace
{

struct Result
{
    double busLoad;
    double tpi;
    double totalPerf;  ///< aggregate instr rate vs one no-wait CPU
    double invalsReceived;
    double busWritesPerKInstr;
};

Result
run(ProtocolKind kind, unsigned cpus, double shared_write_frac,
    bool low_miss = false, double seconds = 0.08)
{
    auto cfg = FireflyConfig::microVax(cpus);
    cfg.protocol = kind;
    FireflySystem sys(cfg);
    SyntheticConfig workload;
    workload.writeSharedFrac = shared_write_frac;
    workload.readSharedFrac = shared_write_frac / 2;
    // A small, hot shared region: every cache ends up holding most
    // of it, so writes to it really are writes to *shared* lines.
    workload.sharedBytes = 8 * 1024;
    if (low_miss) {
        // A cache-friendly program (the regime where the paper's
        // WTI critique bites hardest: misses are rare, so WTI's
        // per-write bus traffic dominates).
        workload.reuseWindow = 512;
        workload.dataReuseProb = 0.97;
        workload.writeReuseProb = 0.9;
        workload.loopBranchFrac = 0.9995;
    }
    sys.attachSyntheticWorkload(workload);
    sys.run(seconds);
    bench::exportStats(sys.stats());

    double tpi = 0, instrs = 0, invals = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        tpi += sys.cpu(i).tpi();
        instrs += static_cast<double>(sys.cpu(i).instructions());
        invals +=
            static_cast<double>(sys.cache(i).invalidationsReceived.value());
    }
    const double nowait_instrs =
        seconds / (microVaxBaseTpi * 200e-9);
    const double bus_writes = sys.bus().stats().get("writes") +
                              sys.bus().stats().get("invalidates");
    return {sys.busLoad(), tpi / cpus, instrs / nowait_instrs,
            invals / seconds / 1e3, bus_writes / instrs * 1000.0};
}

/** One sweep point: the arguments of run(). */
struct Point
{
    ProtocolKind kind;
    unsigned cpus;
    double sharing;
    bool lowMiss;
};

/** Run every point, --jobs at a time, results in input order. */
std::vector<Result>
sweep(const std::vector<Point> &points)
{
    return bench::runSweep(points, [](const Point &p) {
        return run(p.kind, p.cpus, p.sharing, p.lowMiss);
    });
}

void
experiment()
{
    bench::banner("X2", "Coherence protocol comparison");

    const ProtocolKind kinds[] = {
        ProtocolKind::Firefly, ProtocolKind::Dragon,
        ProtocolKind::Mesi, ProtocolKind::Berkeley,
        ProtocolKind::WriteThroughInvalidate,
    };

    auto perfTable = [&](bool low_miss) {
        std::printf("%-10s", "protocol");
        for (unsigned np : {1u, 2u, 4u, 6u, 8u})
            std::printf("  NP=%-5u", np);
        std::printf("\n");
        bench::rule();
        std::vector<Point> points;
        for (const auto kind : kinds) {
            for (unsigned np : {1u, 2u, 4u, 6u, 8u})
                points.push_back({kind, np, 0.1, low_miss});
        }
        const auto results = sweep(points);
        std::size_t at = 0;
        for (const auto kind : kinds) {
            std::printf("%-10s", toString(kind));
            for (unsigned np : {1u, 2u, 4u, 6u, 8u}) {
                (void)np;
                std::printf("  %-7.2f", results[at++].totalPerf);
            }
            std::printf("\n");
        }
    };

    std::printf("\nTotal performance (aggregate MIPS relative to one "
                "no-wait CPU), S = 0.1:\n\n");
    perfTable(false);
    std::printf("\nTotal performance with a cache-friendly workload "
                "(low miss rate):\n\n");
    perfTable(true);
    std::printf("\n(WTI flattens first: every write is a bus write, "
                "however good the cache. Paper: \"not a practical "
                "protocol for more than a few processors\".)\n");

    std::printf("\nBus load at 6 CPUs vs sharing intensity:\n\n");
    std::printf("%-10s", "protocol");
    for (double s : {0.02, 0.1, 0.3})
        std::printf("  S=%-6.2f", s);
    std::printf("\n");
    bench::rule();
    {
        std::vector<Point> points;
        for (const auto kind : kinds) {
            for (double s : {0.02, 0.1, 0.3})
                points.push_back({kind, 6, s, false});
        }
        const auto results = sweep(points);
        std::size_t at = 0;
        for (const auto kind : kinds) {
            std::printf("%-10s", toString(kind));
            for (double s : {0.02, 0.1, 0.3}) {
                (void)s;
                std::printf("  %-8.2f", results[at++].busLoad);
            }
            std::printf("\n");
        }
    }

    std::printf("\nCoherence costs at 4 CPUs, heavy sharing (S=0.3):\n\n");
    std::printf("%-10s %22s %26s\n", "protocol",
                "invalidations/s (K)", "bus writes+invals /k-instr");
    bench::rule();
    {
        std::vector<Point> points;
        for (const auto kind : kinds)
            points.push_back({kind, 4, 0.3, false});
        const auto results = sweep(points);
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::printf("%-10s %22.1f %26.1f\n",
                        toString(points[i].kind),
                        results[i].invalsReceived,
                        results[i].busWritesPerKInstr);
        }
    }
    std::printf("\n(Invalidation protocols churn copies; update "
                "protocols pay with write-throughs/updates instead - "
                "the trade-off Section 5.1 discusses.)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
