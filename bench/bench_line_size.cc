/**
 * @file
 * Experiment X4: the line-size ablation of footnote 4.
 *
 * "This is an abnormally large miss rate for a 16 kilobyte cache.
 * We attribute it to the small line size (4 bytes).  A larger line
 * would probably have reduced the miss rate considerably, but it
 * would have complicated the design of the cache, the MBus, and the
 * storage modules.  Since the penalty for a miss is only one tick if
 * the MBus is available... we did not pursue a larger line."
 *
 * We sweep 4/8/16/32-byte lines (burst transfers on the MBus, +1
 * cycle per extra word) and report miss rate, bus load, and delivered
 * performance on single- and five-CPU machines.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"

using namespace firefly;

namespace
{

struct Result
{
    double missRate;
    double busLoad;
    double tpi;
    double totalPerf;
};

Result
run(Addr line_bytes, unsigned cpus, double seconds = 0.1)
{
    auto cfg = FireflyConfig::microVax(cpus);
    cfg.cacheGeometry = {16 * 1024, line_bytes};
    FireflySystem sys(cfg);
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(seconds);
    bench::exportStats(sys.stats());

    double miss = 0, tpi = 0, instrs = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        miss += sys.cache(i).stats().get("miss_rate");
        tpi += sys.cpu(i).tpi();
        instrs += static_cast<double>(sys.cpu(i).instructions());
    }
    const double nowait = seconds / (microVaxBaseTpi * 200e-9);
    return {miss / cpus, sys.busLoad(), tpi / cpus, instrs / nowait};
}

void
experiment()
{
    bench::banner("X4", "Cache line size ablation (footnote 4)");
    std::printf("16 KB direct-mapped cache, calibrated synthetic "
                "workload; MBus bursts cost +1 cycle per extra "
                "longword.\n\n");
    std::printf("%10s | %21s | %29s\n", "",
                "1 CPU", "5 CPUs");
    std::printf("%10s | %6s %6s %6s | %6s %6s %6s %8s\n",
                "line bytes", "M", "L", "TPI", "M", "L", "TPI", "TP");
    bench::rule();
    // One independent simulation per (line size, CPU count) point.
    struct Point
    {
        Addr line;
        unsigned cpus;
    };
    std::vector<Point> points;
    for (Addr line : {4u, 8u, 16u, 32u}) {
        points.push_back({line, 1});
        points.push_back({line, 5});
    }
    const auto results = bench::runSweep(
        points, [](const Point &p) { return run(p.line, p.cpus); });
    for (std::size_t i = 0; i < points.size(); i += 2) {
        const auto &one = results[i];
        const auto &five = results[i + 1];
        std::printf("%10u | %6.3f %6.2f %6.2f | %6.3f %6.2f %6.2f "
                    "%8.2f\n",
                    points[i].line, one.missRate, one.busLoad, one.tpi,
                    five.missRate, five.busLoad, five.tpi,
                    five.totalPerf);
    }
    bench::rule();
    std::printf(
        "Expected shape: the miss rate falls considerably with line\n"
        "size (spatial locality the 4-byte line could not exploit),\n"
        "confirming footnote 4.  Whether bus load falls too depends\n"
        "on the burst cost - the trade the designers declined to\n"
        "take in exchange for a simple cache, bus, and storage "
        "design.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
