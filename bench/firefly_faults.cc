/**
 * @file
 * Experiment X-FAULT: availability under injected faults.
 *
 * The paper's Firefly was SRC's daily-driver workstation, so the
 * interesting robustness question is availability: how much useful
 * work does the machine keep delivering while the fault subsystem
 * (src/fault/) NACKs bus cycles, corrects single-bit ECC errors, and
 * times out device DMA - and does it degrade gracefully (not wedge,
 * not corrupt) when a processor is fenced mid-run?
 *
 * Three sections:
 *
 *   1. Fault-rate sweep: a 4-CPU machine under the calibrated
 *      workload with the coherence checker armed, at increasing
 *      per-draw fault rates.  Every parity NACK must recover within
 *      the retry budget and refs/sec shows the cost.
 *
 *   2. Disk under device timeouts: a stream of sector reads with DMA
 *      timeouts injected; requests retry with backoff and the ones
 *      that exhaust the budget fail gracefully (callback with
 *      TimedOut), never wedging the event queue.
 *
 *   3. Processor offlining: fence a CPU mid-run, flush its cache,
 *      and keep running on N-1 processors; the oracle verifies no
 *      dirty data was lost and refs/sec shows the N -> N-1 step.
 *
 * Fault flags (only this bench and firefly_fuzz accept them):
 *
 *   --fault-rate=F   replace the sweep with the single rate F
 *   --fault-seed=N   fault-plan seed (default 1)
 *
 * Identical seed and fault config produce byte-identical --stats-json
 * files whatever --jobs is (bench_util's export arbitration).
 */

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "firefly/system.hh"
#include "io/disk.hh"

using namespace firefly;

namespace
{

std::optional<double> gRate;    // --fault-rate=F
std::uint64_t gSeed = 1;        // --fault-seed=N

struct SweepResult
{
    double rate;
    double refsPerSec;
    double busLoad;
    std::uint64_t parityErrors;
    std::uint64_t parityRecovered;
    std::uint64_t parityRetries;
    std::uint64_t eccCorrected;
};

SweepResult
runPoint(double rate, double seconds = 0.02)
{
    FireflyConfig cfg = FireflyConfig::microVax(4);
    cfg.coherenceCheck = true;
    cfg.faults.enabled = true;
    cfg.faults.seed = gSeed;
    cfg.faults.rates.busParity = rate;
    cfg.faults.rates.eccSingle = rate;

    FireflySystem sys(cfg);
    sys.attachSyntheticWorkload(SyntheticConfig{});
    sys.run(seconds);
    sys.checker()->finalCheck();
    bench::exportStats(sys.stats());

    const fault::FaultInjector &inj = *sys.faultInjector();
    // Each client can have at most one NACKed transaction awaiting
    // its backed-off retry when the clock stops; anything beyond
    // that means recovery dropped transactions.
    if (inj.parityErrors.value() - inj.parityRecovered.value() >
        cfg.processors)
        fatal("parity recovery lost transactions");
    return {rate,
            sys.totalCpuRefs() / sys.seconds(),
            sys.busLoad(),
            inj.parityErrors.value(),
            inj.parityRecovered.value(),
            inj.parityRetries.value(),
            inj.eccCorrected.value()};
}

void
sweepSection()
{
    std::vector<double> rates;
    if (gRate) {
        rates.push_back(*gRate);
    } else {
        rates = {0.0, 1e-5, 1e-4, 1e-3};
    }

    std::printf("4-CPU MicroVAX, calibrated workload, 20 ms "
                "simulated per point,\ncoherence checker armed; "
                "rate applies per bus data cycle (parity)\nand per "
                "memory module read (single-bit ECC).\n\n");
    std::printf("%10s %12s %8s %8s %10s %8s %8s\n", "rate",
                "refs/sec", "bus", "parity", "recovered", "retries",
                "ecc-fix");
    bench::rule();

    const auto results = bench::runSweep(
        rates, [](double rate) { return runPoint(rate); });
    for (const SweepResult &r : results) {
        std::printf("%10.0e %12.0f %8.2f %8llu %10llu %8llu %8llu\n",
                    r.rate, r.refsPerSec, r.busLoad,
                    static_cast<unsigned long long>(r.parityErrors),
                    static_cast<unsigned long long>(r.parityRecovered),
                    static_cast<unsigned long long>(r.parityRetries),
                    static_cast<unsigned long long>(r.eccCorrected));
    }
    std::printf("\nEvery NACKed transaction recovered within the "
                "retry budget; every\nsingle-bit ECC error was "
                "corrected in place.  Zero checker violations.\n");
}

void
diskSection()
{
    FireflyConfig cfg = FireflyConfig::microVax(1);
    cfg.faults.enabled = true;
    cfg.faults.seed = gSeed;
    cfg.faults.rates.deviceTimeout = 0.08;
    cfg.faults.deviceTimeoutCycles = 400;
    cfg.faults.deviceBackoffBase = 200;
    cfg.faults.deviceBackoffCap = 1600;

    FireflySystem sys(cfg);
    QBus qbus(sys.simulator(), sys.ioCache(),
              sys.config().ioAddressLimit());
    qbus.identityMap();
    qbus.engine().setFaultInjector(sys.faultInjector());
    DiskController disk(sys.simulator(), qbus, "disk0");

    const unsigned kRequests = 40;
    unsigned completed = 0, ok = 0, failed = 0;
    std::function<void(unsigned)> issue = [&](unsigned n) {
        if (n >= kRequests)
            return;
        disk.read(n * 4, 2, 0x0030'0000 + (n % 8) * 4096,
                  [&, n](IoStatus status) {
                      ++completed;
                      (status == IoStatus::Ok ? ok : failed) += 1;
                      issue(n + 1);
                  });
    };
    issue(0);
    // The watchdog is armed: if a timed-out request ever failed to
    // re-schedule or complete, this run would die with the pending-
    // event diagnostic instead of spinning forever.
    while (completed < kRequests)
        sys.simulator().run(10'000);

    const fault::FaultInjector &inj = *sys.faultInjector();
    std::printf("%u sequential 2-sector reads, timeout rate 0.08 per "
                "DMA request:\n", kRequests);
    std::printf("  completed Ok %u, failed gracefully %u "
                "(every callback fired)\n", ok, failed);
    std::printf("  device timeouts %llu, retries %llu, budget "
                "exhaustions %llu\n",
                static_cast<unsigned long long>(
                    inj.deviceTimeouts.value()),
                static_cast<unsigned long long>(
                    inj.deviceRetries.value()),
                static_cast<unsigned long long>(
                    inj.deviceFailures.value()));
    if (completed != kRequests || ok == 0)
        fatal("disk fault recovery lost requests");
}

void
offlineSection()
{
    FireflyConfig cfg = FireflyConfig::microVax(4);
    cfg.coherenceCheck = true;
    FireflySystem sys(cfg);
    sys.attachSyntheticWorkload(SyntheticConfig{});

    sys.run(0.01);
    const double refs4 = static_cast<double>(sys.totalCpuRefs());
    const double secs4 = sys.seconds();

    sys.offlineProcessor(3);

    sys.run(0.01);
    const double refs3 =
        static_cast<double>(sys.totalCpuRefs()) - refs4;
    const double secs3 = sys.seconds() - secs4;
    sys.checker()->finalCheck();

    std::printf("4 CPUs for 10 ms, then CPU 3 fenced, flushed, and "
                "offlined:\n");
    std::printf("  refs/sec with 4 CPUs: %12.0f\n", refs4 / secs4);
    std::printf("  refs/sec with 3 CPUs: %12.0f  (%.0f%% of the "
                "4-CPU rate)\n", refs3 / secs3,
                100.0 * (refs3 / secs3) / (refs4 / secs4));
    std::printf("  dirty lines flushed at the fence; oracle verified "
                "no data lost.\n");
    if (refs3 <= 0)
        fatal("machine stopped delivering work after the fence");
}

void
experiment()
{
    bench::banner("X-FAULT", "Availability under injected faults");
    std::printf("fault seed %llu\n\n",
                static_cast<unsigned long long>(gSeed));

    sweepSection();
    bench::rule();
    diskSection();
    bench::rule();
    offlineSection();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<bench::ExtraFlag> flags = {
        {"--fault-rate=",
         "sweep only this per-draw fault rate (in [0, 1])",
         [](const std::string &value) {
             char *end = nullptr;
             const double rate = std::strtod(value.c_str(), &end);
             if (*end != '\0' || rate < 0.0 || rate > 1.0)
                 return false;
             gRate = rate;
             return true;
         }},
        {"--fault-seed=",
         "seed for the deterministic fault plan (default 1)",
         [](const std::string &value) {
             char *end = nullptr;
             const unsigned long long n =
                 std::strtoull(value.c_str(), &end, 0);
             if (*end != '\0')
                 return false;
             gSeed = n;
             return true;
         }},
    };
    return firefly::bench::runBenchMain(argc, argv, experiment, flags);
}
