/**
 * @file
 * Experiment X8: RPC data-transfer bandwidth vs concurrent threads.
 *
 * "We have found that our RPC data transfer protocol, with multiple
 * outstanding calls, achieves very high performance.  The remote
 * server can sustain a bandwidth of 4.6 megabits per second using an
 * average of three concurrent threads."
 */

#include <cstdio>

#include "bench_util.hh"
#include "cache/cache.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"
#include "topaz/rpc.hh"

using namespace firefly;

namespace
{

struct Point
{
    double mbps;
    double avgOutstanding;
    double callsPerSec;
};

Point
run(unsigned threads, double seconds = 1.0)
{
    Simulator sim;
    MainMemory memory;
    memory.addModule(4 * 1024 * 1024);
    MBus bus(sim, memory);
    Cache io_cache(sim, bus, makeProtocol(ProtocolKind::Firefly), {},
                   "io-cache");
    QBus qbus(sim, io_cache, 16 * 1024 * 1024);
    qbus.identityMap();
    EthernetController nic(sim, qbus, "net0");

    RpcEngine::Config cfg;
    cfg.threads = threads;
    RpcEngine rpc(sim, qbus, nic, cfg);
    rpc.start();
    sim.run(secondsToCycles(seconds));
    bench::exportStats(rpc.stats());
    return {rpc.bandwidthMbps(), rpc.averageOutstanding(),
            rpc.callsCompleted.value() / seconds};
}

void
experiment()
{
    bench::banner("X8", "RPC data transfer vs concurrent threads");
    std::printf("1500-byte requests over the 10 Mbit/s Ethernet "
                "model; server service time dominates.\n\n");
    std::printf("%8s %16s %18s %12s\n", "threads", "Mbit/s",
                "avg outstanding", "calls/s");
    bench::rule();
    for (unsigned threads : {1u, 2u, 3u, 4u, 6u, 8u}) {
        const auto point = run(threads);
        std::printf("%8u %16.2f %18.2f %12.0f\n", threads, point.mbps,
                    point.avgOutstanding, point.callsPerSec);
    }
    bench::rule();
    std::printf("Paper: \"4.6 megabits per second using an average "
                "of three concurrent threads\" - the 3-thread row "
                "should sit near 4.6 and the curve should flatten "
                "beyond it.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return firefly::bench::runBenchMain(argc, argv, experiment);
}
