#include "check/invariant_scanner.hh"

#include <set>
#include <sstream>

#include "obs/trace.hh"

namespace firefly::check
{

namespace
{

/** States the protocol can legally leave a line in. */
bool
legal(ProtocolKind kind, LineState state)
{
    switch (kind) {
      case ProtocolKind::Firefly:
      case ProtocolKind::Mesi:
        return state == LineState::Valid || state == LineState::Dirty ||
               state == LineState::Shared;
      case ProtocolKind::Dragon:
        return state != LineState::Invalid;
      case ProtocolKind::WriteThroughInvalidate:
        return state == LineState::Valid;
      case ProtocolKind::Berkeley:
        return state == LineState::Dirty ||
               state == LineState::Shared ||
               state == LineState::SharedDirty;
    }
    return false;
}

/** States that assert "no other cache holds this line". */
bool
exclusive(ProtocolKind kind, LineState state)
{
    switch (kind) {
      case ProtocolKind::WriteThroughInvalidate:
        // WTI's only state is Valid and it is freely shared.
        return false;
      case ProtocolKind::Berkeley:
        // Berkeley has no exclusive-clean state; only Dirty claims
        // sole residency.
        return state == LineState::Dirty;
      default:
        return state == LineState::Valid || state == LineState::Dirty;
    }
}

} // namespace

bool
InvariantScanner::stateLegal(LineState state) const
{
    return legal(kind, state);
}

std::vector<InvariantScanner::Holder>
InvariantScanner::holdersOf(Addr addr) const
{
    std::vector<Holder> holders;
    for (const Cache *cache : caches) {
        if (cache->holds(addr))
            holders.push_back({cache, &cache->lineAt(addr)});
    }
    return holders;
}

void
InvariantScanner::checkLine(Addr addr, const GoldenMemory &oracle,
                            Cycle now, std::vector<std::string> &out) const
{
    if (caches.empty())
        return;
    const unsigned words = caches.front()->lineWords();
    const Addr line_bytes = words * bytesPerWord;
    const Addr base = addr - addr % line_bytes;

    const auto holders = holdersOf(base);

    // I1: state legality.
    for (const Holder &h : holders) {
        if (!stateLegal(h.line->state)) {
            std::ostringstream os;
            os << "I1 illegal state: " << h.cache->name() << " holds "
               << obs::hexAddr(base) << " in state "
               << toString(h.line->state) << ", which "
               << toString(kind) << " never produces";
            out.push_back(os.str());
        }
    }

    // I2: at most one owner (write-back responsibility).
    std::vector<const Cache *> owners;
    for (const Holder &h : holders) {
        if (needsWriteback(h.line->state))
            owners.push_back(h.cache);
    }
    if (owners.size() > 1) {
        std::ostringstream os;
        os << "I2 multiple owners of " << obs::hexAddr(base) << ":";
        for (const Cache *cache : owners)
            os << " " << cache->name();
        out.push_back(os.str());
    }

    // I3: exclusive states really are exclusive (MShared agreed).
    for (const Holder &h : holders) {
        if (exclusive(kind, h.line->state) && holders.size() > 1) {
            std::ostringstream os;
            os << "I3 exclusivity: " << h.cache->name() << " holds "
               << obs::hexAddr(base) << " in exclusive state "
               << toString(h.line->state) << " but " << holders.size()
               << " caches hold the line";
            out.push_back(os.str());
        }
    }

    // I4/I5: word-level data checks.
    for (unsigned w = 0; w < words; ++w) {
        const Addr a = base + w * bytesPerWord;
        bool have = false;
        Word held = 0;
        for (const Holder &h : holders) {
            const Word v = h.line->data[w];
            if (!have) {
                have = true;
                held = v;
            } else if (v != held) {
                std::ostringstream os;
                os << "I4 copies disagree at " << obs::hexAddr(a)
                   << ": " << holders.front().cache->name() << "="
                   << obs::hexAddr(held) << " vs " << h.cache->name()
                   << "=" << obs::hexAddr(v);
                out.push_back(os.str());
            }
        }
        if (have && !oracle.admissible(now, a, held)) {
            std::ostringstream os;
            os << "I4 cached value at " << obs::hexAddr(a) << " is "
               << obs::hexAddr(held) << " but the oracle says "
               << obs::hexAddr(oracle.current(a))
               << " (serialized @" << oracle.writtenAt(a) << ")";
            out.push_back(os.str());
        }
        if (owners.empty() && oracle.tracked(a) &&
            memory.peek(a) != oracle.current(a)) {
            std::ostringstream os;
            os << "I5 no owner for " << obs::hexAddr(a)
               << " yet memory holds " << obs::hexAddr(memory.peek(a))
               << ", oracle " << obs::hexAddr(oracle.current(a))
               << " (serialized @" << oracle.writtenAt(a) << ")";
            out.push_back(os.str());
        }
    }
}

void
InvariantScanner::fullScan(const GoldenMemory &oracle, Cycle now,
                           std::vector<std::string> &out) const
{
    std::set<Addr> bases;
    for (const Cache *cache : caches) {
        for (const CacheLine &line : cache->allLines()) {
            if (line.valid())
                bases.insert(line.base);
        }
    }
    for (const Addr base : bases)
        checkLine(base, oracle, now, out);

    // Tracked words nobody caches: memory must hold the value (the
    // per-line pass above only visits resident lines).
    const Addr line_bytes = caches.empty()
        ? bytesPerWord
        : caches.front()->lineWords() * bytesPerWord;
    for (const auto &[addr, value] : oracle.snapshot()) {
        if (bases.count(addr - addr % line_bytes))
            continue;
        if (memory.peek(addr) != value) {
            std::ostringstream os;
            os << "I5 uncached word " << obs::hexAddr(addr)
               << ": memory holds " << obs::hexAddr(memory.peek(addr))
               << ", oracle " << obs::hexAddr(value) << " (serialized @"
               << oracle.writtenAt(addr) << ")";
            out.push_back(os.str());
        }
    }
}

} // namespace firefly::check
