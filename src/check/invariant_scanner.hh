/**
 * @file
 * Protocol state-invariant scanner.
 *
 * Walks every attached cache's copy of a line and checks the
 * invariants the coherence protocols promise (DESIGN.md section 9
 * tabulates them per protocol):
 *
 *   I1  legality     - every line state is one the protocol uses;
 *   I2  single owner - at most one cache holds the line in an owning
 *                      (write-back) state: Dirty or SharedDirty;
 *   I3  exclusivity  - a line in an exclusive state (Valid = believed
 *                      sole holder, Dirty = modified exclusive) has
 *                      no copy in any other cache.  This is the
 *                      operational form of "the MShared wire agrees
 *                      with residency": a cache only reverts to an
 *                      exclusive state when MShared said nobody else
 *                      holds the line;
 *   I4  agreement    - all cached copies of a word are identical and
 *                      equal the oracle's visible value;
 *   I5  memory       - when no owner exists, main memory holds the
 *                      visible value (Firefly/MESI/WTI shared copies
 *                      are clean, so this also checks "shared lines
 *                      match main memory"; under Berkeley/Dragon an
 *                      owner suspends the rule for its line).
 *
 * The scanner only reads simulator state (const caches, memory
 * peek), so scanning cannot perturb a run.
 */

#ifndef FIREFLY_CHECK_INVARIANT_SCANNER_HH
#define FIREFLY_CHECK_INVARIANT_SCANNER_HH

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "check/golden_memory.hh"

namespace firefly::check
{

/** Walks cache states and reports invariant violations as text. */
class InvariantScanner
{
  public:
    InvariantScanner(ProtocolKind kind, const MainMemory &memory)
        : kind(kind), memory(memory)
    {
    }

    void addCache(const Cache *cache) { caches.push_back(cache); }

    /** True if `state` is one the protocol can legally produce. */
    bool stateLegal(LineState state) const;

    /**
     * Check every invariant for the line containing `addr`;
     * violations are appended to `out` as one description each.
     */
    void checkLine(Addr addr, const GoldenMemory &oracle, Cycle now,
                   std::vector<std::string> &out) const;

    /**
     * Check every valid line in every cache, plus memory-vs-oracle
     * for tracked words no cache holds.
     */
    void fullScan(const GoldenMemory &oracle, Cycle now,
                  std::vector<std::string> &out) const;

  private:
    struct Holder
    {
        const Cache *cache;
        const CacheLine *line;
    };

    std::vector<Holder> holdersOf(Addr addr) const;

    ProtocolKind kind;
    const MainMemory &memory;
    std::vector<const Cache *> caches;
};

} // namespace firefly::check

#endif // FIREFLY_CHECK_INVARIANT_SCANNER_HH
