/**
 * @file
 * The coherence oracle: the globally-visible value of every word.
 *
 * GoldenMemory shadows the simulated address space at word
 * granularity.  serialize() is called at the simulated instant a
 * write becomes globally visible - a silent write-back hit (the line
 * is exclusive), the commit cycle of a bus MWrite, or the commit of
 * the MInvalidate/MReadOwned that carried the written word.  Words
 * never written since construction read as main memory's current
 * content (the simulator's memory is only mutated through the bus,
 * so an untouched word's baseline is authoritative).
 *
 * Load validation uses admissible(), not plain equality, because the
 * simulator binds some load values a cycle or two before the
 * serialization instant the oracle keys on (a fill's data phase runs
 * before its commit).  Each word therefore keeps the values it held
 * within the last few cycles; a load is admissible if it returns the
 * current value or one superseded no more than `race_window` cycles
 * ago.  The window is a handful of bus cycles - far shorter than any
 * genuine staleness a protocol bug produces, which persists until
 * the line is re-fetched.
 */

#ifndef FIREFLY_CHECK_GOLDEN_MEMORY_HH
#define FIREFLY_CHECK_GOLDEN_MEMORY_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/main_memory.hh"
#include "sim/types.hh"

namespace firefly::check
{

/** Word-granular oracle of globally-visible memory contents. */
class GoldenMemory
{
  public:
    GoldenMemory(const MainMemory &memory, unsigned race_window_cycles)
        : memory(memory), window(race_window_cycles)
    {
    }

    /** Record that `value` became the visible content of `addr`. */
    void
    serialize(Cycle now, Addr addr, Word value)
    {
        auto [it, inserted] = entries.try_emplace(addr);
        Entry &entry = it->second;
        if (inserted) {
            // First write: the old visible value was memory's.
            entry.recent.push_back({memory.peek(addr), now});
        } else if (entry.value != value) {
            entry.recent.push_back({entry.value, now});
        }
        entry.value = value;
        entry.when = now;
        prune(entry, now);
        ++writes;
    }

    /** True if `addr` has ever been written through the oracle. */
    bool tracked(Addr addr) const { return entries.count(addr) != 0; }

    /** The visible value: last serialized write, else memory. */
    Word
    current(Addr addr) const
    {
        const auto it = entries.find(addr);
        return it != entries.end() ? it->second.value
                                   : memory.peek(addr);
    }

    /** Cycle of the last serialized write (0 if untracked). */
    Cycle
    writtenAt(Addr addr) const
    {
        const auto it = entries.find(addr);
        return it != entries.end() ? it->second.when : 0;
    }

    /**
     * Is `observed` an admissible result for a load of `addr` that
     * bound its value at cycle `now`?
     */
    bool
    admissible(Cycle now, Addr addr, Word observed) const
    {
        const auto it = entries.find(addr);
        if (it == entries.end())
            return observed == memory.peek(addr);
        const Entry &entry = it->second;
        if (observed == entry.value)
            return true;
        for (const Stale &stale : entry.recent) {
            if (observed == stale.value &&
                stale.superseded + window >= now) {
                return true;
            }
        }
        return false;
    }

    /** Every tracked word, sorted by address (deterministic order). */
    std::vector<std::pair<Addr, Word>>
    snapshot() const
    {
        std::vector<std::pair<Addr, Word>> out;
        out.reserve(entries.size());
        for (const auto &[addr, entry] : entries)
            out.emplace_back(addr, entry.value);
        std::sort(out.begin(), out.end());
        return out;
    }

    std::size_t trackedWords() const { return entries.size(); }
    std::uint64_t writesSerialized() const { return writes; }

  private:
    /** A value superseded at `superseded`; admissible briefly. */
    struct Stale
    {
        Word value;
        Cycle superseded;
    };

    struct Entry
    {
        Word value = 0;
        Cycle when = 0;
        std::vector<Stale> recent;
    };

    void
    prune(Entry &entry, Cycle now)
    {
        std::erase_if(entry.recent, [&](const Stale &stale) {
            return stale.superseded + window < now;
        });
    }

    const MainMemory &memory;
    unsigned window;
    std::unordered_map<Addr, Entry> entries;
    std::uint64_t writes = 0;
};

} // namespace firefly::check

#endif // FIREFLY_CHECK_GOLDEN_MEMORY_HH
