/**
 * @file
 * Randomized coherence fuzzer.
 *
 * runFuzz() builds a small machine - memory, bus, N caches, a DMA
 * engine through cache 0 (the I/O processor position) - attaches a
 * CoherenceChecker, and drives a pseudo-random reference stream of
 * CPU loads/stores and DMA bursts at it.  Tunables steer the stream
 * toward the interesting corners: sharing (several CPUs hitting a
 * common pool of words), migration (writers moving between caches),
 * and DMA pressure (bursts landing on lines CPUs have cached).
 *
 * The operation sequence is generated up front from the seed alone,
 * so it depends on nothing the protocol decides: running the same
 * seed against two protocols replays the identical reference stream.
 * With `recordLoads` set, every load value (CPU and DMA) is appended
 * to FuzzResult::loadLog in issue order - since operations execute
 * one at a time, coherent protocols must produce identical logs for
 * the same seed, which is the differential cross-protocol test.
 *
 * A violation raises CoherenceViolation (runFuzz always configures
 * the checker to throw); the message carries the seed's failing line,
 * states, and replay log.  Reproduce any fuzz failure by re-running
 * its FuzzConfig - the stream is a pure function of the seed.
 */

#ifndef FIREFLY_CHECK_FUZZ_HH
#define FIREFLY_CHECK_FUZZ_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/protocol.hh"
#include "check/coherence_checker.hh"
#include "fault/fault_injector.hh"

namespace firefly::check
{

/** Knobs for one fuzz run.  Defaults are a busy 3-CPU machine. */
struct FuzzConfig
{
    ProtocolKind protocol = ProtocolKind::Firefly;
    std::uint64_t seed = 1;
    unsigned steps = 2000;       ///< operations to issue

    // Machine shape.
    unsigned nCaches = 3;        ///< cache 0 doubles as the I/O cache
    Addr cacheBytes = 256;       ///< tiny, to force evictions
    Addr lineBytes = 4;

    // Reference stream shape.
    unsigned sharedWords = 16;   ///< hot pool all CPUs fight over
    unsigned privateWords = 32;  ///< per-CPU mostly-private pool
    double writeFrac = 0.4;      ///< P(store | CPU op)
    double sharedFrac = 0.6;     ///< P(shared pool | CPU op)
    double migrateFrac = 0.15;   ///< P(another CPU's pool | private)
    double dmaFrac = 0.1;        ///< P(op is a DMA transfer)
    unsigned dmaBurstMax = 4;    ///< longest DMA burst in words

    // Checker knobs.
    unsigned fullScanPeriod = 64;
    unsigned replayDepth = 16;

    /** Record every load value for differential comparison. */
    bool recordLoads = false;

    /**
     * Fault injection (off by default).  Faults are drawn per-event
     * in issue order, so for a given seed the same faults hit the
     * same operations whatever the protocol - recoverable faults must
     * not perturb the differential load log.  The fuzz machine runs
     * with the wedge watchdog in throw mode.
     */
    fault::FaultConfig faults;

    /**
     * Protocol factory, overridable so tests can inject a broken
     * protocol and prove the checker has teeth.  Default:
     * makeProtocol(protocol).
     */
    std::function<std::unique_ptr<CoherenceProtocol>()> protocolFactory;
};

/** What one fuzz run did (all zero-violation: violations throw). */
struct FuzzResult
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t dmaReads = 0;     ///< words read by DMA
    std::uint64_t dmaWrites = 0;    ///< words written by DMA
    Cycle cycles = 0;
    std::uint64_t loadsChecked = 0;
    std::uint64_t writesTracked = 0;
    std::uint64_t fullScans = 0;
    /** Every load value in issue order (when cfg.recordLoads). */
    std::vector<Word> loadLog;

    // Fault/recovery activity (zero when faults are off).
    std::uint64_t parityErrors = 0;
    std::uint64_t parityRecovered = 0;
    std::uint64_t eccCorrected = 0;
    std::uint64_t deviceTimeouts = 0;
    std::uint64_t deviceRetries = 0;
    std::uint64_t deviceFailures = 0;
};

/**
 * Run one fuzz instance to completion (including a final full
 * invariant scan).  Throws CoherenceViolation on any violation.
 */
FuzzResult runFuzz(const FuzzConfig &cfg);

} // namespace firefly::check

#endif // FIREFLY_CHECK_FUZZ_HH
