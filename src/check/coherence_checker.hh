/**
 * @file
 * The coherence checker: oracle + invariant scanner + replay log.
 *
 * One CoherenceChecker watches one simulated machine.  It hooks the
 * machine at three levels:
 *
 *  - as a CoherenceObserver on every watched Cache (and on-chip
 *    cache), it learns the instant every load binds its value and
 *    every non-bus write serializes;
 *  - as an MBus commit observer, it learns bus-written values at the
 *    serialization instant, before any completion callback can
 *    trigger the next validated load;
 *  - as an MBus settle observer, it scans the transaction's line
 *    (and periodically every line) against the InvariantScanner once
 *    all snoop/completion callbacks have applied their state
 *    changes, and appends the transaction to a bounded replay ring.
 *
 * On a violation it emits a flight-recorder instant event (category
 * "Check"), then either throws CoherenceViolation (tests) or panics
 * (standalone runs), in both cases carrying a deterministic
 * diagnostic: the failed check, every cache's copy of the line,
 * memory and oracle contents, and the last K bus transactions that
 * touched the line.
 *
 * The checker never mutates simulator state: it peeks memory through
 * the stat-free MainMemory::peek and reads cache lines through const
 * accessors, so a checked run's statistics equal an unchecked one's.
 *
 * The tags-only on-chip cache is validated by value snapshot: at
 * install time the checker records the oracle's view of the line; on
 * every on-chip hit the snapshot must still be admissible, or the
 * non-snooping structure would have served stale data.  (The
 * snapshot is taken at the install/access instant, so in
 * InstructionsOnly mode a write landing between a miss and its fill
 * completion can look stale; none of the shipped workloads write
 * instruction words, and InstructionsAndData mode is exact because
 * the bus-write repair drops the entry first.)
 */

#ifndef FIREFLY_CHECK_COHERENCE_CHECKER_HH
#define FIREFLY_CHECK_COHERENCE_CHECKER_HH

#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "check/golden_memory.hh"
#include "check/invariant_scanner.hh"
#include "cpu/onchip_cache.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace firefly::check
{

/** Tunables; the defaults suit a unit-test-sized machine. */
struct CheckerConfig
{
    /** Bus transactions kept for the per-line replay log. */
    unsigned replayDepth = 16;
    /** Scan every cache line each N transactions (0 = never; the
     *  per-transaction line scan still runs). */
    unsigned fullScanPeriod = 256;
    /** Cycles a superseded value stays an admissible load result. */
    unsigned raceWindowCycles = 16;
    /** Throw CoherenceViolation instead of panicking. */
    bool throwOnViolation = false;
};

/** Raised on a violation when CheckerConfig::throwOnViolation. */
class CoherenceViolation : public std::runtime_error
{
  public:
    explicit CoherenceViolation(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Watches one machine's caches and bus for coherence violations. */
class CoherenceChecker : public CoherenceObserver
{
  public:
    CoherenceChecker(Simulator &sim, MBus &bus, MainMemory &memory,
                     ProtocolKind kind, CheckerConfig config = {});

    /** Attach a cache; call once per cache before running. */
    void watch(Cache &cache);
    /** Attach an on-chip cache for snapshot validation. */
    void watch(OnChipCache &onchip);

    /** Full invariant scan; call at end of run for a final verdict. */
    void finalCheck();

    GoldenMemory &oracle() { return golden; }
    StatGroup &stats() { return statGroup; }

    // --- CoherenceObserver ----------------------------------------------
    void writeSerialized(Addr addr, Word value, const Cache &by,
                         const char *how) override;
    void loadObserved(Addr addr, Word value, const Cache &by,
                      const char *how) override;
    void onChipInstalled(Addr line_base, const OnChipCache &by) override;
    void onChipHit(const MemRef &ref, const OnChipCache &by) override;

    // Counters, public like the Cache's so tests can read them.
    Counter loadsChecked;
    Counter writesTracked;
    Counter txnsObserved;
    Counter lineScans;
    Counter fullScans;
    Counter onChipChecks;

  private:
    /** One remembered bus transaction for the replay log. */
    struct TxnRecord
    {
        Cycle when;
        MBusOpType type;
        MBusOpKind kind;
        Addr addr;
        unsigned words;
        std::array<Word, maxBurstWords> data;
        bool mshared;
        bool updatesMemory;
        std::string by;
    };

    void busCommit(const MBusTransaction &txn);
    void busSettled(const MBusTransaction &txn);

    Addr lineBaseOf(Addr addr) const;
    std::string describeLine(Addr line_base) const;
    std::string replayFor(Addr line_base) const;
    [[noreturn]] void fail(Addr addr, const std::string &what);

    Simulator &sim;
    const MainMemory &memory;
    ProtocolKind kind;
    CheckerConfig cfg;

    GoldenMemory golden;
    InvariantScanner scanner;
    std::vector<const Cache *> caches;

    std::deque<TxnRecord> replay;

    /** Oracle snapshots backing the tags-only on-chip caches. */
    std::map<const OnChipCache *,
             std::unordered_map<Addr, std::vector<Word>>> onchipLines;

    StatGroup statGroup;
};

} // namespace firefly::check

#endif // FIREFLY_CHECK_COHERENCE_CHECKER_HH
