#include "check/fuzz.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "io/dma_engine.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace firefly::check
{

namespace
{

/** Address layout: a hot shared pool, then per-CPU private pools. */
constexpr Addr sharedBase = 0x1000;
constexpr Addr privateBase = 0x40000;
constexpr Addr privateStride = 0x8000;

/** One pre-generated operation of the reference stream. */
struct FuzzOp
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        DmaRead,
        DmaWrite,
    };

    Kind kind;
    unsigned cpu = 0;          ///< CPU ops: which cache
    Addr addr = 0;
    unsigned words = 1;        ///< DMA ops: burst length
    std::vector<Word> data;    ///< store/DMA-write values
};

/**
 * Generate the whole reference stream from the seed.  This consumes
 * the Rng in a fixed order that depends on nothing but the
 * configuration, so every protocol replays the identical stream.
 */
std::vector<FuzzOp>
generateOps(const FuzzConfig &cfg, Rng &rng)
{
    std::vector<FuzzOp> ops;
    ops.reserve(cfg.steps);
    for (unsigned i = 0; i < cfg.steps; ++i) {
        FuzzOp op;
        if (rng.chance(cfg.dmaFrac)) {
            const bool is_write = rng.chance(0.5);
            op.kind = is_write ? FuzzOp::Kind::DmaWrite
                               : FuzzOp::Kind::DmaRead;
            const unsigned max_burst =
                std::min<unsigned>(cfg.dmaBurstMax, cfg.sharedWords);
            op.words = 1 + rng.below(max_burst);
            const unsigned slot =
                rng.below(cfg.sharedWords - op.words + 1);
            op.addr = sharedBase + slot * bytesPerWord;
            if (is_write) {
                for (unsigned w = 0; w < op.words; ++w)
                    op.data.push_back(static_cast<Word>(rng.next()));
            }
        } else {
            op.cpu = rng.below(cfg.nCaches);
            Addr pool_base;
            unsigned pool_words;
            if (rng.chance(cfg.sharedFrac)) {
                pool_base = sharedBase;
                pool_words = cfg.sharedWords;
            } else {
                // Mostly this CPU's pool; sometimes another's, so
                // lines migrate between caches and hit the
                // write-back / re-fetch paths.
                unsigned owner = op.cpu;
                if (rng.chance(cfg.migrateFrac))
                    owner = rng.below(cfg.nCaches);
                pool_base = privateBase + owner * privateStride;
                pool_words = cfg.privateWords;
            }
            op.addr = pool_base + rng.below(pool_words) * bytesPerWord;
            if (rng.chance(cfg.writeFrac)) {
                op.kind = FuzzOp::Kind::Store;
                op.data.push_back(static_cast<Word>(rng.next()));
            } else {
                op.kind = FuzzOp::Kind::Load;
            }
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

} // namespace

FuzzResult
runFuzz(const FuzzConfig &cfg)
{
    if (cfg.nCaches == 0 || cfg.sharedWords == 0 ||
        cfg.privateWords == 0 || cfg.steps == 0) {
        panic("fuzz: degenerate configuration");
    }

    Simulator sim;
    MainMemory memory;
    memory.addModule(4 * 1024 * 1024);
    MBus bus(sim, memory);

    const Cache::Geometry geom{cfg.cacheBytes, cfg.lineBytes};
    std::vector<std::unique_ptr<Cache>> caches;
    for (unsigned i = 0; i < cfg.nCaches; ++i) {
        auto protocol = cfg.protocolFactory ? cfg.protocolFactory()
                                            : makeProtocol(cfg.protocol);
        caches.push_back(std::make_unique<Cache>(
            sim, bus, std::move(protocol), geom,
            "cache" + std::to_string(i)));
    }

    CheckerConfig checker_cfg;
    checker_cfg.replayDepth = cfg.replayDepth;
    checker_cfg.fullScanPeriod = cfg.fullScanPeriod;
    checker_cfg.throwOnViolation = true;
    CoherenceChecker checker(sim, bus, memory, cfg.protocol,
                             checker_cfg);
    for (auto &cache : caches)
        checker.watch(*cache);

    // Cache 0 plays the I/O processor: DMA flows through it.
    DmaEngine dma(sim, *caches[0], 16 * 1024 * 1024);

    std::unique_ptr<fault::FaultInjector> injector;
    if (cfg.faults.active()) {
        injector = std::make_unique<fault::FaultInjector>(cfg.faults);
        bus.setFaultInjector(injector.get());
        memory.setFaultInjector(injector.get());
        dma.setFaultInjector(injector.get());
        // Throw mode: a wedge under fault injection is a test
        // failure, not a reason to kill the whole process.
        sim.setWatchdog(cfg.faults.watchdogCycles, true);
    }

    Rng rng(cfg.seed);
    const std::vector<FuzzOp> ops = generateOps(cfg, rng);

    FuzzResult result;

    // Issue one operation at a time, running the clock until each
    // completes; serialized issue is what makes load values
    // protocol-independent for the differential comparison.
    const auto cpuAccess = [&](unsigned cpu, const MemRef &ref) {
        bool done = false;
        Word data = 0;
        for (;;) {
            auto r = caches[cpu]->cpuAccess(
                ref, [&](Word w) { done = true; data = w; });
            if (r.outcome == Cache::AccessOutcome::Hit)
                return r.data;
            if (r.outcome == Cache::AccessOutcome::Pending)
                break;
            sim.run(1);  // tag store busy: retry next cycle
        }
        while (!done)
            sim.run(1);
        return data;
    };

    for (const FuzzOp &op : ops) {
        switch (op.kind) {
          case FuzzOp::Kind::Load: {
            const Word v =
                cpuAccess(op.cpu, {op.addr, RefType::DataRead, 0});
            ++result.loads;
            if (cfg.recordLoads)
                result.loadLog.push_back(v);
            break;
          }
          case FuzzOp::Kind::Store:
            cpuAccess(op.cpu,
                      {op.addr, RefType::DataWrite, op.data[0]});
            ++result.stores;
            break;
          case FuzzOp::Kind::DmaRead: {
            // Retry timed-out transfers with the injector's budget,
            // then give up gracefully (the op is skipped; every
            // protocol skips the same ops for a given seed).
            IoStatus status = IoStatus::Ok;
            std::vector<Word> values;
            for (unsigned attempt = 0;; ++attempt) {
                bool done = false;
                dma.readWords(op.addr, op.words,
                              [&](IoStatus st, std::vector<Word> v) {
                                  done = true;
                                  status = st;
                                  values = std::move(v);
                              });
                while (!done)
                    sim.run(1);
                if (status == IoStatus::Ok || !injector ||
                    attempt + 1 >= injector->config().deviceRetryBudget)
                    break;
                ++injector->deviceRetries;
            }
            if (status != IoStatus::Ok) {
                ++injector->deviceFailures;
                break;
            }
            result.dmaReads += op.words;
            if (cfg.recordLoads) {
                result.loadLog.insert(result.loadLog.end(),
                                      values.begin(), values.end());
            }
            break;
          }
          case FuzzOp::Kind::DmaWrite: {
            IoStatus status = IoStatus::Ok;
            for (unsigned attempt = 0;; ++attempt) {
                bool done = false;
                dma.writeWords(op.addr, op.data, [&](IoStatus st) {
                    done = true;
                    status = st;
                });
                while (!done)
                    sim.run(1);
                if (status == IoStatus::Ok || !injector ||
                    attempt + 1 >= injector->config().deviceRetryBudget)
                    break;
                ++injector->deviceRetries;
            }
            if (status != IoStatus::Ok) {
                ++injector->deviceFailures;
                break;
            }
            result.dmaWrites += op.words;
            break;
          }
        }
    }

    while (!dma.idle())
        sim.run(1);
    checker.finalCheck();

    result.cycles = sim.now();
    result.loadsChecked = checker.loadsChecked.value();
    result.writesTracked = checker.writesTracked.value();
    result.fullScans = checker.fullScans.value();
    if (injector) {
        result.parityErrors = injector->parityErrors.value();
        result.parityRecovered = injector->parityRecovered.value();
        result.eccCorrected = injector->eccCorrected.value();
        result.deviceTimeouts = injector->deviceTimeouts.value();
        result.deviceRetries = injector->deviceRetries.value();
        result.deviceFailures = injector->deviceFailures.value();
    }
    return result;
}

} // namespace firefly::check
