#include "check/coherence_checker.hh"

#include <sstream>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly::check
{

CoherenceChecker::CoherenceChecker(Simulator &sim, MBus &bus,
                                   MainMemory &memory, ProtocolKind kind,
                                   CheckerConfig config)
    : sim(sim),
      memory(memory),
      kind(kind),
      cfg(config),
      golden(memory, config.raceWindowCycles),
      scanner(kind, memory),
      statGroup("checker")
{
    bus.addCommitObserver(
        [this](const MBusTransaction &txn) { busCommit(txn); });
    bus.addSettleObserver(
        [this](const MBusTransaction &txn) { busSettled(txn); });

    statGroup.addCounter(&loadsChecked, "loads_checked",
                         "load values validated against the oracle");
    statGroup.addCounter(&writesTracked, "writes_tracked",
                         "write serializations recorded in the oracle");
    statGroup.addCounter(&txnsObserved, "txns_observed",
                         "bus transactions observed");
    statGroup.addCounter(&lineScans, "line_scans",
                         "per-transaction line invariant scans");
    statGroup.addCounter(&fullScans, "full_scans",
                         "whole-machine invariant scans");
    statGroup.addCounter(&onChipChecks, "onchip_checks",
                         "on-chip cache hits validated by snapshot");
}

void
CoherenceChecker::watch(Cache &cache)
{
    caches.push_back(&cache);
    scanner.addCache(&cache);
    cache.setCoherenceObserver(this);
}

void
CoherenceChecker::watch(OnChipCache &onchip)
{
    onchipLines.try_emplace(&onchip);
    onchip.setCoherenceObserver(this);
}

Addr
CoherenceChecker::lineBaseOf(Addr addr) const
{
    if (caches.empty())
        return addr - addr % bytesPerWord;
    const Addr line_bytes = caches.front()->lineWords() * bytesPerWord;
    return addr - addr % line_bytes;
}

// --- serialization points -----------------------------------------------

void
CoherenceChecker::writeSerialized(Addr addr, Word value, const Cache &by,
                                  const char *how)
{
    (void)by;
    (void)how;
    golden.serialize(sim.now(), addr, value);
    ++writesTracked;
}

void
CoherenceChecker::loadObserved(Addr addr, Word value, const Cache &by,
                               const char *how)
{
    ++loadsChecked;
    if (golden.admissible(sim.now(), addr, value))
        return;
    std::ostringstream os;
    os << "load validation: " << by.name() << " (" << how << ") read "
       << obs::hexAddr(addr) << " = " << obs::hexAddr(value)
       << " but the oracle says " << obs::hexAddr(golden.current(addr))
       << " (serialized @" << golden.writtenAt(addr) << ")";
    fail(addr, os.str());
}

void
CoherenceChecker::busCommit(const MBusTransaction &txn)
{
    // Record first, so the failing transaction itself shows up in the
    // replay log of any diagnostic it triggers.
    TxnRecord rec;
    rec.when = sim.now();
    rec.type = txn.type;
    rec.kind = txn.kind;
    rec.addr = txn.addr;
    rec.words = txn.words;
    rec.data = txn.data;
    rec.mshared = txn.mshared;
    rec.updatesMemory = txn.updatesMemory;
    rec.by = txn.initiator ? txn.initiator->busClientName() : "?";
    replay.push_back(std::move(rec));
    while (replay.size() > cfg.replayDepth)
        replay.pop_front();

    if (txn.type != MBusOpType::MWrite)
        return;

    if (txn.kind == MBusOpKind::VictimWrite) {
        // A write-back moves an already-serialized value to memory;
        // it must not change the visible value.  Stale victim data
        // (the bug refreshWriteData exists to prevent) shows up here.
        if (!txn.updatesMemory)
            return;  // squashed: line was invalidated while waiting
        for (unsigned i = 0; i < txn.words; ++i) {
            const Addr a = txn.addr + i * bytesPerWord;
            if (golden.admissible(sim.now(), a, txn.data[i]))
                continue;
            std::ostringstream os;
            os << "victim write-back by " << replay.back().by
               << " carries " << obs::hexAddr(txn.data[i]) << " for "
               << obs::hexAddr(a) << " but the oracle says "
               << obs::hexAddr(golden.current(a)) << " (serialized @"
               << golden.writtenAt(a)
               << "); the write-back would destroy a later write";
            fail(a, os.str());
        }
        return;
    }

    // WriteThrough / Update / DmaWrite: the commit cycle is the
    // serialization instant for the carried words.  (Update does not
    // touch memory, but every cached copy adopts the value now.)
    for (unsigned i = 0; i < txn.words; ++i) {
        golden.serialize(sim.now(), txn.addr + i * bytesPerWord,
                         txn.data[i]);
        ++writesTracked;
    }
}

// --- invariant scans -----------------------------------------------------

void
CoherenceChecker::busSettled(const MBusTransaction &txn)
{
    ++txnsObserved;

    std::vector<std::string> violations;
    scanner.checkLine(txn.addr, golden, sim.now(), violations);
    ++lineScans;

    if (violations.empty() && cfg.fullScanPeriod &&
        txnsObserved.value() % cfg.fullScanPeriod == 0) {
        scanner.fullScan(golden, sim.now(), violations);
        ++fullScans;
    }

    if (!violations.empty()) {
        std::ostringstream os;
        os << "after " << toString(txn.type) << " ("
           << toString(txn.kind) << ") " << obs::hexAddr(txn.addr)
           << " by " << (replay.empty() ? std::string("?")
                                        : replay.back().by);
        for (const std::string &v : violations)
            os << "\n  " << v;
        fail(txn.addr, os.str());
    }
}

void
CoherenceChecker::finalCheck()
{
    std::vector<std::string> violations;
    scanner.fullScan(golden, sim.now(), violations);
    ++fullScans;
    if (!violations.empty()) {
        std::ostringstream os;
        os << "final scan";
        for (const std::string &v : violations)
            os << "\n  " << v;
        fail(0, os.str());
    }
}

// --- on-chip cache snapshots ---------------------------------------------

void
CoherenceChecker::onChipInstalled(Addr line_base, const OnChipCache &by)
{
    auto it = onchipLines.find(&by);
    if (it == onchipLines.end())
        return;
    const unsigned words = by.lineBytes() / bytesPerWord;
    std::vector<Word> values(words);
    for (unsigned i = 0; i < words; ++i)
        values[i] = golden.current(line_base + i * bytesPerWord);
    it->second[line_base] = std::move(values);
}

void
CoherenceChecker::onChipHit(const MemRef &ref, const OnChipCache &by)
{
    auto it = onchipLines.find(&by);
    if (it == onchipLines.end())
        return;
    const Addr base = ref.addr - ref.addr % by.lineBytes();
    const auto line = it->second.find(base);
    if (line == it->second.end())
        return;  // installed before the checker attached
    ++onChipChecks;
    const Addr word_addr = ref.addr - ref.addr % bytesPerWord;
    const unsigned index = (word_addr - base) / bytesPerWord;
    const Word held = line->second[index];
    if (golden.admissible(sim.now(), word_addr, held))
        return;
    std::ostringstream os;
    os << "on-chip staleness: " << by.name() << " hit "
       << obs::hexAddr(word_addr) << " would serve "
       << obs::hexAddr(held) << " but the oracle says "
       << obs::hexAddr(golden.current(word_addr)) << " (serialized @"
       << golden.writtenAt(word_addr)
       << "); the entry should have been dropped by the bus-write "
          "repair";
    fail(word_addr, os.str());
}

// --- diagnostics ---------------------------------------------------------

std::string
CoherenceChecker::describeLine(Addr line_base) const
{
    std::ostringstream os;
    for (const Cache *cache : caches) {
        os << "\n  " << cache->name() << ": ";
        if (!cache->holds(line_base)) {
            os << "not resident";
            continue;
        }
        const CacheLine &line = cache->lineAt(line_base);
        os << toString(line.state) << " data=[";
        for (unsigned i = 0; i < cache->lineWords(); ++i)
            os << (i ? " " : "") << obs::hexAddr(line.data[i]);
        os << "]";
    }
    const unsigned words =
        caches.empty() ? 1 : caches.front()->lineWords();
    os << "\n  memory: [";
    for (unsigned i = 0; i < words; ++i) {
        os << (i ? " " : "")
           << obs::hexAddr(memory.peek(line_base + i * bytesPerWord));
    }
    os << "]\n  oracle: [";
    for (unsigned i = 0; i < words; ++i) {
        os << (i ? " " : "")
           << obs::hexAddr(golden.current(line_base + i * bytesPerWord));
    }
    os << "]";
    return os.str();
}

std::string
CoherenceChecker::replayFor(Addr line_base) const
{
    const unsigned words =
        caches.empty() ? 1 : caches.front()->lineWords();
    const Addr line_bytes = words * bytesPerWord;
    std::ostringstream os;
    os << "\n  last bus transactions touching "
       << obs::hexAddr(line_base) << ":";
    bool any = false;
    for (const TxnRecord &rec : replay) {
        const Addr rec_end = rec.addr + rec.words * bytesPerWord;
        if (rec_end <= line_base || rec.addr >= line_base + line_bytes)
            continue;
        any = true;
        os << "\n    @" << rec.when << " " << toString(rec.type) << " ("
           << toString(rec.kind) << ") " << obs::hexAddr(rec.addr)
           << " by " << rec.by << " words=" << rec.words;
        if (rec.type == MBusOpType::MWrite) {
            os << " data=[";
            for (unsigned i = 0; i < rec.words; ++i)
                os << (i ? " " : "") << obs::hexAddr(rec.data[i]);
            os << "]" << (rec.updatesMemory ? "" : " (no mem update)");
        }
        os << (rec.mshared ? " mshared" : "");
    }
    if (!any)
        os << " none in the last " << replay.size() << " recorded";
    return os.str();
}

void
CoherenceChecker::fail(Addr addr, const std::string &what)
{
    const Addr base = lineBaseOf(addr);
    std::ostringstream os;
    os << "coherence violation [" << toString(kind) << "] @"
       << sim.now() << " line " << obs::hexAddr(base) << ": " << what
       << describeLine(base) << replayFor(base);
    const std::string text = os.str();

    if (auto *ts = obs::traceSink()) {
        ts->instant(sim.now(), obs::kCatCheck, "checker", "violation",
                    {{"line", obs::hexAddr(base)}, {"what", what}});
        ts->flush();
    }

    if (cfg.throwOnViolation)
        throw CoherenceViolation(text);
    panic("%s", text.c_str());
}

} // namespace firefly::check
