#include "mbus/mbus.hh"

#include <sstream>

#include "fault/fault_injector.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

const char *
toString(MBusOpType type)
{
    switch (type) {
      case MBusOpType::MRead: return "MRead";
      case MBusOpType::MWrite: return "MWrite";
      case MBusOpType::MReadOwned: return "MReadOwned";
      case MBusOpType::MInvalidate: return "MInvalidate";
    }
    return "?";
}

const char *
toString(MBusOpKind kind)
{
    switch (kind) {
      case MBusOpKind::Fill: return "fill";
      case MBusOpKind::VictimWrite: return "victim";
      case MBusOpKind::WriteThrough: return "write-through";
      case MBusOpKind::Update: return "update";
      case MBusOpKind::Invalidate: return "invalidate";
      case MBusOpKind::DmaRead: return "dma-read";
      case MBusOpKind::DmaWrite: return "dma-write";
    }
    return "?";
}

void
MBusClient::snoopSupplyData(const MBusTransaction &, Word *)
{
    panic("snoopSupplyData called on a client that never supplies");
}

void
MBusClient::snoopComplete(const MBusTransaction &)
{
}

void
MBusClient::transactionDone(const MBusTransaction &)
{
}

void
MBusClient::refreshWriteData(MBusTransaction &)
{
}

MBus::MBus(Simulator &sim, MainMemory &memory, std::string name)
    : sim(sim), memory(memory), statGroup(std::move(name)),
      arbWaitHist(16, 2.0)
{
    sim.addClocked(this, Phase::Bus);

    statGroup.addCounter(&totalCycleCount, "cycles",
                         "bus cycles simulated");
    statGroup.addCounter(&busyCycleCount, "busy_cycles",
                         "bus cycles with a transaction in progress");
    statGroup.addFormula("load", "fraction of non-idle bus cycles",
                         [this] { return load(); });
    static const char *op_names[4] = {
        "reads", "writes", "reads_owned", "invalidates"
    };
    static const char *op_descs[4] = {
        "MRead transactions", "MWrite transactions",
        "MReadOwned transactions (baseline protocols)",
        "MInvalidate transactions (baseline protocols)"
    };
    for (int i = 0; i < 4; ++i)
        statGroup.addCounter(&opCount[i], op_names[i], op_descs[i]);
    static const char *kind_names[7] = {
        "fills", "victim_writes", "write_throughs", "updates",
        "ownership_ops", "dma_reads", "dma_writes"
    };
    for (int i = 0; i < 7; ++i) {
        statGroup.addCounter(&kindCount[i], kind_names[i],
                             "transactions by initiator purpose");
    }
    statGroup.addCounter(&msharedCount, "mshared_asserted",
                         "transactions that observed MShared");
    statGroup.addCounter(&cacheSupplyCount, "cache_supplied",
                         "reads whose data came from another cache");
    statGroup.addHistogram(&arbWaitHist, "arb_wait",
                           "cycles from request to bus grant");
}

unsigned
MBus::attach(MBusClient *client)
{
    clients.push_back(client);
    pending.emplace_back();
    return clients.size() - 1;
}

void
MBus::request(const MBusTransaction &txn)
{
    if (txn.initiator == nullptr)
        panic("MBus request without initiator");
    if (txn.addr % bytesPerWord != 0)
        panic("MBus address 0x%x not longword aligned", txn.addr);
    if (txn.words == 0 || txn.words > maxBurstWords)
        panic("MBus burst of %u words unsupported", txn.words);

    for (unsigned i = 0; i < clients.size(); ++i) {
        if (clients[i] == txn.initiator) {
            if (pending[i].has_value() ||
                (active && active->initiator == txn.initiator)) {
                panic("client %s has a transaction outstanding",
                      txn.initiator->busClientName().c_str());
            }
            pending[i] = PendingRequest{txn, sim.now()};
            if (auto *ts = obs::traceSink()) {
                ts->instant(sim.now(), obs::kCatMBus,
                            statGroup.name(), "request",
                            {{"op", toString(txn.type)},
                             {"addr", obs::hexAddr(txn.addr)},
                             {"by", txn.initiator->busClientName()}});
            }
            return;
        }
    }
    panic("MBus request from unattached client %s",
          txn.initiator->busClientName().c_str());
}

bool
MBus::busy(const MBusClient *client) const
{
    if (active && active->initiator == client)
        return true;
    for (unsigned i = 0; i < clients.size(); ++i) {
        if (clients[i] == client)
            return pending[i].has_value();
    }
    return false;
}

Cycle
MBus::nextWake(Cycle now) const
{
    if (active)
        return now;
    // Idle bus: the earliest eligible pending request is the next
    // arbitration; slots in parity-retry backoff wake at `earliest`.
    Cycle wake = kNeverWakes;
    for (const auto &slot : pending) {
        if (!slot.has_value())
            continue;
        wake = std::min(wake, std::max(slot->earliest, now));
    }
    return wake;
}

void
MBus::skipCycles(Cycle from, Cycle to)
{
    // tick() counts every cycle (idle ones are the denominator of
    // load()); credit the skipped span so stats stay bit-identical.
    totalCycleCount += to - from;
}

void
MBus::tick(Cycle now)
{
    ++totalCycleCount;

    if (!active) {
        // Arbitration: fixed priority, lowest index wins.  Slots in
        // parity-retry backoff are not eligible yet.
        for (unsigned i = 0; i < pending.size(); ++i) {
            if (!pending[i].has_value())
                continue;
            if (now < pending[i]->earliest)
                continue;
            active = pending[i]->txn;
            activeAttempt = pending[i]->attempt;
            arbWaitHist.sample(
                static_cast<double>(now - pending[i]->requested));
            pending[i].reset();
            phaseCycle = 0;
            suppliers.clear();
            ++busyCycleCount;
            sim.noteProgress();
            if (traceHook) {
                std::ostringstream os;
                os << toString(active->type) << " 0x" << std::hex
                   << active->addr << std::dec << " ("
                   << toString(active->kind) << ") by "
                   << active->initiator->busClientName();
                trace(now, "arb+addr", os.str().c_str());
            }
            if (auto *ts = obs::traceSink()) {
                // The whole transaction renders as one slice on the
                // bus track, grant (address cycle) to completion.
                ts->begin(now, obs::kCatMBus, statGroup.name(),
                          std::string(toString(active->type)) + " " +
                              obs::hexAddr(active->addr),
                          {{"kind", toString(active->kind)},
                           {"by",
                            active->initiator->busClientName()}});
            }
            return;
        }
        return;  // idle cycle
    }

    ++busyCycleCount;
    ++phaseCycle;
    sim.noteProgress();

    if (phaseCycle == 1) {
        if (active->type == MBusOpType::MWrite)
            active->initiator->refreshWriteData(*active);
        probePhase();
        trace(now, "wdata+probe",
              active->type == MBusOpType::MWrite ? "write data driven"
                                                 : "tag probe");
    } else if (phaseCycle == 2) {
        trace(now, "mshared",
              active->mshared ? "MShared asserted" : "MShared clear");
        if (active->mshared) {
            if (auto *ts = obs::traceSink()) {
                ts->instant(now, obs::kCatMBus, statGroup.name(),
                            "MShared",
                            {{"addr", obs::hexAddr(active->addr)}});
            }
        }
    } else {
        const unsigned burst = phaseCycle - 3;
        if (burst == 0 && injector &&
            injector->faultPlan().busParityError()) {
            // A parity error is detected as the data cycle begins,
            // before any word moves: no memory or cache state has
            // changed, so dropping the attempt is side-effect free.
            parityAbort(now);
            return;
        }
        dataPhase(burst);
        trace(now, "data",
              active->suppliedByCache ? "cache supplies, memory inhibited"
                                      : "memory drives/captures");
        if (burst + 1 == active->words)
            completeTransaction();
    }
}

void
MBus::probePhase()
{
    for (unsigned i = 0; i < clients.size(); ++i) {
        if (clients[i] == active->initiator)
            continue;
        const SnoopReply reply = clients[i]->snoopProbe(*active);
        if (reply.shared)
            active->mshared = true;
        if (reply.supply)
            suppliers.push_back(i);
    }
    active->suppliedByCache = !suppliers.empty();
}

void
MBus::dataPhase(unsigned burst_index)
{
    MBusTransaction &txn = *active;
    const Addr addr = txn.addr + burst_index * bytesPerWord;

    switch (txn.type) {
      case MBusOpType::MRead:
      case MBusOpType::MReadOwned:
        if (!suppliers.empty()) {
            // One or more caches drive the data; the protocol
            // guarantees they agree (checked here as an invariant).
            bool first = true;
            Word value = 0;
            std::array<Word, maxBurstWords> buf{};
            for (const unsigned idx : suppliers) {
                clients[idx]->snoopSupplyData(txn, buf.data());
                if (first) {
                    value = buf[burst_index];
                    first = false;
                } else if (buf[burst_index] != value) {
                    panic("caches disagree on read data for 0x%x "
                          "(coherence broken)", addr);
                }
            }
            txn.data[burst_index] = value;
            // The memory always captures a cache supply.  For the
            // Firefly protocol a dirty supplier relies on this to
            // become clean-shared; for clean sharers it is a no-op.
            // Protocols that keep ownership (Berkeley, Dragon) set
            // updatesMemory=false on their fills... but fills are
            // reads; they signal capture policy via txn.updatesMemory.
            if (txn.updatesMemory)
                memory.write(addr, value);
        } else {
            txn.data[burst_index] = memory.read(addr);
        }
        break;

      case MBusOpType::MWrite:
        if (txn.updatesMemory)
            memory.write(addr, txn.data[burst_index]);
        break;

      case MBusOpType::MInvalidate:
        break;  // address-only
    }
}

void
MBus::parityAbort(Cycle now)
{
    MBusTransaction txn = *active;
    active.reset();
    ++injector->parityErrors;
    const unsigned attempt = activeAttempt + 1;
    trace(now, "parity", "data parity error, transaction NACKed");
    if (auto *ts = obs::traceSink()) {
        ts->end(now, obs::kCatMBus, statGroup.name());
        ts->instant(now, obs::kCatFault, statGroup.name(),
                    "parity-nack",
                    {{"op", toString(txn.type)},
                     {"addr", obs::hexAddr(txn.addr)},
                     {"by", txn.initiator->busClientName()},
                     {"attempt", std::to_string(attempt)}});
    }
    if (attempt >= injector->config().parityRetryBudget) {
        injector->machineCheck(
            statGroup.name(),
            std::string(toString(txn.type)) + " " +
                obs::hexAddr(txn.addr) + " by " +
                txn.initiator->busClientName() +
                ": parity retry budget (" +
                std::to_string(injector->config().parityRetryBudget) +
                ") exhausted");
    }
    // Re-arm the master's slot: the transaction retries from the
    // arbitration phase after a bounded exponential backoff.  Snoop
    // results belong to the aborted attempt, so clear them; the
    // retry re-probes (and an MWrite re-drives its data).
    txn.mshared = false;
    txn.suppliedByCache = false;
    for (unsigned i = 0; i < clients.size(); ++i) {
        if (clients[i] == txn.initiator) {
            pending[i] = PendingRequest{
                txn, now, now + injector->parityBackoff(attempt),
                attempt};
            ++injector->parityRetries;
            return;
        }
    }
    panic("parity retry for unattached client %s",
          txn.initiator->busClientName().c_str());
}

void
MBus::completeTransaction()
{
    // Detach the transaction before callbacks so the initiator can
    // immediately queue a follow-on request (victim write -> fill).
    MBusTransaction txn = *active;
    active.reset();

    if (activeAttempt > 0) {
        ++injector->parityRecovered;
        if (auto *ts = obs::traceSink()) {
            ts->instant(sim.now(), obs::kCatFault, statGroup.name(),
                        "parity-recovered",
                        {{"op", toString(txn.type)},
                         {"addr", obs::hexAddr(txn.addr)},
                         {"attempts",
                          std::to_string(activeAttempt + 1)}});
        }
        activeAttempt = 0;
    }

    if (auto *ts = obs::traceSink()) {
        ts->end(sim.now(), obs::kCatMBus, statGroup.name());
        if (txn.suppliedByCache) {
            ts->instant(sim.now(), obs::kCatMBus, statGroup.name(),
                        "cache-supplied",
                        {{"addr", obs::hexAddr(txn.addr)}});
        }
    }

    ++opCount[static_cast<int>(txn.type)];
    ++kindCount[static_cast<int>(txn.kind)];
    if (txn.mshared)
        ++msharedCount;
    if (txn.suppliedByCache &&
        (txn.type == MBusOpType::MRead ||
         txn.type == MBusOpType::MReadOwned)) {
        ++cacheSupplyCount;
    }

    for (const auto &observer : commitObservers)
        observer(txn);

    if (txn.type != MBusOpType::MRead && !writeObservers.empty()) {
        for (const auto &observer : writeObservers)
            observer(txn.addr, txn.words);
    }

    for (auto *client : clients) {
        if (client != txn.initiator)
            client->snoopComplete(txn);
    }
    txn.initiator->transactionDone(txn);

    for (const auto &observer : settleObservers)
        observer(txn);
}

double
MBus::load() const
{
    const auto total = totalCycleCount.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(busyCycleCount.value()) /
           static_cast<double>(total);
}

} // namespace firefly
