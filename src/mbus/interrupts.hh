/**
 * @file
 * Interprocessor interrupts.
 *
 * The MBus "also provides facilities for system initialization and
 * interprocessor interrupts".  Topaz uses a specialised
 * interprocessor interrupt to make any processor able to start I/O on
 * the I/O processor (the network fast path described in the paper).
 * Delivery takes one bus cycle and does not occupy the data path.
 */

#ifndef FIREFLY_MBUS_INTERRUPTS_HH
#define FIREFLY_MBUS_INTERRUPTS_HH

#include <functional>
#include <vector>

#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace firefly
{

/** Broadcast/directed interprocessor interrupt fabric on the MBus. */
class InterruptController
{
  public:
    /** Handler receives the interrupting processor's index. */
    using Handler = std::function<void(unsigned source)>;

    explicit InterruptController(Simulator &sim);

    /** Register a processor slot; returns its index. */
    unsigned addTarget(Handler handler);

    /** Raise an interrupt from `source` to `target` (next cycle). */
    void raise(unsigned target, unsigned source);

    /** Raise an interrupt to every target except the source. */
    void broadcast(unsigned source);

    StatGroup &stats() { return statGroup; }

  private:
    Simulator &sim;
    std::vector<Handler> handlers;
    StatGroup statGroup;
    Counter raisedCount;
};

} // namespace firefly

#endif // FIREFLY_MBUS_INTERRUPTS_HH
