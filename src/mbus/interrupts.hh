/**
 * @file
 * Interprocessor interrupts.
 *
 * The MBus "also provides facilities for system initialization and
 * interprocessor interrupts".  Topaz uses a specialised
 * interprocessor interrupt to make any processor able to start I/O on
 * the I/O processor (the network fast path described in the paper).
 * Delivery takes one bus cycle and does not occupy the data path.
 *
 * Interrupts carry a priority.  All interrupts that arrive at a
 * target in the same delivery cycle are presented highest priority
 * first (ties in raise order), matching the VAX convention of
 * servicing the highest IPL request.  Machine checks are above every
 * maskable level and are delivered synchronously - the faulting
 * instruction cannot complete, so there is no cycle of latency to
 * model.
 */

#ifndef FIREFLY_MBUS_INTERRUPTS_HH
#define FIREFLY_MBUS_INTERRUPTS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace firefly
{

/** Interrupt priority levels, lowest first. */
enum class IrqPriority : std::uint8_t
{
    Ipi = 0,      ///< interprocessor wakeup/scheduling
    Device = 1,   ///< I/O completion
    MachineCheck = 2,  ///< unrecoverable fault (synchronous delivery)
};

const char *toString(IrqPriority prio);

/** Broadcast/directed interprocessor interrupt fabric on the MBus. */
class InterruptController
{
  public:
    /** Handler receives the interrupting processor's index. */
    using Handler = std::function<void(unsigned source)>;

    explicit InterruptController(Simulator &sim);

    /** Register a processor slot; returns its index. */
    unsigned addTarget(Handler handler);

    /**
     * Raise an interrupt from `source` to `target`.  It is delivered
     * next cycle; everything arriving at that cycle is presented
     * highest priority first.
     */
    void raise(unsigned target, unsigned source,
               IrqPriority prio = IrqPriority::Ipi);

    /** Raise an interrupt to every target except the source. */
    void broadcast(unsigned source,
                   IrqPriority prio = IrqPriority::Ipi);

    /**
     * Machine-check delivery: synchronous (the faulting access cannot
     * complete, so the handler runs now, not next cycle) and
     * non-maskable.  The fault injector's machine-check hook routes
     * here so a machine check is architecturally visible before the
     * simulation aborts or unwinds.
     */
    using MachineCheckHandler =
        std::function<void(const std::string &unit,
                           const std::string &diagnostic)>;
    void
    setMachineCheckHandler(MachineCheckHandler handler)
    {
        mcHandler = std::move(handler);
    }
    void raiseMachineCheck(const std::string &unit,
                           const std::string &diagnostic);

    StatGroup &stats() { return statGroup; }

  private:
    struct PendingIrq
    {
        unsigned target;
        unsigned source;
        IrqPriority prio;
    };

    void drain(Cycle when);

    Simulator &sim;
    std::vector<Handler> handlers;
    /** Interrupts batched by delivery cycle; one drain event is
     *  scheduled per batch so same-cycle arrivals can be priority
     *  sorted before any handler runs. */
    std::map<Cycle, std::vector<PendingIrq>> batches;
    MachineCheckHandler mcHandler;

    StatGroup statGroup;
    Counter raisedCount;
    Counter machineCheckCount;
};

} // namespace firefly

#endif // FIREFLY_MBUS_INTERRUPTS_HH
