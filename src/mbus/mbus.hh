/**
 * @file
 * The Firefly MBus.
 *
 * The MBus is a synchronous bus with two operations, MRead and
 * MWrite, each taking four 100 ns cycles (paper Figure 4):
 *
 *   cycle 0: arbitration; the winner places address and operation
 *   cycle 1: write data (MWrite); all other caches probe their tags
 *   cycle 2: caches holding the line assert the wired-OR MShared
 *   cycle 3: data transfer; on MRead, if MShared was asserted the
 *            sharing caches supply the data and main memory is
 *            inhibited (but captures a dirty supply, keeping memory
 *            consistent with clean-shared copies)
 *
 * One transfer completes every 400 ns, i.e. 10 MB/s peak with 4-byte
 * transfers.  Arbitration is fixed priority (the paper notes this
 * favours high-priority caches).  Burst transfers of more than one
 * longword (+1 cycle per extra word) are an extension used only by
 * the line-size ablation; the real machine always moved one longword.
 *
 * The baseline coherence protocols need two bus operations the real
 * MBus did not have: MReadOwned (read with intent to modify) and
 * MInvalidate (address-only).  They use the same 4-cycle timing.
 */

#ifndef FIREFLY_MBUS_MBUS_HH
#define FIREFLY_MBUS_MBUS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mem/main_memory.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace firefly
{

namespace fault
{
class FaultInjector;
}

class MBusClient;

/** Operation as seen on the bus wires. */
enum class MBusOpType : std::uint8_t
{
    MRead,
    MWrite,
    MReadOwned,   ///< extension for invalidation protocols
    MInvalidate,  ///< extension for invalidation protocols
};

/** Why the initiator issued the operation (statistics only). */
enum class MBusOpKind : std::uint8_t
{
    Fill,          ///< read to service a cache miss
    VictimWrite,   ///< write-back of a dirty victim
    WriteThrough,  ///< Firefly conditional write-through / WTI write
    Update,        ///< Dragon cache-to-cache update (no memory write)
    Invalidate,    ///< ownership acquisition
    DmaRead,
    DmaWrite,
};

const char *toString(MBusOpType type);
const char *toString(MBusOpKind kind);

/** Longest supported burst (line-size ablation: 32-byte lines). */
constexpr unsigned maxBurstWords = 8;

/** One bus transaction, in flight or completed. */
struct MBusTransaction
{
    MBusOpType type = MBusOpType::MRead;
    MBusOpKind kind = MBusOpKind::Fill;
    Addr addr = 0;            ///< byte address, longword aligned
    unsigned words = 1;       ///< burst length in longwords
    std::array<Word, maxBurstWords> data{};  ///< write data / read result
    bool updatesMemory = true;  ///< MWrite: memory captures the data
    MBusClient *initiator = nullptr;

    // Results, valid from the MShared cycle onwards:
    bool mshared = false;        ///< wired-OR of snoop hits
    bool suppliedByCache = false; ///< a cache drove the read data
};

/** Snoop response gathered in the probe cycle. */
struct SnoopReply
{
    bool shared = false;  ///< assert MShared
    bool supply = false;  ///< will drive read data in the data cycle
};

/** Interface every bus agent (cache, DMA engine) implements. */
class MBusClient
{
  public:
    virtual ~MBusClient() = default;

    /** Name for traces and stats. */
    virtual std::string busClientName() const = 0;

    /**
     * Tag probe for another agent's transaction (cycle 1).  Must not
     * mutate coherence state; state changes belong in snoopComplete.
     */
    virtual SnoopReply snoopProbe(const MBusTransaction &txn) = 0;

    /**
     * Drive read data (cycle 3); called only if snoopProbe returned
     * supply.  Writes `txn.words` longwords to `out`.
     */
    virtual void snoopSupplyData(const MBusTransaction &txn, Word *out);

    /**
     * Transaction committed (end of cycle 3); snoopers apply state
     * changes (update copies on MWrite, invalidate, Dirty->Shared...).
     */
    virtual void snoopComplete(const MBusTransaction &txn);

    /** Initiator callback: the transaction finished. */
    virtual void transactionDone(const MBusTransaction &txn);

    /**
     * Initiator callback at the write-data cycle (cycle 1) of an
     * MWrite: re-drive `txn.data` from current state.  A real bus
     * master drives its data lines in this cycle, not at request
     * time, so data that changed while the request waited for the
     * bus (a snooped DMA write merging into a queued victim line)
     * must be reflected here.  May clear `txn.updatesMemory` to
     * squash the memory update entirely (the line was invalidated
     * while the write-back waited).  Default: keep the request-time
     * data.
     */
    virtual void refreshWriteData(MBusTransaction &txn);
};

/** The bus proper: arbitration + 4-phase transaction engine. */
class MBus : public Clocked
{
  public:
    MBus(Simulator &sim, MainMemory &memory, std::string name = "mbus");

    /**
     * Attach a client.  Attachment order is arbitration priority:
     * earlier clients win ties (the real Firefly used fixed priority).
     * @return the client's priority index.
     */
    unsigned attach(MBusClient *client);

    /**
     * Request a transaction.  A client may have at most one pending
     * or active transaction; violating that is a simulator bug.
     */
    void request(const MBusTransaction &txn);

    /** True if this client has a pending or active transaction. */
    bool busy(const MBusClient *client) const;

    void tick(Cycle now) override;
    Cycle nextWake(Cycle now) const override;
    void skipCycles(Cycle from, Cycle to) override;

    /** The storage system behind the bus (for functional access). */
    MainMemory &memorySystem() { return memory; }

    /**
     * Attach the fault injector (nullptr detaches).  With one
     * attached, transactions can be NACKed for parity as they enter
     * the data cycle - before any side effect - and the master
     * retries with bounded exponential backoff; exhausting the retry
     * budget raises a machine check.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector = inj; }

    // --- observability ------------------------------------------------
    /** Fraction of non-idle bus cycles since construction/reset. */
    double load() const;
    Cycle busyCycles() const { return busyCycleCount.value(); }
    Cycle totalCycles() const { return totalCycleCount.value(); }
    StatGroup &stats() { return statGroup; }

    /**
     * Cycle-by-cycle trace hook for the Figure 4 bench: receives
     * (cycle, phase-name, detail) while enabled.
     */
    using TraceHook =
        std::function<void(Cycle, const std::string &, const std::string &)>;
    void setTraceHook(TraceHook hook) { traceHook = std::move(hook); }

    /**
     * Observe every committed write-class transaction (MWrite,
     * MReadOwned, MInvalidate).  Non-snooping structures - the CVAX
     * on-chip cache model - use this to detect would-be staleness.
     */
    using WriteObserver = std::function<void(Addr, unsigned words)>;
    void
    addWriteObserver(WriteObserver observer)
    {
        writeObservers.push_back(std::move(observer));
    }

    /**
     * Observe every transaction at two points of its completion
     * cycle.  Commit observers run first, before any snoopComplete/
     * transactionDone callback: this is the serialization instant,
     * where the coherence checker's oracle learns bus-written values
     * (a completion callback can synchronously start validating the
     * next queued access).  Settle observers run last, after every
     * callback has applied its state changes: this is where the
     * invariant scanner sees a quiescent machine.
     */
    using TxnObserver = std::function<void(const MBusTransaction &)>;
    void
    addCommitObserver(TxnObserver observer)
    {
        commitObservers.push_back(std::move(observer));
    }

    void
    addSettleObserver(TxnObserver observer)
    {
        settleObservers.push_back(std::move(observer));
    }

  private:
    struct PendingRequest
    {
        MBusTransaction txn;
        Cycle requested;
        /** Not eligible for arbitration before this cycle (parity
         *  retry backoff). */
        Cycle earliest = 0;
        /** Completed attempts that were NACKed for parity. */
        unsigned attempt = 0;
    };

    void beginTransaction(Cycle now);
    void probePhase();
    void dataPhase(unsigned burst_index);
    void completeTransaction();
    /** Parity NACK: drop the attempt (no side effects have happened
     *  yet) and re-arm the master's slot for a backed-off retry. */
    void parityAbort(Cycle now);
    /** const char* so call sites build no std::string temporaries on
     *  the (usual) no-hook path; the hook still receives strings.
     *  Inline guard: several calls per bus cycle, hook almost never
     *  attached outside the Figure 4 bench. */
    void
    trace(Cycle now, const char *phase, const char *detail)
    {
        if (traceHook)
            traceHook(now, phase, detail);
    }

    Simulator &sim;
    MainMemory &memory;

    std::vector<MBusClient *> clients;
    /** One pending slot per client, indexed by priority. */
    std::vector<std::optional<PendingRequest>> pending;

    /** Active transaction state. */
    std::optional<MBusTransaction> active;
    unsigned phaseCycle = 0;
    unsigned activeAttempt = 0;       ///< parity NACKs already taken
    std::vector<unsigned> suppliers;  ///< client indices driving data

    fault::FaultInjector *injector = nullptr;

    TraceHook traceHook;
    std::vector<WriteObserver> writeObservers;
    std::vector<TxnObserver> commitObservers;
    std::vector<TxnObserver> settleObservers;

    // --- statistics ---------------------------------------------------
    StatGroup statGroup;
    Counter totalCycleCount;
    Counter busyCycleCount;
    Counter opCount[4];
    Counter kindCount[7];
    Counter msharedCount;
    Counter cacheSupplyCount;
    Histogram arbWaitHist;
};

} // namespace firefly

#endif // FIREFLY_MBUS_MBUS_HH
