#include "mbus/interrupts.hh"

#include "sim/logging.hh"

namespace firefly
{

InterruptController::InterruptController(Simulator &sim)
    : sim(sim), statGroup("interrupts")
{
    statGroup.addCounter(&raisedCount, "raised",
                         "interprocessor interrupts delivered");
}

unsigned
InterruptController::addTarget(Handler handler)
{
    handlers.push_back(std::move(handler));
    return handlers.size() - 1;
}

void
InterruptController::raise(unsigned target, unsigned source)
{
    if (target >= handlers.size())
        panic("interrupt to unknown target %u", target);
    ++raisedCount;
    sim.events().schedule(sim.now() + 1, [this, target, source] {
        handlers[target](source);
    });
}

void
InterruptController::broadcast(unsigned source)
{
    for (unsigned i = 0; i < handlers.size(); ++i) {
        if (i != source)
            raise(i, source);
    }
}

} // namespace firefly
