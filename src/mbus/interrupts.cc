#include "mbus/interrupts.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace firefly
{

const char *
toString(IrqPriority prio)
{
    switch (prio) {
      case IrqPriority::Ipi: return "ipi";
      case IrqPriority::Device: return "device";
      case IrqPriority::MachineCheck: return "machine-check";
    }
    return "?";
}

InterruptController::InterruptController(Simulator &sim)
    : sim(sim), statGroup("interrupts")
{
    statGroup.addCounter(&raisedCount, "raised",
                         "interprocessor interrupts delivered");
    statGroup.addCounter(&machineCheckCount, "machine_checks",
                         "machine checks delivered");
}

unsigned
InterruptController::addTarget(Handler handler)
{
    handlers.push_back(std::move(handler));
    return handlers.size() - 1;
}

void
InterruptController::raise(unsigned target, unsigned source,
                           IrqPriority prio)
{
    if (target >= handlers.size())
        panic("interrupt to unknown target %u", target);
    ++raisedCount;
    const Cycle when = sim.now() + 1;
    auto [it, fresh] = batches.try_emplace(when);
    it->second.push_back({target, source, prio});
    if (fresh) {
        // First arrival for this cycle schedules the single drain
        // event; later raises for the same cycle join the batch.
        sim.events().schedule(
            when, [this, when] { drain(when); }, "irq delivery");
    }
}

void
InterruptController::drain(Cycle when)
{
    auto it = batches.find(when);
    if (it == batches.end())
        panic("interrupt drain for cycle %llu without a batch",
              static_cast<unsigned long long>(when));
    // Move the batch out first: a handler may raise new interrupts
    // (for a later cycle - `when` has already fired its drain).
    std::vector<PendingIrq> batch = std::move(it->second);
    batches.erase(it);
    // Present highest priority first; stable so equal-priority
    // interrupts keep raise order (deterministic).
    std::stable_sort(batch.begin(), batch.end(),
                     [](const PendingIrq &a, const PendingIrq &b) {
                         return static_cast<int>(a.prio) >
                                static_cast<int>(b.prio);
                     });
    for (const PendingIrq &irq : batch)
        handlers[irq.target](irq.source);
}

void
InterruptController::broadcast(unsigned source, IrqPriority prio)
{
    for (unsigned i = 0; i < handlers.size(); ++i) {
        if (i != source)
            raise(i, source, prio);
    }
}

void
InterruptController::raiseMachineCheck(const std::string &unit,
                                       const std::string &diagnostic)
{
    ++machineCheckCount;
    warn("machine check [%s]: %s", unit.c_str(), diagnostic.c_str());
    if (mcHandler)
        mcHandler(unit, diagnostic);
}

} // namespace firefly
