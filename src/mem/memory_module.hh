/**
 * @file
 * One Firefly storage module.
 *
 * The original machine packaged memory as one master 4 MB module plus
 * up to three 4 MB slaves; the CVAX version uses 32 MB modules (up to
 * four, 128 MB total).  A module owns a contiguous physical range and
 * counts its own traffic.
 */

#ifndef FIREFLY_MEM_MEMORY_MODULE_HH
#define FIREFLY_MEM_MEMORY_MODULE_HH

#include <string>

#include "mem/sparse_memory.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace firefly
{

namespace fault
{
class FaultInjector;
}

/** A contiguous memory module on the MBus. */
class MemoryModule
{
  public:
    /**
     * @param name        stat name, e.g. "mem0".
     * @param base        byte address of the first location.
     * @param size_bytes  module capacity in bytes.
     * @param master      true for the master module (drives MBus
     *                    refresh/init; informational only here).
     */
    MemoryModule(std::string name, Addr base, Addr size_bytes,
                 bool master);

    bool contains(Addr byte_addr) const;

    Word read(Addr byte_addr);
    void write(Addr byte_addr, Word value);
    /** Functional read that does not count as module traffic. */
    Word peek(Addr byte_addr) const;

    Addr base() const { return _base; }
    Addr sizeBytes() const { return _sizeBytes; }
    bool isMaster() const { return master; }

    StatGroup &stats() { return statGroup; }

    /**
     * Attach the fault injector (nullptr detaches).  Timed reads then
     * model the module's ECC logic: single-bit errors are corrected
     * on the way out (and scrubbed, so they never become visible);
     * double-bit errors are detected but uncorrectable and raise a
     * machine check.  Functional peeks never touch the ECC model.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector = inj; }

  private:
    Addr toWordIndex(Addr byte_addr) const;

    fault::FaultInjector *injector = nullptr;

    Addr _base;
    Addr _sizeBytes;
    bool master;
    SparseMemory storage;

    StatGroup statGroup;
    Counter readCount;
    Counter writeCount;
};

} // namespace firefly

#endif // FIREFLY_MEM_MEMORY_MODULE_HH
