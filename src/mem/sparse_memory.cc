#include "mem/sparse_memory.hh"

#include <cstring>

#include "sim/logging.hh"

namespace firefly
{

SparseMemory::SparseMemory(Addr size_words)
    : _sizeWords(size_words)
{
}

void
SparseMemory::checkBounds(Addr word_addr) const
{
    if (word_addr >= _sizeWords) {
        panic("memory access beyond end: word 0x%x of 0x%x",
              word_addr, _sizeWords);
    }
}

Word
SparseMemory::read(Addr word_addr) const
{
    checkBounds(word_addr);
    const Addr chunk = word_addr / chunkWords;
    const auto it = chunks.find(chunk);
    if (it == chunks.end())
        return 0;
    return it->second[word_addr % chunkWords];
}

void
SparseMemory::write(Addr word_addr, Word value)
{
    checkBounds(word_addr);
    const Addr chunk = word_addr / chunkWords;
    auto it = chunks.find(chunk);
    if (it == chunks.end()) {
        auto storage = std::make_unique<Word[]>(chunkWords);
        std::memset(storage.get(), 0, chunkWords * sizeof(Word));
        it = chunks.emplace(chunk, std::move(storage)).first;
    }
    it->second[word_addr % chunkWords] = value;
}

} // namespace firefly
