#include "mem/main_memory.hh"

#include "sim/logging.hh"

namespace firefly
{

MainMemory::MainMemory(std::string name)
    : statGroup(std::move(name))
{
}

MemoryModule &
MainMemory::addModule(Addr size_bytes)
{
    auto module = std::make_unique<MemoryModule>(
        "mem" + std::to_string(modules.size()), nextBase, size_bytes,
        modules.empty());
    nextBase += size_bytes;
    statGroup.addChild(&module->stats());
    modules.push_back(std::move(module));
    return *modules.back();
}

bool
MainMemory::contains(Addr byte_addr) const
{
    return byte_addr < nextBase;
}

MemoryModule &
MainMemory::decode(Addr byte_addr)
{
    for (auto &module : modules) {
        if (module->contains(byte_addr))
            return *module;
    }
    panic("physical address 0x%x has no storage module (installed "
          "0x%x bytes)", byte_addr, nextBase);
}

const MemoryModule &
MainMemory::decode(Addr byte_addr) const
{
    return const_cast<MainMemory *>(this)->decode(byte_addr);
}

Word
MainMemory::read(Addr byte_addr)
{
    return decode(byte_addr).read(byte_addr);
}

Word
MainMemory::peek(Addr byte_addr) const
{
    return decode(byte_addr).peek(byte_addr);
}

void
MainMemory::write(Addr byte_addr, Word value)
{
    decode(byte_addr).write(byte_addr, value);
}

} // namespace firefly
