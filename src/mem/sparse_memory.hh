/**
 * @file
 * Sparse word-addressable backing store.
 *
 * A CVAX Firefly can have 128 MB of physical memory; workloads touch
 * only a fraction of it, so the backing store allocates fixed-size
 * chunks lazily.  Unwritten memory reads as zero, matching
 * initialised DRAM after the MBus init sequence.
 */

#ifndef FIREFLY_MEM_SPARSE_MEMORY_HH
#define FIREFLY_MEM_SPARSE_MEMORY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace firefly
{

/** Lazily allocated array of 32-bit words indexed by word address. */
class SparseMemory
{
  public:
    /** @param size_words capacity; accesses beyond it panic. */
    explicit SparseMemory(Addr size_words);

    Word read(Addr word_addr) const;
    void write(Addr word_addr, Word value);

    Addr sizeWords() const { return _sizeWords; }

    /** Number of chunks actually allocated (for tests). */
    std::size_t allocatedChunks() const { return chunks.size(); }

  private:
    static constexpr Addr chunkWords = 16384; // 64 KB chunks

    void checkBounds(Addr word_addr) const;

    Addr _sizeWords;
    mutable std::unordered_map<Addr, std::unique_ptr<Word[]>> chunks;
};

} // namespace firefly

#endif // FIREFLY_MEM_SPARSE_MEMORY_HH
