#include "mem/memory_module.hh"

#include "sim/logging.hh"

namespace firefly
{

MemoryModule::MemoryModule(std::string name, Addr base, Addr size_bytes,
                           bool master)
    : _base(base), _sizeBytes(size_bytes), master(master),
      storage(size_bytes / bytesPerWord), statGroup(std::move(name))
{
    if (base % bytesPerWord != 0 || size_bytes % bytesPerWord != 0)
        fatal("memory module must be longword aligned");
    statGroup.addCounter(&readCount, "reads",
                         "longword reads served by this module");
    statGroup.addCounter(&writeCount, "writes",
                         "longword writes captured by this module");
}

bool
MemoryModule::contains(Addr byte_addr) const
{
    return byte_addr >= _base && byte_addr - _base < _sizeBytes;
}

Addr
MemoryModule::toWordIndex(Addr byte_addr) const
{
    if (!contains(byte_addr))
        panic("address 0x%x outside module at 0x%x", byte_addr, _base);
    return (byte_addr - _base) / bytesPerWord;
}

Word
MemoryModule::read(Addr byte_addr)
{
    ++readCount;
    return storage.read(toWordIndex(byte_addr));
}

void
MemoryModule::write(Addr byte_addr, Word value)
{
    ++writeCount;
    storage.write(toWordIndex(byte_addr), value);
}

Word
MemoryModule::peek(Addr byte_addr) const
{
    return storage.read(toWordIndex(byte_addr));
}

} // namespace firefly
