#include "mem/memory_module.hh"

#include "fault/fault_injector.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

MemoryModule::MemoryModule(std::string name, Addr base, Addr size_bytes,
                           bool master)
    : _base(base), _sizeBytes(size_bytes), master(master),
      storage(size_bytes / bytesPerWord), statGroup(std::move(name))
{
    if (base % bytesPerWord != 0 || size_bytes % bytesPerWord != 0)
        fatal("memory module must be longword aligned");
    statGroup.addCounter(&readCount, "reads",
                         "longword reads served by this module");
    statGroup.addCounter(&writeCount, "writes",
                         "longword writes captured by this module");
}

bool
MemoryModule::contains(Addr byte_addr) const
{
    return byte_addr >= _base && byte_addr - _base < _sizeBytes;
}

Addr
MemoryModule::toWordIndex(Addr byte_addr) const
{
    if (!contains(byte_addr))
        panic("address 0x%x outside module at 0x%x", byte_addr, _base);
    return (byte_addr - _base) / bytesPerWord;
}

Word
MemoryModule::read(Addr byte_addr)
{
    ++readCount;
    if (injector) {
        using Ecc = fault::FaultPlan::EccOutcome;
        switch (injector->faultPlan().eccOnRead(byte_addr)) {
          case Ecc::Ok:
            break;
          case Ecc::Corrected:
            // Single-bit flip: the ECC logic corrects the word on
            // the way out and scrubs the array, so the flip never
            // becomes architecturally visible - only logged.
            ++injector->eccCorrected;
            if (auto *ts = obs::traceSink()) {
                ts->instant(obs::traceNow(), obs::kCatFault,
                            statGroup.name(), "ecc-corrected",
                            {{"addr", obs::hexAddr(byte_addr)}});
            }
            break;
          case Ecc::Uncorrectable:
            ++injector->eccUncorrectable;
            injector->machineCheck(
                statGroup.name(),
                "uncorrectable (double-bit) ECC error reading " +
                    obs::hexAddr(byte_addr));
        }
    }
    return storage.read(toWordIndex(byte_addr));
}

void
MemoryModule::write(Addr byte_addr, Word value)
{
    ++writeCount;
    storage.write(toWordIndex(byte_addr), value);
}

Word
MemoryModule::peek(Addr byte_addr) const
{
    return storage.read(toWordIndex(byte_addr));
}

} // namespace firefly
