/**
 * @file
 * The complete main storage system: address decode across modules.
 */

#ifndef FIREFLY_MEM_MAIN_MEMORY_HH
#define FIREFLY_MEM_MAIN_MEMORY_HH

#include <memory>
#include <vector>

#include "mem/memory_module.hh"

namespace firefly
{

/** Decodes physical addresses across the installed storage modules. */
class MainMemory
{
  public:
    explicit MainMemory(std::string name = "memory");

    /**
     * Install a module of `size_bytes` immediately after the last one.
     * The first module installed is the master.
     * @return the new module.
     */
    MemoryModule &addModule(Addr size_bytes);

    /** Total installed bytes. */
    Addr sizeBytes() const { return nextBase; }

    /** True if the byte address decodes to an installed module. */
    bool contains(Addr byte_addr) const;

    Word read(Addr byte_addr);
    void write(Addr byte_addr, Word value);
    /**
     * Functional read that bypasses the traffic counters.  The
     * coherence checker compares cached data against memory after
     * every bus transaction; counting those reads would perturb the
     * module statistics the benches report.
     */
    Word peek(Addr byte_addr) const;

    unsigned moduleCount() const { return modules.size(); }
    MemoryModule &module(unsigned i) { return *modules.at(i); }

    /** Attach the fault injector to every installed module (call
     *  after the last addModule). */
    void
    setFaultInjector(fault::FaultInjector *inj)
    {
        for (auto &m : modules)
            m->setFaultInjector(inj);
    }

    StatGroup &stats() { return statGroup; }

  private:
    MemoryModule &decode(Addr byte_addr);
    const MemoryModule &decode(Addr byte_addr) const;

    std::vector<std::unique_ptr<MemoryModule>> modules;
    Addr nextBase = 0;
    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_MEM_MAIN_MEMORY_HH
