/**
 * @file
 * Reference-trace recording and replay.
 *
 * The paper's own methodology: "Trace-driven simulation of the
 * MicroVAX CPU, carried out for us by Deborrah Zukowski... showed it
 * to be an 11.9 tick-per-instruction implementation" - processor
 * characterisation came from captured reference traces.  This module
 * provides the equivalent plumbing: any RefSource can be recorded to
 * a compact binary trace file, and a trace file can drive a
 * processor again (exactly reproducible workloads, cross-machine
 * what-if runs, corpus distribution).
 *
 * File format (little-endian):
 *   16-byte header: magic "FFTR", version u32, record count u64
 *   then per record 8 bytes:
 *     u32 addr | u32 (type in bits 0..1, payload in bits 2..31)
 *   where type 0/1/2 = I-read/D-read/D-write with payload = write
 *   value (truncated to 30 bits), and type 3 = compute with payload
 *   = tick count.
 */

#ifndef FIREFLY_TRACE_TRACE_HH
#define FIREFLY_TRACE_TRACE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/ref_source.hh"

namespace firefly
{

/** One trace entry: a reference or a compute gap. */
struct TraceRecord
{
    enum class Kind : std::uint8_t
    {
        InstrRead = 0,
        DataRead = 1,
        DataWrite = 2,
        Compute = 3,
    };

    Kind kind = Kind::Compute;
    Addr addr = 0;           ///< for references
    std::uint32_t payload = 0;  ///< write value or compute ticks

    static TraceRecord fromStep(const CpuStep &step);
    CpuStep toStep() const;
};

/** Writes trace records to a binary file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &record);
    std::uint64_t recordCount() const { return count; }

    /** Flush and finalise the header.  Implied by destruction. */
    void close();

  private:
    std::FILE *file;
    std::uint64_t count = 0;
};

/** Reads a trace file into memory. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    const std::vector<TraceRecord> &records() const { return _records; }

  private:
    std::vector<TraceRecord> _records;
};

/**
 * Tees another RefSource to a trace file while passing its steps
 * through unchanged (records everything up to the Halt).
 */
class RecordingSource : public RefSource
{
  public:
    RecordingSource(RefSource &inner, const std::string &path);

    CpuStep next() override;
    void onRefCompleted(const MemRef &ref, Word data) override;
    std::uint64_t instructionsCompleted() const override;

    TraceWriter &writer() { return _writer; }

  private:
    RefSource &inner;
    TraceWriter _writer;
};

/** Replays a trace file as a processor workload. */
class ReplaySource : public RefSource
{
  public:
    /** @param repeat  number of passes over the trace (0 = forever). */
    explicit ReplaySource(const std::string &path, unsigned repeat = 1);

    CpuStep next() override;
    std::uint64_t instructionsCompleted() const override;

  private:
    TraceReader reader;
    std::size_t pos = 0;
    unsigned remainingPasses;
    bool forever;
    std::uint64_t instructions = 0;
};

} // namespace firefly

#endif // FIREFLY_TRACE_TRACE_HH
