#include "trace/trace.hh"

#include <cstring>

#include "sim/logging.hh"

namespace firefly
{

namespace
{

constexpr char traceMagic[4] = {'F', 'F', 'T', 'R'};
constexpr std::uint32_t traceVersion = 1;

struct TraceHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};

std::uint64_t
packRecord(const TraceRecord &record)
{
    const std::uint32_t meta =
        (static_cast<std::uint32_t>(record.kind) & 0x3u) |
        (record.payload << 2);
    return static_cast<std::uint64_t>(record.addr) |
           (static_cast<std::uint64_t>(meta) << 32);
}

TraceRecord
unpackRecord(std::uint64_t packed)
{
    TraceRecord record;
    record.addr = static_cast<Addr>(packed & 0xffffffffu);
    const auto meta = static_cast<std::uint32_t>(packed >> 32);
    record.kind = static_cast<TraceRecord::Kind>(meta & 0x3u);
    record.payload = meta >> 2;
    return record;
}

} // namespace

TraceRecord
TraceRecord::fromStep(const CpuStep &step)
{
    TraceRecord record;
    switch (step.kind) {
      case CpuStep::Kind::Compute:
        record.kind = Kind::Compute;
        record.payload = step.ticks & 0x3fffffffu;
        break;
      case CpuStep::Kind::Ref:
        record.addr = step.ref.addr;
        record.payload = step.ref.value & 0x3fffffffu;
        switch (step.ref.type) {
          case RefType::InstrRead:
            record.kind = Kind::InstrRead;
            break;
          case RefType::DataRead:
            record.kind = Kind::DataRead;
            break;
          case RefType::DataWrite:
            record.kind = Kind::DataWrite;
            break;
        }
        break;
      case CpuStep::Kind::Halt:
        panic("halts are not recorded in traces");
    }
    return record;
}

CpuStep
TraceRecord::toStep() const
{
    switch (kind) {
      case Kind::Compute:
        return CpuStep::makeCompute(payload);
      case Kind::InstrRead:
        return CpuStep::makeRef({addr, RefType::InstrRead, 0});
      case Kind::DataRead:
        return CpuStep::makeRef({addr, RefType::DataRead, 0});
      case Kind::DataWrite:
        return CpuStep::makeRef({addr, RefType::DataWrite, payload});
    }
    panic("corrupt trace record");
}

TraceWriter::TraceWriter(const std::string &path)
    : file(std::fopen(path.c_str(), "wb"))
{
    if (!file)
        fatal("cannot create trace file '%s'", path.c_str());
    TraceHeader header{};
    std::memcpy(header.magic, traceMagic, 4);
    header.version = traceVersion;
    header.count = 0;
    if (std::fwrite(&header, sizeof(header), 1, file) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const TraceRecord &record)
{
    if (!file)
        panic("append to a closed trace");
    const std::uint64_t packed = packRecord(record);
    if (std::fwrite(&packed, sizeof(packed), 1, file) != 1)
        fatal("trace write failed");
    ++count;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    // Rewrite the header with the final record count.
    TraceHeader header{};
    std::memcpy(header.magic, traceMagic, 4);
    header.version = traceVersion;
    header.count = count;
    std::fseek(file, 0, SEEK_SET);
    if (std::fwrite(&header, sizeof(header), 1, file) != 1)
        fatal("trace header rewrite failed");
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    TraceHeader header{};
    if (std::fread(&header, sizeof(header), 1, file) != 1 ||
        std::memcmp(header.magic, traceMagic, 4) != 0) {
        std::fclose(file);
        fatal("'%s' is not a Firefly trace", path.c_str());
    }
    if (header.version != traceVersion) {
        std::fclose(file);
        fatal("trace version %u unsupported", header.version);
    }
    _records.reserve(header.count);
    for (std::uint64_t i = 0; i < header.count; ++i) {
        std::uint64_t packed = 0;
        if (std::fread(&packed, sizeof(packed), 1, file) != 1) {
            std::fclose(file);
            fatal("trace '%s' truncated at record %llu", path.c_str(),
                  static_cast<unsigned long long>(i));
        }
        _records.push_back(unpackRecord(packed));
    }
    std::fclose(file);
}

RecordingSource::RecordingSource(RefSource &inner,
                                 const std::string &path)
    : inner(inner), _writer(path)
{
}

CpuStep
RecordingSource::next()
{
    const CpuStep step = inner.next();
    if (step.kind != CpuStep::Kind::Halt)
        _writer.append(TraceRecord::fromStep(step));
    else
        _writer.close();
    return step;
}

void
RecordingSource::onRefCompleted(const MemRef &ref, Word data)
{
    inner.onRefCompleted(ref, data);
}

std::uint64_t
RecordingSource::instructionsCompleted() const
{
    return inner.instructionsCompleted();
}

ReplaySource::ReplaySource(const std::string &path, unsigned repeat)
    : reader(path), remainingPasses(repeat), forever(repeat == 0)
{
}

CpuStep
ReplaySource::next()
{
    const auto &records = reader.records();
    if (records.empty())
        return CpuStep::makeHalt();
    if (pos >= records.size()) {
        if (!forever) {
            if (remainingPasses <= 1)
                return CpuStep::makeHalt();  // and stays halted
            --remainingPasses;
        }
        pos = 0;
    }
    const TraceRecord &record = records[pos++];
    if (record.kind == TraceRecord::Kind::InstrRead)
        ++instructions;  // approximate: one instruction per I-fetch
    return record.toStep();
}

std::uint64_t
ReplaySource::instructionsCompleted() const
{
    return instructions;
}

} // namespace firefly
