#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace firefly
{

namespace
{

std::set<std::string> debugFlags;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setDebugFlag(const std::string &flag, bool enable)
{
    if (enable)
        debugFlags.insert(flag);
    else
        debugFlags.erase(flag);
}

bool
debugFlagSet(const std::string &flag)
{
    return debugFlags.count(flag) != 0;
}

void
debugPrintf(const std::string &flag, const char *fmt, ...)
{
    std::fprintf(stderr, "[%s] ", flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
}

} // namespace firefly
