#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <set>

namespace firefly
{

namespace
{

std::set<std::string> debugFlags;
bool envParsed = false;

/** Insert each nonempty comma-separated token of `list`. */
void
insertFlagList(const std::string &list)
{
    std::string::size_type start = 0;
    while (start <= list.size()) {
        auto end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        if (end > start)
            debugFlags.insert(list.substr(start, end - start));
        start = end + 1;
    }
}

/** Fold FIREFLY_DEBUG into the flag set, once, at first use. */
void
ensureEnvParsed()
{
    if (envParsed)
        return;
    envParsed = true;
    if (const char *env = std::getenv("FIREFLY_DEBUG"))
        insertFlagList(env);
}

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setDebugFlag(const std::string &flag, bool enable)
{
    ensureEnvParsed();
    if (enable)
        debugFlags.insert(flag);
    else
        debugFlags.erase(flag);
}

void
setDebugFlags(const std::string &comma_list)
{
    ensureEnvParsed();
    insertFlagList(comma_list);
}

bool
debugFlagSet(const std::string &flag)
{
    ensureEnvParsed();
    return debugFlags.count(flag) != 0;
}

bool
anyDebugFlagsSet()
{
    ensureEnvParsed();
    return !debugFlags.empty();
}

void
resetDebugFlagsForTest()
{
    debugFlags.clear();
    envParsed = false;
}

void
debugPrintf(const std::string &flag, const char *fmt, ...)
{
    std::fprintf(stderr, "[%s] ", flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
}

} // namespace firefly
