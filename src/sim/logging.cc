#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace firefly
{

namespace
{

// The flag registry is shared by every simulation thread (harness
// workers run whole simulators concurrently), so it is guarded by a
// mutex.  The common case - no flags enabled - never takes the lock:
// flagCount mirrors the set's size (-1 until FIREFLY_DEBUG has been
// folded in) and DPRINTF sites bail out on the atomic load alone.
std::mutex flagMutex;
std::set<std::string> debugFlags;           // guarded by flagMutex
bool envParsed = false;                     // guarded by flagMutex
std::atomic<int> flagCount{-1};

/** Insert each nonempty comma-separated token of `list`. */
void
insertFlagList(const std::string &list)
{
    std::string::size_type start = 0;
    while (start <= list.size()) {
        auto end = list.find(',', start);
        if (end == std::string::npos)
            end = list.size();
        if (end > start)
            debugFlags.insert(list.substr(start, end - start));
        start = end + 1;
    }
}

/** Fold FIREFLY_DEBUG into the flag set, once, at first use. */
void
ensureEnvParsedLocked()
{
    if (envParsed)
        return;
    envParsed = true;
    if (const char *env = std::getenv("FIREFLY_DEBUG"))
        insertFlagList(env);
}

/** Publish the set's size for the lock-free fast path. */
void
publishFlagCountLocked()
{
    flagCount.store(static_cast<int>(debugFlags.size()),
                    std::memory_order_release);
}

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setDebugFlag(const std::string &flag, bool enable)
{
    std::lock_guard<std::mutex> lock(flagMutex);
    ensureEnvParsedLocked();
    if (enable)
        debugFlags.insert(flag);
    else
        debugFlags.erase(flag);
    publishFlagCountLocked();
}

void
setDebugFlags(const std::string &comma_list)
{
    std::lock_guard<std::mutex> lock(flagMutex);
    ensureEnvParsedLocked();
    insertFlagList(comma_list);
    publishFlagCountLocked();
}

bool
debugFlagSet(const std::string &flag)
{
    if (flagCount.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> lock(flagMutex);
    ensureEnvParsedLocked();
    publishFlagCountLocked();
    return debugFlags.count(flag) != 0;
}

bool
anyDebugFlagsSet()
{
    if (flagCount.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> lock(flagMutex);
    ensureEnvParsedLocked();
    publishFlagCountLocked();
    return !debugFlags.empty();
}

void
resetDebugFlagsForTest()
{
    std::lock_guard<std::mutex> lock(flagMutex);
    debugFlags.clear();
    envParsed = false;
    flagCount.store(-1, std::memory_order_release);
}

void
debugPrintf(const std::string &flag, const char *fmt, ...)
{
    std::fprintf(stderr, "[%s] ", flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
}

} // namespace firefly
