/**
 * @file
 * Statistics framework.
 *
 * This plays the role of the hardware counter box the Firefly paper
 * used for Table 2: every component registers named counters in a
 * StatGroup; groups nest, and the whole tree can be dumped as an
 * aligned table or queried programmatically by the benchmark
 * harnesses.
 */

#ifndef FIREFLY_SIM_STATS_HH
#define FIREFLY_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace firefly
{

class StatGroup;

/**
 * Render a stat value for machine-readable output: shortest
 * round-trip decimal form ("0.25", not "0.250000000000000001"), so
 * identical runs serialise byte-identically and parsers recover the
 * exact double.  Non-finite values render as null.
 */
std::string statNumber(double value);

/** A single monotonically accumulating counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { _value += 1; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean / min / max / count of a sampled quantity. */
class Accumulator
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class Histogram
{
  public:
    Histogram(unsigned bucket_count = 16, double bucket_width = 1.0);

    void sample(double v);

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t bucket(unsigned i) const { return buckets.at(i); }
    unsigned bucketCount() const { return buckets.size(); }
    double bucketWidth() const { return width; }
    /** Samples at or above the top bucket boundary. */
    std::uint64_t overflow() const { return _overflow; }
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    double width;
    std::uint64_t _count = 0;
    std::uint64_t _overflow = 0;
    double _sum = 0.0;
};

/**
 * A named collection of statistics.  Components own a StatGroup and
 * register their counters with names and descriptions; registration
 * stores pointers, so the counters themselves stay cheap plain
 * members on the hot path.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register statistics (pointers must outlive the group). */
    void addCounter(Counter *c, std::string name, std::string desc);
    void addAccumulator(Accumulator *a, std::string name,
                        std::string desc);
    void addHistogram(Histogram *h, std::string name, std::string desc);
    /** A derived value computed at dump/query time. */
    void addFormula(std::string name, std::string desc,
                    std::function<double()> fn);
    /** Attach a child group (pointer must outlive this group). */
    void addChild(StatGroup *child);

    const std::string &name() const { return _name; }

    /** Look up any stat (counter or formula) by name as a double. */
    double get(const std::string &stat_name) const;
    /** True if the named stat exists in this group (not children). */
    bool has(const std::string &stat_name) const;

    /** Reset all registered stats in this group and children. */
    void reset();

    /** Dump this group and children as an aligned text table. */
    void dump(std::ostream &os, int indent = 0) const;

    /**
     * Dump this group and children as one JSON object: counters,
     * accumulator count/mean/min/max, histogram buckets, formula
     * values, and a "children" array, mirroring the text dump's
     * nesting.  Deterministic: identical runs produce byte-identical
     * output (there is a regression test).
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

  private:
    struct NamedCounter { Counter *stat; std::string name, desc; };
    struct NamedAccum { Accumulator *stat; std::string name, desc; };
    struct NamedHist { Histogram *stat; std::string name, desc; };
    struct NamedFormula
    {
        std::function<double()> fn;
        std::string name, desc;
    };

    std::string _name;
    std::vector<NamedCounter> counters;
    std::vector<NamedAccum> accums;
    std::vector<NamedHist> hists;
    std::vector<NamedFormula> formulas;
    std::vector<StatGroup *> children;
};

} // namespace firefly

#endif // FIREFLY_SIM_STATS_HH
