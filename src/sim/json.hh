/**
 * @file
 * JSON string escaping, shared by every JSON emitter in the tree
 * (StatGroup::dumpJson, the Chrome trace sink, the stat sampler's
 * columnar export).  Component and stat names are normally tame
 * identifiers, but nothing enforces that - a workload or test can
 * name a group "bad\"name" - and each emitter inventing its own
 * escaping is how the control-character case was missed.
 */

#ifndef FIREFLY_SIM_JSON_HH
#define FIREFLY_SIM_JSON_HH

#include <string>

namespace firefly
{

/** Escape `s` for use inside a JSON string literal (no quotes added):
 *  quote, backslash, and all control characters below 0x20. */
std::string jsonEscape(const std::string &s);

/** `s` as a complete JSON string literal, quotes included. */
std::string jsonQuote(const std::string &s);

} // namespace firefly

#endif // FIREFLY_SIM_JSON_HH
