#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace firefly
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with zero bound");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    // All arithmetic in uint64 space: hi - lo as int64 may overflow
    // (UB) for spans wider than INT64_MAX, and for those spans the
    // drawn offset does not fit in int64 either.  Two's-complement
    // wraparound on the unsigned add yields the right value.
    const std::uint64_t width = static_cast<std::uint64_t>(hi) -
                                static_cast<std::uint64_t>(lo);
    // The full 64-bit span: width + 1 wraps to 0, and every 64-bit
    // value is in range anyway, so draw directly.
    const std::uint64_t offset =
        width == UINT64_MAX ? next() : below(width + 1);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     offset);
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::geometric needs p in (0, 1]");
    if (p == 1.0)
        return 1;
    const double u = uniform();
    const double n = std::ceil(std::log1p(-u) / std::log1p(-p));
    return n < 1.0 ? 1 : static_cast<std::uint64_t>(n);
}

} // namespace firefly
