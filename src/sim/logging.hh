/**
 * @file
 * Error reporting and debug tracing.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (conditions that should be impossible), fatal() for user errors
 * (bad configuration), warn()/inform() for status.  Debug tracing is
 * gated by named flags so individual subsystems can be traced.
 *
 * The flag registry is shared across threads (harness workers run
 * whole simulators concurrently) and is internally synchronised; the
 * no-flags-enabled fast path that every DPRINTF site takes is a
 * single lock-free atomic load.
 */

#ifndef FIREFLY_SIM_LOGGING_HH
#define FIREFLY_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace firefly
{

/** Abort the simulation: internal invariant violated (simulator bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit the simulation: unusable user configuration or input. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable a named debug-trace flag (e.g. "MBus", "Cache", "Sched"). */
void setDebugFlag(const std::string &flag, bool enable = true);

/** Enable every flag in a comma-separated list ("MBus,Cache,Dma"). */
void setDebugFlags(const std::string &comma_list);

/**
 * Query a debug-trace flag.  On first use the FIREFLY_DEBUG
 * environment variable (a comma-separated flag list) is folded in,
 * so any binary can be traced without per-tool flag plumbing:
 *
 *     FIREFLY_DEBUG=MBus,Cache build/bench/bench_scaling
 */
bool debugFlagSet(const std::string &flag);

/** True if any flag is enabled (set programmatically or via env). */
bool anyDebugFlagsSet();

/** Test hook: clear all flags and re-read FIREFLY_DEBUG on next use. */
void resetDebugFlagsForTest();

/** Emit a trace line if the flag is enabled. */
void debugPrintf(const std::string &flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Trace macro: cheap when the flag is off.  Usage:
 *   DPRINTF("MBus", "grant to client %u\n", id);
 */
#define DPRINTF(flag, ...)                                              \
    do {                                                                \
        if (::firefly::debugFlagSet(flag))                              \
            ::firefly::debugPrintf(flag, __VA_ARGS__);                  \
    } while (0)

} // namespace firefly

#endif // FIREFLY_SIM_LOGGING_HH
