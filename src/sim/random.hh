/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (synthetic reference
 * streams, workload think times, ...) draws from Rng instances seeded
 * from the configuration, so a run is exactly reproducible from its
 * seed.  The generator is xoshiro256** which is fast, high quality,
 * and trivially portable.
 */

#ifndef FIREFLY_SIM_RANDOM_HH
#define FIREFLY_SIM_RANDOM_HH

#include <cstdint>

namespace firefly
{

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Seed via SplitMix64 so any 64-bit seed gives a good state. */
    explicit Rng(std::uint64_t seed = 0x5eedf1ef1ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Geometrically distributed count >= 1 with mean 1/p. */
    std::uint64_t geometric(double p);

  private:
    std::uint64_t s[4];
};

} // namespace firefly

#endif // FIREFLY_SIM_RANDOM_HH
