#include "sim/simulator.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

void
Simulator::addClocked(Clocked *c, Phase phase)
{
    const auto idx = static_cast<std::size_t>(phase);
    if (idx >= 4)
        panic("bad phase %zu", idx);
    phases[idx].push_back(c);
}

void
Simulator::stepOneCycle()
{
    // Publish the cycle for trace emitters that have no Simulator
    // reference (obs::traceNow); a single word store per cycle.
    obs::publishTraceNow(_now);
    _events.runUntil(_now);
    for (auto &phase : phases) {
        for (auto *c : phase)
            c->tick(_now);
    }
    ++_now;
}

void
Simulator::run(Cycle cycles)
{
    runUntil(_now + cycles);
}

void
Simulator::runUntil(Cycle when)
{
    stopRequested = false;
    while (_now < when && !stopRequested)
        stepOneCycle();
}

} // namespace firefly
