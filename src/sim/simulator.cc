#include "sim/simulator.hh"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

Simulator::Simulator()
{
    ffEnabled = std::getenv("FIREFLY_NO_FASTFORWARD") == nullptr;
}

void
Simulator::addClocked(Clocked *c, Phase phase)
{
    const auto idx = static_cast<std::size_t>(phase);
    if (idx >= 4)
        panic("bad phase %zu", idx);
    phases[idx].push_back(c);
}

void
Simulator::retireClocked(Clocked *c)
{
    retired.push_back(c);
}

void
Simulator::compactRetired()
{
    for (auto &phase : phases) {
        phase.erase(std::remove_if(phase.begin(), phase.end(),
                        [this](Clocked *c) {
                            return std::find(retired.begin(),
                                             retired.end(),
                                             c) != retired.end();
                        }),
                    phase.end());
    }
    retired.clear();
}

void
Simulator::stepOneCycle()
{
    // Publish the cycle for trace emitters that have no Simulator
    // reference (obs::traceNow); a single word store per cycle.
    obs::publishTraceNow(_now);
    if (_events.runUntil(_now) > 0)
        lastProgress = _now;
    for (auto &phase : phases) {
        for (auto *c : phase)
            c->tick(_now);
    }
    if (!retired.empty())
        compactRetired();
    if (watchdogBound != 0 && _now - lastProgress >= watchdogBound)
        reportWedge();
    ++_now;
}

void
Simulator::fastForward(Cycle when)
{
    // The machine may skip to the earliest cycle any component could
    // act: the next scheduled event, or a Clocked component's wake.
    // Nothing executes over the skipped span, so nothing can schedule
    // new work inside it - the bound stays valid once computed.
    // A component reporting "busy now" ends the probe immediately
    // (the bus, scanned first, is busy on almost every cycle of a
    // saturated run), and repeated failures back the probe off so a
    // busy machine pays almost nothing for the idle machinery.
    Cycle wake = _events.nextEventCycle();
    for (const auto &phase : phases) {
        for (const auto *c : phase) {
            const Cycle w = c->nextWake(_now);
            if (w <= _now) {
                ffRetryAt = _now + ffBackoff;
                ffBackoff = std::min<Cycle>(ffBackoff * 2, 64);
                return;
            }
            wake = std::min(wake, w);
        }
    }
    ffBackoff = 1;
    ffRetryAt = 0;
    if (wake <= _now)
        return;
    Cycle target = std::min(wake, when);
    // Never skip past the watchdog deadline: the wedge must fire at
    // the same cycle it would have fired on the slow path.
    if (watchdogBound != 0)
        target = std::min(target, lastProgress + watchdogBound);
    if (target <= _now)
        return;
    for (auto &phase : phases) {
        for (auto *c : phase)
            c->skipCycles(_now, target);
    }
    ffSkipped += target - _now;
    _now = target;
}

void
Simulator::reportWedge()
{
    std::string diag =
        "simulation wedged: no progress for " +
        std::to_string(watchdogBound) + " cycles (now " +
        std::to_string(_now) + ", last progress " +
        std::to_string(lastProgress) + ")\npending events:\n" +
        _events.describePending();
    if (watchdogThrows)
        throw SimulationWedged(diag);
    panic("%s", diag.c_str());
}

void
Simulator::run(Cycle cycles)
{
    runUntil(_now + cycles);
}

void
Simulator::runUntil(Cycle when)
{
    // The stop request is consumed only when it is observed here, so
    // one issued between run() calls stops the next run instead of
    // being silently cleared on entry.
    while (_now < when) {
        if (stopRequested) {
            stopRequested = false;
            return;
        }
        stepOneCycle();
        if (ffEnabled && _now < when && _now >= ffRetryAt &&
            !stopRequested) {
            fastForward(when);
        }
    }
}

} // namespace firefly
