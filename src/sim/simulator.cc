#include "sim/simulator.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

void
Simulator::addClocked(Clocked *c, Phase phase)
{
    const auto idx = static_cast<std::size_t>(phase);
    if (idx >= 4)
        panic("bad phase %zu", idx);
    phases[idx].push_back(c);
}

void
Simulator::stepOneCycle()
{
    // Publish the cycle for trace emitters that have no Simulator
    // reference (obs::traceNow); a single word store per cycle.
    obs::publishTraceNow(_now);
    if (_events.runUntil(_now) > 0)
        lastProgress = _now;
    for (auto &phase : phases) {
        for (auto *c : phase)
            c->tick(_now);
    }
    if (watchdogBound != 0 && _now - lastProgress >= watchdogBound)
        reportWedge();
    ++_now;
}

void
Simulator::reportWedge()
{
    std::string diag =
        "simulation wedged: no progress for " +
        std::to_string(watchdogBound) + " cycles (now " +
        std::to_string(_now) + ", last progress " +
        std::to_string(lastProgress) + ")\npending events:\n" +
        _events.describePending();
    if (watchdogThrows)
        throw SimulationWedged(diag);
    panic("%s", diag.c_str());
}

void
Simulator::run(Cycle cycles)
{
    runUntil(_now + cycles);
}

void
Simulator::runUntil(Cycle when)
{
    stopRequested = false;
    while (_now < when && !stopRequested)
        stepOneCycle();
}

} // namespace firefly
