/**
 * @file
 * A move-only callable with inline storage.
 *
 * The simulator's hot paths complete every memory reference through a
 * callback (Cache::Callback) and pace sparse device work through
 * EventQueue closures.  std::function's small-buffer optimisation in
 * the shipped standard libraries tops out around two pointers, so the
 * common captures - a `this` pointer plus a MemRef, or a moved-in
 * completion callback - spill to the heap, costing a malloc/free pair
 * per reference.  SmallFunction widens the inline buffer so those
 * captures never allocate; captures larger than `Capacity` fall back
 * to a heap box and stay correct.
 *
 * Deliberately narrower than std::function: move-only (no copying a
 * queued completion), no target_type/target introspection, and
 * invoking an empty SmallFunction is undefined (callers null-check,
 * exactly as the former std::function sites did via operator bool).
 */

#ifndef FIREFLY_SIM_SMALL_FUNCTION_HH
#define FIREFLY_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace firefly
{

template <typename Signature, std::size_t Capacity = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            new (storage()) Fn(std::forward<F>(f));
            ops = &InlineOps<Fn>::ops;
        } else {
            new (storage()) Fn *(new Fn(std::forward<F>(f)));
            ops = &BoxedOps<Fn>::ops;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    ~SmallFunction() { reset(); }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    explicit operator bool() const { return ops != nullptr; }

    R
    operator()(Args... args)
    {
        return ops->invoke(storage(), std::forward<Args>(args)...);
    }

    /** True if a callable of type Fn avoids the heap box. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    struct InlineOps
    {
        static R
        invoke(void *s, Args... args)
        {
            return (*static_cast<Fn *>(s))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            Fn *f = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*f));
            f->~Fn();
        }
        static void
        destroy(void *s) noexcept
        {
            static_cast<Fn *>(s)->~Fn();
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    template <typename Fn>
    struct BoxedOps
    {
        static Fn *&
        boxed(void *s)
        {
            return *static_cast<Fn **>(s);
        }
        static R
        invoke(void *s, Args... args)
        {
            return (*boxed(s))(std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src) noexcept
        {
            new (dst) Fn *(boxed(src));
        }
        static void
        destroy(void *s) noexcept
        {
            delete boxed(s);
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    void *storage() { return buf; }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        if (other.ops) {
            other.ops->relocate(storage(), other.storage());
            ops = other.ops;
            other.ops = nullptr;
        }
    }

    void
    reset()
    {
        if (ops) {
            ops->destroy(storage());
            ops = nullptr;
        }
    }

    static constexpr std::size_t bufBytes =
        Capacity >= sizeof(void *) ? Capacity : sizeof(void *);

    const Ops *ops = nullptr;
    alignas(std::max_align_t) unsigned char buf[bufBytes];
};

} // namespace firefly

#endif // FIREFLY_SIM_SMALL_FUNCTION_HH
