/**
 * @file
 * The cycle-driven simulation core.
 *
 * One Simulator instance owns simulated time.  Synchronous components
 * (MBus, CPUs) register as Clocked objects in a fixed phase order so
 * each cycle is evaluated deterministically:
 *
 *   1. pending events whose time has arrived (device timers, DMA),
 *   2. PhaseBus    - the MBus advances its transaction state machine,
 *   3. PhaseCache  - caches retire bus completions / start requests,
 *   4. PhaseCpu    - processors issue references,
 *   5. PhaseDevice - polled device logic.
 *
 * Determinism matters: two runs with the same configuration and seed
 * produce bit-identical statistics (there is a regression test).
 */

#ifndef FIREFLY_SIM_SIMULATOR_HH
#define FIREFLY_SIM_SIMULATOR_HH

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace firefly
{

/** Thrown by the wedge watchdog when configured to throw. */
class SimulationWedged : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Interface for components evaluated every cycle. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Evaluate one 100 ns bus cycle. */
    virtual void tick(Cycle now) = 0;
};

/** Evaluation phases within one cycle, in execution order. */
enum class Phase
{
    Bus = 0,
    Cache,
    Cpu,
    Device,
};

/** The simulation kernel: clock, component list, event queue. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current cycle (complete cycles so far). */
    Cycle now() const { return _now; }

    /** Simulated seconds elapsed. */
    double seconds() const { return cyclesToSeconds(_now); }

    /** Event queue for scheduled callbacks. */
    EventQueue &events() { return _events; }

    /** Register a synchronous component in the given phase. */
    void addClocked(Clocked *c, Phase phase);

    /** Run for `cycles` more cycles (or until requestStop). */
    void run(Cycle cycles);

    /** Run until the absolute cycle `when` (or until requestStop). */
    void runUntil(Cycle when);

    /** Ask the main loop to stop after the current cycle. */
    void requestStop() { stopRequested = true; }

    /**
     * Wedge watchdog: if no component reports progress for `bound`
     * cycles, abort with a diagnostic listing the pending events
     * instead of spinning forever (a lost DMA/device completion
     * otherwise wedges "while (!done) sim.run(1)" loops).  Progress
     * is any executed event, bus activity, or a CPU doing work -
     * components call noteProgress().  A bound of 0 disables the
     * watchdog (the default: an idle machine is not an error).
     * `throw_on_wedge` raises SimulationWedged instead of dying.
     */
    void setWatchdog(Cycle bound, bool throw_on_wedge = false)
    {
        watchdogBound = bound;
        watchdogThrows = throw_on_wedge;
        lastProgress = _now;
    }

    /** A component did useful work this cycle (cheap: one store). */
    void noteProgress() { lastProgress = _now; }

  private:
    void stepOneCycle();
    [[noreturn]] void reportWedge();

    Cycle _now = 0;
    bool stopRequested = false;
    EventQueue _events;
    std::vector<Clocked *> phases[4];

    Cycle watchdogBound = 0;
    bool watchdogThrows = false;
    Cycle lastProgress = 0;
};

} // namespace firefly

#endif // FIREFLY_SIM_SIMULATOR_HH
