/**
 * @file
 * The cycle-driven simulation core.
 *
 * One Simulator instance owns simulated time.  Synchronous components
 * (MBus, CPUs) register as Clocked objects in a fixed phase order so
 * each cycle is evaluated deterministically:
 *
 *   1. pending events whose time has arrived (device timers, DMA),
 *   2. PhaseBus    - the MBus advances its transaction state machine,
 *   3. PhaseCache  - caches retire bus completions / start requests,
 *   4. PhaseCpu    - processors issue references,
 *   5. PhaseDevice - polled device logic.
 *
 * Determinism matters: two runs with the same configuration and seed
 * produce bit-identical statistics (there is a regression test).
 */

#ifndef FIREFLY_SIM_SIMULATOR_HH
#define FIREFLY_SIM_SIMULATOR_HH

#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace firefly
{

/** Thrown by the wedge watchdog when configured to throw. */
class SimulationWedged : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** nextWake() value for a component with no work ever again. */
constexpr Cycle kNeverWakes = std::numeric_limits<Cycle>::max();

/** Interface for components evaluated every cycle. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Evaluate one 100 ns bus cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Quiescence protocol for idle fast-forward.  The earliest cycle
     * >= `now` at which this component's tick() could do anything
     * observable; kNeverWakes if it is fully quiescent.  The default
     * (`now`) means "always busy", which disables fast-forward and
     * preserves exact per-cycle ticking for components that do not
     * opt in.  Implementations must be conservative: returning a
     * cycle later than the component's first real work would change
     * simulated behaviour.
     */
    virtual Cycle nextWake(Cycle now) const { return now; }

    /**
     * The simulator jumped time from `from` to `to` without ticking
     * the cycles in between (all components reported quiescence over
     * the span).  Components whose per-tick bookkeeping counts cycles
     * (the MBus's total-cycle counter) compensate here so statistics
     * are bit-identical to the slow path.
     */
    virtual void skipCycles(Cycle from, Cycle to)
    {
        (void)from;
        (void)to;
    }
};

/** Evaluation phases within one cycle, in execution order. */
enum class Phase
{
    Bus = 0,
    Cache,
    Cpu,
    Device,
};

/** The simulation kernel: clock, component list, event queue. */
class Simulator
{
  public:
    Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current cycle (complete cycles so far). */
    Cycle now() const { return _now; }

    /** Simulated seconds elapsed. */
    double seconds() const { return cyclesToSeconds(_now); }

    /** Event queue for scheduled callbacks. */
    EventQueue &events() { return _events; }

    /** Register a synchronous component in the given phase. */
    void addClocked(Clocked *c, Phase phase);

    /**
     * Permanently remove a component from the tick rotation (a halted
     * CPU never ticks again).  Safe to call from inside tick(): the
     * removal is deferred to the end of the current cycle.  A retired
     * component no longer contributes to quiescence decisions either.
     */
    void retireClocked(Clocked *c);

    /** Run for `cycles` more cycles (or until requestStop). */
    void run(Cycle cycles);

    /** Run until the absolute cycle `when` (or until requestStop). */
    void runUntil(Cycle when);

    /**
     * Ask the main loop to stop after the current cycle.  The request
     * latches: issued between run() calls (or on a run's final
     * cycle), it stops the next run() immediately instead of being
     * silently dropped.
     */
    void requestStop() { stopRequested = true; }

    /**
     * Enable or disable idle fast-forward (on by default unless the
     * FIREFLY_NO_FASTFORWARD environment variable is set).  With it
     * on, whenever every Clocked component reports quiescence,
     * runUntil jumps time straight to the next event (or the run
     * horizon) instead of ticking empty cycles.  Simulated behaviour
     * and statistics are bit-identical either way; the switch exists
     * so tests and the perf lane can compare the two paths.
     */
    void setFastForward(bool enabled) { ffEnabled = enabled; }
    bool fastForwardEnabled() const { return ffEnabled; }

    /** Cycles skipped by idle fast-forward (host-perf diagnostics;
     *  deliberately not a registered stat, so exports stay identical
     *  between the fast and slow paths). */
    Cycle cyclesFastForwarded() const { return ffSkipped; }

    /**
     * Wedge watchdog: if no component reports progress for `bound`
     * cycles, abort with a diagnostic listing the pending events
     * instead of spinning forever (a lost DMA/device completion
     * otherwise wedges "while (!done) sim.run(1)" loops).  Progress
     * is any executed event, bus activity, or a CPU doing work -
     * components call noteProgress().  A bound of 0 disables the
     * watchdog (the default: an idle machine is not an error).
     * `throw_on_wedge` raises SimulationWedged instead of dying.
     */
    void setWatchdog(Cycle bound, bool throw_on_wedge = false)
    {
        watchdogBound = bound;
        watchdogThrows = throw_on_wedge;
        lastProgress = _now;
    }

    /** A component did useful work this cycle (cheap: one store). */
    void noteProgress() { lastProgress = _now; }

  private:
    void stepOneCycle();
    void fastForward(Cycle when);
    void compactRetired();
    [[noreturn]] void reportWedge();

    Cycle _now = 0;
    bool stopRequested = false;
    bool ffEnabled = true;
    Cycle ffSkipped = 0;
    /** Quiescence-probe backoff: after a failed probe the next try
     *  waits ffBackoff cycles (doubling, capped), so saturated runs
     *  pay ~zero for the idle machinery.  Host-side only - skipping
     *  or ticking an idle cycle is behaviourally identical. */
    Cycle ffRetryAt = 0;
    Cycle ffBackoff = 1;
    EventQueue _events;
    std::vector<Clocked *> phases[4];
    std::vector<Clocked *> retired;

    Cycle watchdogBound = 0;
    bool watchdogThrows = false;
    Cycle lastProgress = 0;
};

} // namespace firefly

#endif // FIREFLY_SIM_SIMULATOR_HH
