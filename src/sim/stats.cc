#include "sim/stats.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <iomanip>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace firefly
{

std::string
statNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

void
Accumulator::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += v;
}

void
Accumulator::reset()
{
    _count = 0;
    _sum = _min = _max = 0.0;
}

Histogram::Histogram(unsigned bucket_count, double bucket_width)
    : buckets(bucket_count, 0), width(bucket_width)
{
    if (bucket_count == 0 || bucket_width <= 0.0)
        panic("Histogram needs positive bucket count and width");
}

void
Histogram::sample(double v)
{
    ++_count;
    _sum += v;
    if (v < 0.0)
        v = 0.0;
    const auto idx = static_cast<std::size_t>(v / width);
    if (idx >= buckets.size())
        ++_overflow;
    else
        ++buckets[idx];
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    _count = 0;
    _overflow = 0;
    _sum = 0.0;
}

StatGroup::StatGroup(std::string name)
    : _name(std::move(name))
{
}

void
StatGroup::addCounter(Counter *c, std::string name, std::string desc)
{
    counters.push_back({c, std::move(name), std::move(desc)});
}

void
StatGroup::addAccumulator(Accumulator *a, std::string name,
                          std::string desc)
{
    accums.push_back({a, std::move(name), std::move(desc)});
}

void
StatGroup::addHistogram(Histogram *h, std::string name, std::string desc)
{
    hists.push_back({h, std::move(name), std::move(desc)});
}

void
StatGroup::addFormula(std::string name, std::string desc,
                      std::function<double()> fn)
{
    formulas.push_back({std::move(fn), std::move(name), std::move(desc)});
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

double
StatGroup::get(const std::string &stat_name) const
{
    for (const auto &c : counters) {
        if (c.name == stat_name)
            return static_cast<double>(c.stat->value());
    }
    for (const auto &a : accums) {
        if (a.name == stat_name)
            return a.stat->mean();
    }
    for (const auto &f : formulas) {
        if (f.name == stat_name)
            return f.fn();
    }
    panic("unknown stat '%s' in group '%s'", stat_name.c_str(),
          _name.c_str());
}

bool
StatGroup::has(const std::string &stat_name) const
{
    for (const auto &c : counters) {
        if (c.name == stat_name)
            return true;
    }
    for (const auto &a : accums) {
        if (a.name == stat_name)
            return true;
    }
    for (const auto &f : formulas) {
        if (f.name == stat_name)
            return true;
    }
    return false;
}

void
StatGroup::reset()
{
    for (auto &c : counters)
        c.stat->reset();
    for (auto &a : accums)
        a.stat->reset();
    for (auto &h : hists)
        h.stat->reset();
    for (auto *child : children)
        child->reset();
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    const std::string pad(indent * 2, ' ');
    os << pad << _name << ":\n";
    auto line = [&](const std::string &name, double value,
                    const std::string &desc) {
        os << pad << "  " << std::left << std::setw(32) << name
           << std::right << std::setw(16) << value << "  # " << desc
           << "\n";
    };
    for (const auto &c : counters)
        line(c.name, static_cast<double>(c.stat->value()), c.desc);
    for (const auto &a : accums)
        line(a.name + ".mean", a.stat->mean(), a.desc);
    for (const auto &f : formulas)
        line(f.name, f.fn(), f.desc);
    for (const auto &h : hists) {
        os << pad << "  " << h.name << " (hist, width "
           << h.stat->bucketWidth() << ", mean " << h.stat->mean()
           << "):";
        for (unsigned i = 0; i < h.stat->bucketCount(); ++i)
            os << " " << h.stat->bucket(i);
        os << " of:" << h.stat->overflow() << "  # " << h.desc << "\n";
    }
    for (const auto *child : children)
        child->dump(os, indent + 1);
}

namespace
{

// Hostile names (control characters included) must still produce
// valid JSON; the shared escaper handles what the old local one
// missed.
std::string
jsonString(const std::string &s)
{
    return jsonQuote(s);
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    const std::string pad(indent * 2, ' ');
    const std::string in(indent * 2 + 2, ' ');
    os << "{\n" << in << "\"name\": " << jsonString(_name);

    if (!counters.empty()) {
        os << ",\n" << in << "\"counters\": {";
        for (std::size_t i = 0; i < counters.size(); ++i) {
            os << (i ? ", " : "") << jsonString(counters[i].name)
               << ": " << counters[i].stat->value();
        }
        os << "}";
    }
    if (!accums.empty()) {
        os << ",\n" << in << "\"accumulators\": {";
        for (std::size_t i = 0; i < accums.size(); ++i) {
            const Accumulator &a = *accums[i].stat;
            os << (i ? ", " : "") << jsonString(accums[i].name)
               << ": {\"count\": " << a.count()
               << ", \"sum\": " << statNumber(a.sum())
               << ", \"mean\": " << statNumber(a.mean())
               << ", \"min\": " << statNumber(a.min())
               << ", \"max\": " << statNumber(a.max()) << "}";
        }
        os << "}";
    }
    if (!hists.empty()) {
        os << ",\n" << in << "\"histograms\": {";
        for (std::size_t i = 0; i < hists.size(); ++i) {
            const Histogram &h = *hists[i].stat;
            os << (i ? ", " : "") << jsonString(hists[i].name)
               << ": {\"bucket_width\": " << statNumber(h.bucketWidth())
               << ", \"count\": " << h.count()
               << ", \"mean\": " << statNumber(h.mean())
               << ", \"overflow\": " << h.overflow()
               << ", \"buckets\": [";
            for (unsigned b = 0; b < h.bucketCount(); ++b)
                os << (b ? ", " : "") << h.bucket(b);
            os << "]}";
        }
        os << "}";
    }
    if (!formulas.empty()) {
        os << ",\n" << in << "\"formulas\": {";
        for (std::size_t i = 0; i < formulas.size(); ++i) {
            os << (i ? ", " : "") << jsonString(formulas[i].name)
               << ": " << statNumber(formulas[i].fn());
        }
        os << "}";
    }
    if (!children.empty()) {
        os << ",\n" << in << "\"children\": [";
        for (std::size_t i = 0; i < children.size(); ++i) {
            os << (i ? ", " : "");
            children[i]->dumpJson(os, indent + 1);
        }
        os << "]";
    }
    os << "\n" << pad << "}";
    if (indent == 0)
        os << "\n";
}

} // namespace firefly
