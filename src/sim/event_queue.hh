/**
 * @file
 * Discrete-event scheduling on top of the cycle clock.
 *
 * The core machine (CPUs, caches, MBus) is simulated synchronously,
 * cycle by cycle, but devices with long, sparse timing (display
 * refresh, disk seeks, DMA word pacing) schedule callbacks here
 * instead of ticking every cycle.
 *
 * Events may carry a static label naming who scheduled them; the
 * simulator's wedge watchdog prints the pending-event list with
 * those labels when a lost completion stalls the machine, so the
 * diagnostic points at the component that went quiet.
 */

#ifndef FIREFLY_SIM_EVENT_QUEUE_HH
#define FIREFLY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace firefly
{

/** A time-ordered queue of callbacks, FIFO among equal times. */
class EventQueue
{
  public:
    /**
     * Schedule fn to run at absolute cycle `when`.  `label` must be
     * a string with static lifetime (a literal); it is only read if
     * the event ends up in a wedge diagnostic.
     */
    void schedule(Cycle when, std::function<void()> fn,
                  const char *label = "");

    /** Cycle of the earliest pending event, or max if empty. */
    Cycle nextEventCycle() const;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /**
     * Run every event scheduled at or before `now`.
     * @return how many events executed.
     */
    std::size_t runUntil(Cycle now);

    /** Render the pending events (earliest first, up to `max`) for
     *  the watchdog's wedge diagnostic. */
    std::string describePending(std::size_t max = 16) const;

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        const char *label;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Binary heap managed with std::push_heap/pop_heap so
     *  describePending can walk the pending set. */
    std::vector<Event> events;
    std::uint64_t nextSeq = 0;
};

} // namespace firefly

#endif // FIREFLY_SIM_EVENT_QUEUE_HH
