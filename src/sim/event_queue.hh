/**
 * @file
 * Discrete-event scheduling on top of the cycle clock.
 *
 * The core machine (CPUs, caches, MBus) is simulated synchronously,
 * cycle by cycle, but devices with long, sparse timing (display
 * refresh, disk seeks, DMA word pacing) schedule callbacks here
 * instead of ticking every cycle.
 *
 * Events may carry a static label naming who scheduled them; the
 * simulator's wedge watchdog prints the pending-event list with
 * those labels when a lost completion stalls the machine, so the
 * diagnostic points at the component that went quiet.
 */

#ifndef FIREFLY_SIM_EVENT_QUEUE_HH
#define FIREFLY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace firefly
{

/** A time-ordered queue of callbacks, FIFO among equal times. */
class EventQueue
{
  public:
    /** Event closure.  The inline capacity covers the tree's largest
     *  common capture (a moved-in completion callback plus a couple
     *  of words); bigger captures fall back to a heap box. */
    using EventFn = SmallFunction<void(), 64>;

    /**
     * Schedule fn to run at absolute cycle `when`.  `label` must be
     * a string with static lifetime (a literal); it is only read if
     * the event ends up in a wedge diagnostic.  Scheduling before the
     * horizon runUntil has already swept past is a simulator bug (the
     * event would appear to fire "on time" while actually being late,
     * hiding exactly the lost completions the watchdog exists to
     * catch) and panics.
     */
    void schedule(Cycle when, EventFn fn, const char *label = "");

    /** Cycle of the earliest pending event, or max if empty. */
    Cycle nextEventCycle() const;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /**
     * Run every event scheduled at or before `now`.
     * @return how many events executed.
     *
     * Inline early-out: most cycles have no ripe event, and this is
     * called once per simulated cycle, so the common case must not
     * cost a function call.
     */
    std::size_t
    runUntil(Cycle now)
    {
        if (events.empty() || events.front().when > now) {
            if (now > horizon)
                horizon = now;
            return 0;
        }
        return runPending(now);
    }

    /** Render the pending events (earliest first, up to `max`) for
     *  the watchdog's wedge diagnostic. */
    std::string describePending(std::size_t max = 16) const;

  private:
    /** Out-of-line body of runUntil for cycles with ripe events. */
    std::size_t runPending(Cycle now);

    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        const char *label;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Binary heap managed with std::push_heap/pop_heap so
     *  describePending can walk the pending set. */
    std::vector<Event> events;
    std::uint64_t nextSeq = 0;
    /** Latest cycle runUntil has swept; schedules before it panic. */
    Cycle horizon = 0;
};

} // namespace firefly

#endif // FIREFLY_SIM_EVENT_QUEUE_HH
