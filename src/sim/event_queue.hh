/**
 * @file
 * Discrete-event scheduling on top of the cycle clock.
 *
 * The core machine (CPUs, caches, MBus) is simulated synchronously,
 * cycle by cycle, but devices with long, sparse timing (display
 * refresh, disk seeks, DMA word pacing) schedule callbacks here
 * instead of ticking every cycle.
 */

#ifndef FIREFLY_SIM_EVENT_QUEUE_HH
#define FIREFLY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace firefly
{

/** A time-ordered queue of callbacks, FIFO among equal times. */
class EventQueue
{
  public:
    /** Schedule fn to run at absolute cycle `when`. */
    void schedule(Cycle when, std::function<void()> fn);

    /** Cycle of the earliest pending event, or max if empty. */
    Cycle nextEventCycle() const;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /** Run every event scheduled at or before `now`. */
    void runUntil(Cycle now);

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    std::uint64_t nextSeq = 0;
};

} // namespace firefly

#endif // FIREFLY_SIM_EVENT_QUEUE_HH
