#include "sim/event_queue.hh"

#include <limits>

namespace firefly
{

void
EventQueue::schedule(Cycle when, std::function<void()> fn)
{
    events.push({when, nextSeq++, std::move(fn)});
}

Cycle
EventQueue::nextEventCycle() const
{
    if (events.empty())
        return std::numeric_limits<Cycle>::max();
    return events.top().when;
}

void
EventQueue::runUntil(Cycle now)
{
    while (!events.empty() && events.top().when <= now) {
        // Copy out before pop so the callback may schedule new events.
        auto fn = events.top().fn;
        events.pop();
        fn();
    }
}

} // namespace firefly
