#include "sim/event_queue.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace firefly
{

void
EventQueue::schedule(Cycle when, EventFn fn, const char *label)
{
    if (when < horizon) {
        panic("event '%s' scheduled at cycle %llu, but cycle %llu "
              "has already run (a lost-completion bug the watchdog "
              "cannot see)",
              label && *label ? label : "(unlabelled)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(horizon));
    }
    events.push_back({when, nextSeq++, label, std::move(fn)});
    std::push_heap(events.begin(), events.end(), Later{});
}

Cycle
EventQueue::nextEventCycle() const
{
    if (events.empty())
        return std::numeric_limits<Cycle>::max();
    return events.front().when;
}

std::size_t
EventQueue::runPending(Cycle now)
{
    std::size_t ran = 0;
    while (!events.empty() && events.front().when <= now) {
        // Move out before pop so the callback may schedule new events.
        std::pop_heap(events.begin(), events.end(), Later{});
        auto ev = std::move(events.back());
        events.pop_back();
        // The horizon tracks the event being processed, not the sweep
        // target: a callback at cycle 1 may schedule for cycle 2 even
        // when this sweep runs to 5 (the new event still fires in
        // order, within this sweep).
        if (ev.when > horizon)
            horizon = ev.when;
        ev.fn();
        ++ran;
    }
    if (now > horizon)
        horizon = now;
    return ran;
}

std::string
EventQueue::describePending(std::size_t max) const
{
    if (events.empty())
        return "  (event queue empty)\n";
    std::vector<const Event *> sorted;
    sorted.reserve(events.size());
    for (const Event &ev : events)
        sorted.push_back(&ev);
    std::sort(sorted.begin(), sorted.end(),
              [](const Event *a, const Event *b) {
                  if (a->when != b->when)
                      return a->when < b->when;
                  return a->seq < b->seq;
              });
    std::ostringstream os;
    std::size_t shown = 0;
    for (const Event *ev : sorted) {
        if (shown++ == max) {
            os << "  ... " << (sorted.size() - max) << " more\n";
            break;
        }
        os << "  cycle " << ev->when << ": "
           << (ev->label && *ev->label ? ev->label : "(unlabelled)")
           << "\n";
    }
    return os.str();
}

} // namespace firefly
