/**
 * @file
 * Fundamental types shared by the whole simulator.
 *
 * The base time unit of the simulation is one MBus cycle (100 ns in
 * the real machine).  A MicroVAX processor tick is two bus cycles
 * (200 ns); a CVAX tick is one bus cycle (100 ns).  Physical
 * addresses are byte addresses; the Firefly bus moves aligned 32-bit
 * longwords, so most of the machine works in word addresses.
 */

#ifndef FIREFLY_SIM_TYPES_HH
#define FIREFLY_SIM_TYPES_HH

#include <cstdint>

namespace firefly
{

/** Simulated time, measured in 100 ns MBus cycles. */
using Cycle = std::uint64_t;

/** Physical byte address (24 bits on the MicroVAX Firefly, 27 on the
 *  CVAX version; we carry them in 32 bits). */
using Addr = std::uint32_t;

/** A 32-bit VAX longword, the unit of transfer on the MBus. */
using Word = std::uint32_t;

/** Duration of one MBus cycle in nanoseconds. */
constexpr double busCycleNs = 100.0;

/** Bytes per longword / per MBus transfer / per original cache line. */
constexpr Addr bytesPerWord = 4;

/** Convert a byte address to a word (longword) address. */
constexpr Addr
wordAddr(Addr byte_addr)
{
    return byte_addr / bytesPerWord;
}

/** Convert a word address back to the byte address of its first byte. */
constexpr Addr
byteAddr(Addr word_addr)
{
    return word_addr * bytesPerWord;
}

/** Convert a cycle count to simulated seconds. */
constexpr double
cyclesToSeconds(Cycle cycles)
{
    return static_cast<double>(cycles) * busCycleNs * 1e-9;
}

/** Convert simulated seconds to cycles (rounded to nearest). */
constexpr Cycle
secondsToCycles(double seconds)
{
    return static_cast<Cycle>(seconds / (busCycleNs * 1e-9) + 0.5);
}

} // namespace firefly

#endif // FIREFLY_SIM_TYPES_HH
