#include "harness/worker_pool.hh"

#include "sim/logging.hh"

namespace firefly::harness
{

WorkerPool::WorkerPool(unsigned threads)
{
    if (threads == 0)
        fatal("WorkerPool needs at least one thread");
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    workReady.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(job));
    }
    workReady.notify_one();
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allDone.wait(lock, [this] { return queue.empty() && running == 0; });
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
        workReady.wait(lock,
                       [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return;  // stopping, and nothing left to drain
        std::function<void()> job = std::move(queue.front());
        queue.pop_front();
        ++running;
        lock.unlock();
        job();
        lock.lock();
        --running;
        if (queue.empty() && running == 0)
            allDone.notify_all();
    }
}

} // namespace firefly::harness
