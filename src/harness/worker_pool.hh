/**
 * @file
 * A fixed-size pool of worker threads draining a job queue.
 *
 * The pool exists to run *independent simulations* concurrently (see
 * harness/sweep.hh): jobs must not share mutable state with each
 * other.  The simulator itself is thread-clean for this use - the
 * observability context (obs/trace.hh) is thread_local, the debug
 * flag registry (sim/logging.hh) is internally synchronised, and
 * everything else hangs off per-instance objects - so a job that
 * builds, runs, and tears down its own FireflySystem touches nothing
 * another worker can see.
 *
 * Semantics are deliberately minimal: submit() enqueues a job,
 * wait() blocks until the queue is empty and every submitted job has
 * returned, and destruction wait()s then joins.  Jobs must not
 * throw; the sweep driver wraps user callbacks and captures their
 * exceptions (worker threads have nowhere sane to propagate one).
 */

#ifndef FIREFLY_HARNESS_WORKER_POOL_HH
#define FIREFLY_HARNESS_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace firefly::harness
{

/** Fixed thread pool; jobs are independent and must not throw. */
class WorkerPool
{
  public:
    /** Spawn `threads` workers (at least one). */
    explicit WorkerPool(unsigned threads);

    /** wait(), then stop and join every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a job for any idle worker. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned threadCount() const { return workers.size(); }

  private:
    void workerLoop();

    std::mutex mutex;
    std::condition_variable workReady;   ///< queue non-empty or stopping
    std::condition_variable allDone;     ///< queue empty and none running
    std::deque<std::function<void()>> queue;  // guarded by mutex
    unsigned running = 0;                     // guarded by mutex
    bool stopping = false;                    // guarded by mutex
    std::vector<std::thread> workers;
};

} // namespace firefly::harness

#endif // FIREFLY_HARNESS_WORKER_POOL_HH
