/**
 * @file
 * Parallel sweep driver: run independent simulations concurrently.
 *
 * Every design-space experiment in bench/ is a loop over independent
 * configurations - protocol x NP x sharing fraction, line sizes,
 * scheduler policies - each point building and running its own
 * FireflySystem.  runSweep() executes those points on a WorkerPool
 * and returns the results *in input order*, whatever order the
 * scheduler ran them in.
 *
 * The determinism contract: a sweep's results depend only on each
 * point's configuration, never on execution order or the number of
 * workers.  The simulator holds up its end (per-instance state,
 * thread_local observability, config-seeded Rngs); callers hold up
 * theirs by deriving every random seed from the point's own
 * configuration - pointSeed() below mixes a base seed with per-point
 * salts so no Rng is ever threaded *across* points.  jobs <= 1 runs
 * the plain serial loop on the calling thread, byte-identical to the
 * pre-harness behaviour.
 *
 * Exceptions thrown by a point's callback are captured on the worker
 * and rethrown on the calling thread after the sweep drains, lowest
 * point index first (again: independent of scheduling).
 */

#ifndef FIREFLY_HARNESS_SWEEP_HH
#define FIREFLY_HARNESS_SWEEP_HH

#include <algorithm>
#include <cstdint>
#include <exception>
#include <type_traits>
#include <vector>

#include "harness/worker_pool.hh"

namespace firefly::harness
{

namespace detail
{

/** Call fn(config, index) if it takes the index, else fn(config). */
template <typename Fn, typename Config>
auto
invokePoint(Fn &fn, const Config &config, std::size_t index)
{
    if constexpr (std::is_invocable_v<Fn &, const Config &, std::size_t>)
        return fn(config, index);
    else
        return fn(config);
}

} // namespace detail

/**
 * Derive a sweep point's seed from its configuration.
 *
 * SplitMix64-mixes the base seed with any number of per-point salts
 * (sweep indices, processor counts, a config hash...).  Distinct
 * salts give statistically independent seeds, and the result depends
 * only on the inputs - never on which worker runs the point or when.
 */
inline std::uint64_t
pointSeed(std::uint64_t base)
{
    return base;
}

template <typename... Salts>
std::uint64_t
pointSeed(std::uint64_t base, std::uint64_t salt, Salts... rest)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return pointSeed(z ^ (z >> 31), rest...);
}

/**
 * Run fn over every config, `jobs` at a time, returning the results
 * in input order.  fn is invoked as fn(config) or, if it accepts
 * one, fn(config, index).  The result type must be default
 * constructible (sweep results are plain aggregates of measurements).
 */
template <typename Config, typename Fn>
auto
runSweep(const std::vector<Config> &configs, Fn fn, unsigned jobs = 1)
    -> std::vector<decltype(detail::invokePoint(fn, configs[0], 0))>
{
    using Result = decltype(detail::invokePoint(fn, configs[0], 0));
    std::vector<Result> results(configs.size());

    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = detail::invokePoint(fn, configs[i], i);
        return results;
    }

    std::vector<std::exception_ptr> errors(configs.size());
    {
        WorkerPool pool(std::min<std::size_t>(jobs, configs.size()));
        for (std::size_t i = 0; i < configs.size(); ++i) {
            pool.submit([&, i] {
                try {
                    results[i] =
                        detail::invokePoint(fn, configs[i], i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
    }
    for (auto &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

} // namespace firefly::harness

#endif // FIREFLY_HARNESS_SWEEP_HH
