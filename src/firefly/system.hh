/**
 * @file
 * A complete simulated Firefly (paper Figure 1): processors with
 * snoopy caches on the MBus, storage modules, interprocessor
 * interrupts, and an attachment point for the QBus I/O world on the
 * primary processor's cache.
 *
 * Workloads attach after construction: either the synthetic VAX
 * stream (one per processor, with per-processor private regions and
 * a common shared region) or externally owned RefSources (the Topaz
 * runtime uses this).
 */

#ifndef FIREFLY_FIREFLY_SYSTEM_HH
#define FIREFLY_FIREFLY_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "check/coherence_checker.hh"
#include "cpu/synthetic_stream.hh"
#include "cpu/trace_cpu.hh"
#include "firefly/config.hh"
#include "mbus/interrupts.hh"
#include "mbus/mbus.hh"
#include "mem/main_memory.hh"
#include "sim/simulator.hh"

namespace firefly
{

/** A whole machine. */
class FireflySystem
{
  public:
    explicit FireflySystem(const FireflyConfig &config);

    FireflySystem(const FireflySystem &) = delete;
    FireflySystem &operator=(const FireflySystem &) = delete;

    const FireflyConfig &config() const { return cfg; }

    // --- workload attachment -------------------------------------------
    /**
     * Give every processor a synthetic stream derived from `base`:
     * processor i gets its own code and private-data regions (and its
     * own seed); the shared region is common.
     */
    void attachSyntheticWorkload(const SyntheticConfig &base);

    /** Attach caller-owned sources, one per processor. */
    void attachSources(const std::vector<RefSource *> &sources);

    // --- running ---------------------------------------------------------
    /** Run for a simulated duration. */
    void run(double seconds);
    /** Run until every CPU halts (or the cycle limit is hit). */
    void runToCompletion(Cycle max_cycles = 500'000'000);
    bool allHalted() const;

    /**
     * Offline processor `i` mid-run: fence its CPU, run the machine
     * until the CPU has halted and its cache and the bus have drained,
     * then flush the cache's dirty lines to memory.  The rest of the
     * machine keeps running afterwards.  For Topaz workloads call
     * TopazRuntime::offlineCpu(i) first so the thread it was running
     * is requeued elsewhere.  Dies if the drain takes longer than
     * `max_wait` cycles.
     */
    void offlineProcessor(unsigned i, Cycle max_wait = 100'000);

    // --- structure ---------------------------------------------------------
    Simulator &simulator() { return sim; }
    MainMemory &memory() { return mem; }
    MBus &bus() { return *mbus; }
    InterruptController &interrupts() { return *intc; }
    unsigned processorCount() const { return caches.size(); }
    Cache &cache(unsigned i) { return *caches.at(i); }
    TraceCpu &cpu(unsigned i) { return *cpus.at(i); }
    bool hasCpus() const { return !cpus.empty(); }
    /** The primary processor's cache: the DMA path into the machine. */
    Cache &ioCache() { return *caches.at(0); }
    OnChipCache *onChip(unsigned i) { return onchips.at(i).get(); }
    /** The coherence checker, if cfg.coherenceCheck enabled it. */
    check::CoherenceChecker *checker() { return coherenceChecker.get(); }
    /** The fault injector, if cfg.faults is active (else nullptr). */
    fault::FaultInjector *faultInjector() { return injector.get(); }

    // --- aggregate measurements (Table 2 quantities) --------------------
    double seconds() const { return sim.seconds(); }
    std::uint64_t totalCpuRefs() const;
    std::uint64_t totalCpuReads() const;
    std::uint64_t totalCpuWrites() const;
    double busLoad() const { return mbus->load(); }

    /** Render the Figure 1 block diagram for this configuration. */
    std::string topologyArt() const;

    StatGroup &stats() { return statGroup; }

  private:
    FireflyConfig cfg;
    Simulator sim;
    MainMemory mem;
    std::unique_ptr<MBus> mbus;
    std::unique_ptr<InterruptController> intc;
    std::vector<std::unique_ptr<Cache>> caches;
    std::vector<std::unique_ptr<OnChipCache>> onchips;
    std::vector<std::unique_ptr<SyntheticStream>> ownedStreams;
    std::vector<std::unique_ptr<TraceCpu>> cpus;
    std::unique_ptr<check::CoherenceChecker> coherenceChecker;
    std::unique_ptr<fault::FaultInjector> injector;
    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_FIREFLY_SYSTEM_HH
