/**
 * @file
 * Whole-machine configuration.
 *
 * Encodes the two hardware generations described by the paper and
 * validates the constraints the real machines had:
 *
 *   MicroVAX Firefly (1985): 1-7 MicroVAX 78032 processors, 16 KB
 *   direct-mapped caches with 4-byte lines, 4-16 MB of memory in
 *   4 MB modules (the 24-bit limit the paper calls its most serious
 *   compromise).
 *
 *   CVAX Firefly (1987): CVAX 78034 processors, 64 KB caches, 1 KB
 *   on-chip instruction-only cache, up to 128 MB in 32 MB modules -
 *   but the primary (I/O) processor and DMA still reach only the
 *   first 16 MB.
 */

#ifndef FIREFLY_FIREFLY_CONFIG_HH
#define FIREFLY_FIREFLY_CONFIG_HH

#include "cache/cache.hh"
#include "cache/protocol.hh"
#include "cpu/onchip_cache.hh"
#include "fault/fault_injector.hh"
#include "sim/types.hh"

namespace firefly
{

/** Hardware generation. */
enum class MachineVersion
{
    MicroVax,
    Cvax,
};

const char *toString(MachineVersion version);

/** Configuration of one simulated Firefly. */
struct FireflyConfig
{
    MachineVersion version = MachineVersion::MicroVax;

    /** Processor count including the primary (I/O) processor.  The
     *  standard machine shipped with five; SRC built a few sevens;
     *  the model allows up to 16 for scaling experiments. */
    unsigned processors = 5;

    /** Installed memory; rounded up to whole modules. */
    Addr memoryBytes = 16 * 1024 * 1024;

    /** Coherence protocol (Firefly on the real machine; others for
     *  the comparison experiments). */
    ProtocolKind protocol = ProtocolKind::Firefly;

    /** Board cache geometry; {0, 0} selects the version's default
     *  (16 KB/4 B MicroVAX, 64 KB/4 B CVAX). */
    Cache::Geometry cacheGeometry{0, 0};

    /** CVAX only: enable the on-chip cache. */
    bool onChipCacheEnabled = true;
    OnChipCache::DataMode onChipMode =
        OnChipCache::DataMode::InstructionsOnly;

    std::uint64_t seed = 1;

    /** Attach the coherence checker (src/check/): every load is
     *  validated against the golden-memory oracle and protocol
     *  invariants are scanned after every bus transaction.  Purely
     *  observational - statistics are unchanged - but costs time;
     *  off by default. */
    bool coherenceCheck = false;

    /** Fault-injection campaign (src/fault/).  Inactive by default;
     *  when active the system owns a FaultInjector wired into the
     *  bus, memory, and the event-queue watchdog. */
    fault::FaultConfig faults;

    /** Module size for this version. */
    Addr moduleBytes() const;
    /** Effective cache geometry after defaulting. */
    Cache::Geometry effectiveGeometry() const;
    /** Highest address the I/O processor and DMA can reach. */
    Addr ioAddressLimit() const { return 16 * 1024 * 1024; }

    /** Die (fatal) if the configuration violates hardware limits. */
    void validate() const;

    static FireflyConfig microVax(unsigned processors = 5);
    static FireflyConfig cvax(unsigned processors = 5);
};

} // namespace firefly

#endif // FIREFLY_FIREFLY_CONFIG_HH
