#include "firefly/config.hh"

#include "sim/logging.hh"

namespace firefly
{

const char *
toString(MachineVersion version)
{
    switch (version) {
      case MachineVersion::MicroVax: return "MicroVAX";
      case MachineVersion::Cvax: return "CVAX";
    }
    return "?";
}

Addr
FireflyConfig::moduleBytes() const
{
    return version == MachineVersion::MicroVax ? 4u * 1024 * 1024
                                               : 32u * 1024 * 1024;
}

Cache::Geometry
FireflyConfig::effectiveGeometry() const
{
    if (cacheGeometry.cacheBytes != 0)
        return cacheGeometry;
    if (version == MachineVersion::MicroVax)
        return {16 * 1024, 4};   // 4096 four-byte lines
    return {64 * 1024, 4};       // 16384 four-byte lines
}

void
FireflyConfig::validate() const
{
    if (processors < 1 || processors > 16)
        fatal("Firefly needs 1-16 processors, got %u", processors);
    if (processors > 7) {
        warn("%u processors exceeds anything SRC built (the bus "
             "saturates near nine)", processors);
    }

    const Addr max_memory = version == MachineVersion::MicroVax
        ? 16u * 1024 * 1024    // 24-bit physical address
        : 128u * 1024 * 1024;  // four 32 MB modules
    if (memoryBytes == 0 || memoryBytes > max_memory) {
        fatal("%s Firefly supports at most %u MB of memory",
              toString(version), max_memory / (1024 * 1024));
    }

    if (version == MachineVersion::MicroVax && onChipCacheEnabled) {
        fatal("the MicroVAX 78032 has no on-chip cache");
    }
}

FireflyConfig
FireflyConfig::microVax(unsigned processors)
{
    FireflyConfig cfg;
    cfg.version = MachineVersion::MicroVax;
    cfg.processors = processors;
    cfg.memoryBytes = 16 * 1024 * 1024;
    cfg.onChipCacheEnabled = false;
    return cfg;
}

FireflyConfig
FireflyConfig::cvax(unsigned processors)
{
    FireflyConfig cfg;
    cfg.version = MachineVersion::Cvax;
    cfg.processors = processors;
    cfg.memoryBytes = 32 * 1024 * 1024;
    cfg.onChipCacheEnabled = true;
    return cfg;
}

} // namespace firefly
