#include "firefly/system.hh"

#include <sstream>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

FireflySystem::FireflySystem(const FireflyConfig &config)
    : cfg(config), statGroup("system")
{
    cfg.validate();

    // Storage: whole modules, first module is the master.
    const Addr module = cfg.moduleBytes();
    Addr installed = 0;
    while (installed < cfg.memoryBytes) {
        mem.addModule(module);
        installed += module;
    }

    mbus = std::make_unique<MBus>(sim, mem);
    intc = std::make_unique<InterruptController>(sim);

    const Cache::Geometry geom = cfg.effectiveGeometry();
    for (unsigned i = 0; i < cfg.processors; ++i) {
        caches.push_back(std::make_unique<Cache>(
            sim, *mbus, makeProtocol(cfg.protocol), geom,
            "cache" + std::to_string(i)));
        statGroup.addChild(&caches.back()->stats());

        if (cfg.version == MachineVersion::Cvax &&
            cfg.onChipCacheEnabled) {
            OnChipCache::Config oc;
            oc.mode = cfg.onChipMode;
            onchips.push_back(std::make_unique<OnChipCache>(
                oc, "onchip" + std::to_string(i)));
            statGroup.addChild(&onchips.back()->stats());
            if (oc.mode == OnChipCache::DataMode::InstructionsAndData) {
                // A data-caching on-chip cache does not snoop; watch
                // the bus to count (and repair) would-be staleness.
                OnChipCache *chip = onchips.back().get();
                mbus->addWriteObserver(
                    [chip](Addr addr, unsigned words) {
                        chip->observeBusWrite(addr, words);
                    });
            }
        } else {
            onchips.push_back(nullptr);
        }
    }
    statGroup.addChild(&mbus->stats());
    statGroup.addChild(&mem.stats());
    statGroup.addChild(&intc->stats());

    if (cfg.faults.active()) {
        injector = std::make_unique<fault::FaultInjector>(cfg.faults);
        mbus->setFaultInjector(injector.get());
        mem.setFaultInjector(injector.get());
        if (cfg.faults.watchdogCycles != 0) {
            sim.setWatchdog(cfg.faults.watchdogCycles,
                            cfg.faults.throwOnMachineCheck);
        }
        injector->setMachineCheckHook(
            [this](const std::string &unit, const std::string &diag) {
                intc->raiseMachineCheck(unit, diag);
            });
        statGroup.addChild(&injector->stats());
    }

    if (cfg.coherenceCheck) {
        coherenceChecker = std::make_unique<check::CoherenceChecker>(
            sim, *mbus, mem, cfg.protocol);
        for (auto &cache : caches)
            coherenceChecker->watch(*cache);
        for (auto &chip : onchips) {
            if (chip)
                coherenceChecker->watch(*chip);
        }
        statGroup.addChild(&coherenceChecker->stats());
    }
}

void
FireflySystem::attachSyntheticWorkload(const SyntheticConfig &base)
{
    if (!cpus.empty())
        fatal("workload already attached");

    const CpuTiming timing = cfg.version == MachineVersion::MicroVax
        ? CpuTiming::microVax()
        : CpuTiming::cvax();

    for (unsigned i = 0; i < cfg.processors; ++i) {
        SyntheticConfig sc = base;
        // Per-processor program text and private data; the shared
        // region is common to all processors.
        const Addr stride = sc.codeBytes + sc.privateBytes;
        sc.codeBase = base.codeBase + i * stride;
        sc.privateBase = sc.codeBase + sc.codeBytes;
        sc.seed = base.seed + 7919 * i;
        const Addr end = sc.privateBase + sc.privateBytes;
        if (end > mem.sizeBytes()) {
            fatal("synthetic workload footprint 0x%x exceeds memory",
                  end);
        }
        ownedStreams.push_back(std::make_unique<SyntheticStream>(sc));
        cpus.push_back(std::make_unique<TraceCpu>(
            sim, *caches[i], *ownedStreams.back(), timing,
            "cpu" + std::to_string(i), onchips[i].get()));
        statGroup.addChild(&cpus.back()->stats());
    }
}

void
FireflySystem::attachSources(const std::vector<RefSource *> &sources)
{
    if (!cpus.empty())
        fatal("workload already attached");
    if (sources.size() != cfg.processors)
        fatal("need %u sources, got %zu", cfg.processors,
              sources.size());

    const CpuTiming timing = cfg.version == MachineVersion::MicroVax
        ? CpuTiming::microVax()
        : CpuTiming::cvax();

    for (unsigned i = 0; i < cfg.processors; ++i) {
        cpus.push_back(std::make_unique<TraceCpu>(
            sim, *caches[i], *sources[i], timing,
            "cpu" + std::to_string(i), onchips[i].get()));
        statGroup.addChild(&cpus.back()->stats());
    }
}

void
FireflySystem::run(double seconds)
{
    sim.run(secondsToCycles(seconds));
}

void
FireflySystem::runToCompletion(Cycle max_cycles)
{
    const Cycle deadline = sim.now() + max_cycles;
    while (!allHalted() && sim.now() < deadline)
        sim.run(1000);
    if (!allHalted())
        warn("runToCompletion hit the cycle limit");
}

void
FireflySystem::offlineProcessor(unsigned i, Cycle max_wait)
{
    TraceCpu &target = cpu(i);
    Cache &cache = *caches.at(i);
    target.fence();

    // Drain: the fenced CPU finishes any outstanding miss and halts,
    // its cache empties its queue, and the bus forgets it.  The rest
    // of the machine runs normally meanwhile.
    const Cycle deadline = sim.now() + max_wait;
    while (!(target.halted() && cache.idle() && !mbus->busy(&cache))) {
        if (sim.now() >= deadline) {
            fatal("offlineProcessor(%u): drain did not finish in "
                  "%llu cycles", i,
                  static_cast<unsigned long long>(max_wait));
        }
        sim.run(1);
    }

    // With nothing in flight the dirty lines can be written back
    // atomically; other caches never see the fenced board again.
    cache.flushFunctional();
    if (auto *ts = obs::traceSink()) {
        ts->instant(sim.now(), obs::kCatCpu, target.name(),
                    "cpu-offline");
    }
}

bool
FireflySystem::allHalted() const
{
    if (cpus.empty())
        return false;
    for (const auto &cpu : cpus) {
        if (!cpu->halted())
            return false;
    }
    return true;
}

std::uint64_t
FireflySystem::totalCpuRefs() const
{
    return totalCpuReads() + totalCpuWrites();
}

std::uint64_t
FireflySystem::totalCpuReads() const
{
    std::uint64_t total = 0;
    for (const auto &cache : caches)
        total += cache->refsInstr.value() + cache->refsRead.value();
    return total;
}

std::uint64_t
FireflySystem::totalCpuWrites() const
{
    std::uint64_t total = 0;
    for (const auto &cache : caches)
        total += cache->refsWrite.value();
    return total;
}

std::string
FireflySystem::topologyArt() const
{
    // Paper Figure 1, rendered for this configuration.
    std::ostringstream os;
    const unsigned np = cfg.processors;
    os << "Firefly (" << toString(cfg.version) << "), " << np
       << " processor" << (np > 1 ? "s" : "") << ", "
       << mem.sizeBytes() / (1024 * 1024) << " MB, protocol "
       << toString(cfg.protocol) << "\n\n";
    os << "  +--------+";
    for (unsigned i = 1; i < np; ++i)
        os << "  +--------+";
    os << "\n";
    os << "  | CPU  0 |";
    for (unsigned i = 1; i < np; ++i)
        os << "  | CPU  " << i << " |";
    os << "\n";
    os << "  | + FPU  |";
    for (unsigned i = 1; i < np; ++i)
        os << "  | + FPU  |";
    os << "\n";
    os << "  +--------+";
    for (unsigned i = 1; i < np; ++i)
        os << "  +--------+";
    os << "\n";
    os << "  | cache  |";
    for (unsigned i = 1; i < np; ++i)
        os << "  | cache  |";
    os << "\n";
    os << "  +---+----+";
    for (unsigned i = 1; i < np; ++i)
        os << "  +---+----+";
    os << "\n";
    os << "      |";
    for (unsigned i = 1; i < np; ++i)
        os << "           |";
    os << "\n  ====+";
    for (unsigned i = 1; i < np; ++i)
        os << "===========+";
    os << "==========================  MBus (10 MB/s)\n";
    os << "      |\n"
       << "  +---+----+     +-----------------+\n"
       << "  |  QBus  |-----| disk  net  MDC  |\n"
       << "  +--------+     +-----------------+\n"
       << "  (CPU 0 is the primary/I-O processor; storage: ";
    os << mem.moduleCount() << " x "
       << cfg.moduleBytes() / (1024 * 1024) << " MB modules)\n";
    return os.str();
}

} // namespace firefly
