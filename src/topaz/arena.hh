/**
 * @file
 * Simulated-memory layout allocator for the Topaz runtime.
 *
 * The runtime's data structures - TCBs, stacks, run queues, lock
 * words, the shared heap - live at real simulated physical addresses
 * so that executing the runtime generates real coherence traffic.
 * The arena hands out longword-aligned regions from a fixed range.
 */

#ifndef FIREFLY_TOPAZ_ARENA_HH
#define FIREFLY_TOPAZ_ARENA_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace firefly
{

/** A bump allocator over a range of simulated physical memory. */
class MemoryArena
{
  public:
    MemoryArena(Addr base, Addr size_bytes);

    /** Allocate `bytes`, rounded up to longwords; returns the base. */
    Addr allocate(Addr bytes, const std::string &label);

    Addr base() const { return _base; }
    Addr used() const { return next - _base; }
    Addr capacity() const { return _size; }

    /** Labelled allocation map (for debugging / the examples). */
    struct Region
    {
        std::string label;
        Addr base;
        Addr bytes;
    };
    const std::vector<Region> &regions() const { return _regions; }

  private:
    Addr _base;
    Addr _size;
    Addr next;
    std::vector<Region> _regions;
};

} // namespace firefly

#endif // FIREFLY_TOPAZ_ARENA_HH
