#include "topaz/runtime.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace firefly
{

/** Per-processor reference stream fed by the runtime interpreter. */
class TopazPort : public RefSource
{
  public:
    TopazPort(TopazRuntime &rt, unsigned cpu) : rt(rt), cpu(cpu) {}

    CpuStep
    next() override
    {
        if (queue.empty() && !halted)
            rt.advance(cpu);
        if (queue.empty()) {
            halted = true;
            return CpuStep::makeHalt();
        }
        const CpuStep step = queue.front();
        queue.pop_front();
        return step;
    }

    void
    onRefCompleted(const MemRef &ref, Word data) override
    {
        if (armedIncrement && ref.addr == *armedIncrement &&
            !isWrite(ref.type)) {
            armedIncrement.reset();
            // Real read-modify-write: the new value derives from the
            // value the coherent memory system actually returned.
            queue.push_front(
                CpuStep::makeRef({ref.addr, RefType::DataWrite,
                                  data + 1}));
        }
    }

    std::uint64_t instructionsCompleted() const override
    {
        return instrs;
    }

    void push(const CpuStep &step) { queue.push_back(step); }
    void countInstruction() { ++instrs; }
    void armIncrement(Addr addr) { armedIncrement = addr; }
    bool idle() const { return queue.empty(); }

  private:
    TopazRuntime &rt;
    unsigned cpu;
    std::deque<CpuStep> queue;
    std::optional<Addr> armedIncrement;
    std::uint64_t instrs = 0;
    bool halted = false;
};

TopazRuntime::TopazRuntime(const TopazConfig &config)
    : cfg(config), arena(config.arenaBase, config.arenaBytes),
      scheduler(config.cpus, config.policy), rng(config.seed),
      statGroup("topaz")
{
    if (cfg.cpus == 0)
        fatal("Topaz runtime needs at least one CPU");

    nubCodeBase = arena.allocate(nubCodeWords * 4, "nub-code");
    nubPtr.assign(cfg.cpus, 0);
    for (unsigned i = 0; i < cfg.cpus; ++i) {
        readyQueueAddr.push_back(
            arena.allocate(16 * 4, "ready-queue" + std::to_string(i)));
    }
    for (unsigned i = 0; i < cfg.mutexes; ++i)
        mutexes.push_back({arena.allocate(4, "mutex"), -1, {}});
    for (unsigned i = 0; i < cfg.conditions; ++i)
        conditions.push_back({arena.allocate(4, "condition"), {}});
    counterBase = arena.allocate(cfg.counters * 4, "counters");
    sharedHeapBase =
        arena.allocate(cfg.sharedHeapWords * 4, "shared-heap");

    currentThread.assign(cfg.cpus, -1);
    for (unsigned i = 0; i < cfg.cpus; ++i)
        ports.push_back(std::make_unique<TopazPort>(*this, i));

    statGroup.addCounter(&contextSwitches, "context_switches",
                         "thread dispatches and suspensions");
    statGroup.addCounter(&migrations, "migrations",
                         "dispatches on a different processor");
    statGroup.addCounter(&locksAcquired, "locks_acquired",
                         "mutex acquisitions (incl. handoffs)");
    statGroup.addCounter(&lockContentions, "lock_contentions",
                         "acquisitions that had to block");
    statGroup.addCounter(&waits, "waits", "condition waits");
    statGroup.addCounter(&signals, "signals", "condition signals");
    statGroup.addCounter(&broadcasts, "broadcasts",
                         "condition broadcasts");
    statGroup.addCounter(&forks, "forks", "threads forked");
    statGroup.addCounter(&joins, "joins", "joins completed");
    statGroup.addCounter(&yields, "yields",
                         "voluntary and slice-forced yields");
    statGroup.addCounter(&idleSpins, "idle_spins",
                         "idle-loop polls of the ready queue");
    statGroup.addCounter(&orphanWakes, "orphan_wakes",
                         "end-of-run spurious wakeups of condition "
                         "waiters with no signaller left");
    statGroup.addCounter(&deadlockBreaks, "deadlock_breaks",
                         "watchdog force-wakes (0 in a correct run)");
    statGroup.addCounter(&userInstructions, "user_instructions",
                         "application instructions interpreted");
    statGroup.addCounter(&kernelInstructions, "kernel_instructions",
                         "Nub instructions interpreted");
    statGroup.addFormula("steals", "affinity queue steals",
        [this] { return double(scheduler.steals.value()); });
}

TopazRuntime::~TopazRuntime() = default;

unsigned
TopazRuntime::registerProgram(BehaviorProgram program)
{
    programs.push_back(std::move(program));
    return programs.size() - 1;
}

unsigned
TopazRuntime::addThread(unsigned program_id)
{
    if (program_id >= programs.size())
        fatal("fork of unregistered program %u", program_id);
    auto thread = std::make_unique<Thread>();
    thread->id = threads.size();
    thread->programId = program_id;
    thread->iterationsLeft =
        std::max<std::uint64_t>(1, programs[program_id].iterations);
    thread->tcb = arena.allocate(32 * 4, "tcb");
    thread->stackBase =
        arena.allocate(cfg.threadStackWords * 4, "stack");
    thread->codeBase = arena.allocate(cfg.threadCodeWords * 4, "code");
    thread->rng = Rng(cfg.seed + 31 * thread->id + 7);
    thread->lastCpu = nextForkCpu % cfg.cpus;
    nextForkCpu++;
    const unsigned id = thread->id;
    threads.push_back(std::move(thread));
    joinWaiters.emplace_back();
    scheduler.makeReady(id, threads[id]->lastCpu);
    return id;
}

RefSource &
TopazRuntime::port(unsigned cpu)
{
    return *ports.at(cpu);
}

bool
TopazRuntime::done() const
{
    return !threads.empty() && doneCount == threads.size();
}

void
TopazRuntime::offlineCpu(unsigned cpu)
{
    scheduler.setOffline(cpu);
    const int id = currentThread.at(cpu);
    if (id < 0)
        return;
    // Administrative requeue: the processor is being fenced, so the
    // usual context-save reference burst is not emitted - the thread's
    // interpreter state (pc, opProgress) simply moves to an online
    // CPU via the scheduler's redirect.
    Thread &thread = *threads[id];
    thread.state = ThreadState::Ready;
    scheduler.makeReady(thread.id, cpu);
    currentThread[cpu] = -1;
    --runningCount;
    ++contextSwitches;
}

Addr
TopazRuntime::counterAddr(unsigned index) const
{
    if (index >= cfg.counters)
        panic("counter index %u out of range", index);
    return counterBase + 4 * index;
}

Addr
TopazRuntime::heapWordAddr(unsigned word) const
{
    return sharedHeapBase + 4 * (word % cfg.sharedHeapWords);
}

// ---------------------------------------------------------------------------
// Emission helpers.
// ---------------------------------------------------------------------------

void
TopazRuntime::emitRef(unsigned cpu, const MemRef &ref)
{
    ports[cpu]->push(CpuStep::makeRef(ref));
}

void
TopazRuntime::emitCompute(unsigned cpu, std::uint32_t ticks)
{
    if (ticks > 0)
        ports[cpu]->push(CpuStep::makeCompute(ticks));
}

void
TopazRuntime::emitKernel(unsigned cpu, unsigned instructions)
{
    // Nub code: a shared loop all processors fetch from.
    for (unsigned i = 0; i < instructions; ++i) {
        ++kernelInstructions;
        ports[cpu]->countInstruction();
        emitRef(cpu, {nubCodeBase + 4 * nubPtr[cpu],
                      RefType::InstrRead, 0});
        nubPtr[cpu] = (nubPtr[cpu] + 1) % nubCodeWords;
        emitCompute(cpu, 2);
    }
}

void
TopazRuntime::emitUserInstructions(unsigned cpu, Thread &thread,
                                   unsigned instructions)
{
    for (unsigned i = 0; i < instructions; ++i) {
        ++userInstructions;
        ports[cpu]->countInstruction();
        const InstrRefs refs = drawInstrRefs(VaxMix{}, thread.rng);
        for (unsigned f = 0; f < refs.instrReads; ++f) {
            emitRef(cpu, {thread.codeBase + 4 * thread.codePtr,
                          RefType::InstrRead, 0});
            thread.codePtr = (thread.codePtr + 1) % cfg.threadCodeWords;
        }
        // Private accesses mix a hot frame (the top of the stack)
        // with colder spills across the whole stack; the cold misses
        // displace stale copies left in other caches by migration,
        // which is what bounds how long conditional write-through
        // keeps firing on private data.
        const Addr hot_words = std::min<Addr>(cfg.threadStackWords, 64);
        for (unsigned r = 0; r < refs.dataReads; ++r) {
            Addr addr;
            if (thread.rng.chance(0.05)) {
                addr = heapWordAddr(
                    thread.rng.below(cfg.sharedHeapWords));
            } else if (thread.rng.chance(0.80)) {
                addr = thread.stackBase + 4 * thread.rng.below(hot_words);
            } else {
                addr = thread.stackBase +
                       4 * thread.rng.below(cfg.threadStackWords);
            }
            emitRef(cpu, {addr, RefType::DataRead, 0});
        }
        for (unsigned w = 0; w < refs.dataWrites; ++w) {
            Addr addr;
            if (thread.rng.chance(0.06)) {
                addr = heapWordAddr(
                    thread.rng.below(cfg.sharedHeapWords));
            } else if (thread.rng.chance(0.40)) {
                addr = thread.stackBase + 4 * thread.rng.below(hot_words);
            } else {
                addr = thread.stackBase +
                       4 * thread.rng.below(cfg.threadStackWords);
            }
            emitRef(cpu, {addr, RefType::DataWrite, writeSeq++});
        }
        thread.computeDebt += microVaxBaseTpi - 2.13 * hitTicks;
        const auto ticks =
            static_cast<std::uint32_t>(thread.computeDebt);
        thread.computeDebt -= ticks;
        emitCompute(cpu, ticks);
        if (thread.sliceLeft > 0)
            --thread.sliceLeft;
    }
}

void
TopazRuntime::emitTouch(unsigned cpu, Thread &thread, Addr base,
                        Addr words, unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        const Addr addr = base + 4 * thread.rng.below(words);
        emitRef(cpu, {addr, RefType::DataRead, 0});
        emitRef(cpu, {addr, RefType::DataWrite, writeSeq++});
        emitCompute(cpu, 2);
        ports[cpu]->countInstruction();
    }
}

void
TopazRuntime::emitInterlocked(unsigned cpu, Addr word, Word value)
{
    // A VAX interlocked instruction: read then write of the lock
    // word, atomic at runtime level.
    emitRef(cpu, {word, RefType::DataRead, 0});
    emitRef(cpu, {word, RefType::DataWrite, value});
}

// ---------------------------------------------------------------------------
// Scheduler plumbing.
// ---------------------------------------------------------------------------

void
TopazRuntime::wake(unsigned thread_id)
{
    Thread &thread = *threads[thread_id];
    if (thread.state != ThreadState::Blocked)
        panic("waking thread %u in state %d", thread_id,
              static_cast<int>(thread.state));

    if (thread.resumeMutex >= 0) {
        // Mesa semantics: a thread woken from a condition wait must
        // reacquire the mutex before it can run.
        Mutex &mutex = mutexes[thread.resumeMutex];
        if (mutex.holder < 0) {
            mutex.holder = static_cast<int>(thread_id);
            ++locksAcquired;
            thread.resumeMutex = -1;
        } else {
            mutex.waiters.push_back(thread_id);
            return;  // stays blocked until the mutex is released
        }
    }
    thread.state = ThreadState::Ready;
    scheduler.makeReady(thread_id, thread.lastCpu);
}

void
TopazRuntime::switchOut(unsigned cpu, Thread &thread,
                        ThreadState new_state)
{
    // Save context: a burst of TCB writes plus Nub scheduler code.
    emitKernel(cpu, 6);
    for (unsigned i = 0; i < 8; ++i) {
        emitRef(cpu,
                {thread.tcb + 4 * i, RefType::DataWrite, writeSeq++});
    }
    thread.state = new_state;
    if (new_state == ThreadState::Ready) {
        scheduler.makeReady(thread.id, cpu);
        // Ready-queue manipulation is visible, shared traffic.
        emitRef(cpu, {readyQueueAddr[cpu], RefType::DataWrite,
                      writeSeq++});
        emitRef(cpu, {readyQueueAddr[cpu] + 4, RefType::DataWrite,
                      writeSeq++});
    }
    currentThread[cpu] = -1;
    --runningCount;
    ++contextSwitches;
}

void
TopazRuntime::dispatch(unsigned cpu)
{
    const int id = scheduler.pick(cpu);
    if (id < 0)
        return;
    Thread &thread = *threads[id];
    if (thread.everRan && thread.lastCpu != cpu)
        ++migrations;
    thread.everRan = true;
    thread.lastCpu = cpu;
    thread.state = ThreadState::Running;
    thread.sliceLeft = cfg.sliceInstructions;
    currentThread[cpu] = id;
    ++runningCount;
    ++contextSwitches;

    // Restore context: ready-queue pop + TCB reads + Nub code.
    emitRef(cpu, {readyQueueAddr[cpu], RefType::DataRead, 0});
    emitKernel(cpu, 6);
    for (unsigned i = 0; i < 8; ++i)
        emitRef(cpu, {thread.tcb + 4 * i, RefType::DataRead, 0});
}

void
TopazRuntime::breakDeadlockIfStuck(unsigned cpu)
{
    if (runningCount > 0 || scheduler.readyCount() > 0 || done())
        return;
    (void)cpu;

    // The machine is fully idle with blocked threads left.  Threads
    // parked on a *condition* with nobody left to signal them are
    // orphaned waiters (the last Wait of a signalling chain); Mesa
    // condition semantics permit spurious wakeups, so release them.
    for (auto &cond : conditions) {
        while (!cond.waiters.empty()) {
            const unsigned waiter = cond.waiters.front();
            cond.waiters.pop_front();
            ++orphanWakes;
            wake(waiter);
        }
    }
    if (scheduler.readyCount() > 0 || done())
        return;

    // Still stuck: a mutex/join cycle - a genuine workload bug.
    // Force-wake so the simulation terminates; tests assert this
    // never fires.
    warn("Topaz watchdog: all threads blocked; force-waking");
    for (auto &thread : threads) {
        if (thread->state != ThreadState::Blocked)
            continue;
        ++deadlockBreaks;
        for (auto &mutex : mutexes) {
            std::erase(mutex.waiters, thread->id);
            if (mutex.holder == static_cast<int>(thread->id))
                mutex.holder = -1;
        }
        for (auto &cond : conditions)
            std::erase(cond.waiters, thread->id);
        thread->resumeMutex = -1;
        thread->state = ThreadState::Ready;
        scheduler.makeReady(thread->id, thread->lastCpu);
    }
}

// ---------------------------------------------------------------------------
// The interpreter.
// ---------------------------------------------------------------------------

void
TopazRuntime::advance(unsigned cpu)
{
    if (currentThread[cpu] >= 0) {
        interpret(cpu, *threads[currentThread[cpu]]);
        return;
    }
    if (done())
        return;  // port will emit Halt

    dispatch(cpu);
    if (currentThread[cpu] >= 0)
        return;

    breakDeadlockIfStuck(cpu);
    if (done())
        return;

    // Idle loop: poll the ready queue.
    ++idleSpins;
    emitKernel(cpu, 2);
    emitRef(cpu, {readyQueueAddr[cpu], RefType::DataRead, 0});
    emitCompute(cpu, 6);
}

void
TopazRuntime::finishIteration(unsigned cpu, Thread &thread)
{
    emitKernel(cpu, 2);  // loop bookkeeping
    thread.pc = 0;
    if (--thread.iterationsLeft == 0)
        threadDone(cpu, thread);
}

void
TopazRuntime::threadDone(unsigned cpu, Thread &thread)
{
    emitKernel(cpu, 6);
    emitRef(cpu, {thread.tcb, RefType::DataWrite, 0xdead});
    thread.state = ThreadState::Done;
    ++doneCount;
    currentThread[cpu] = -1;
    --runningCount;
    ++contextSwitches;

    for (const unsigned waiter : joinWaiters[thread.id]) {
        if (threads[waiter]->state == ThreadState::Blocked)
            wake(waiter);
    }
    joinWaiters[thread.id].clear();
}

void
TopazRuntime::interpret(unsigned cpu, Thread &thread)
{
    const BehaviorProgram &program = programs[thread.programId];
    if (thread.pc >= program.body.size()) {
        finishIteration(cpu, thread);
        return;
    }
    const BehaviorOp &op = program.body[thread.pc];

    switch (op.kind) {
      case BehaviorOp::Kind::Compute: {
        if (thread.opProgress == 0)
            thread.opProgress = std::max<std::uint32_t>(op.count, 1);
        const auto chunk =
            static_cast<unsigned>(std::min<std::uint64_t>(
                thread.opProgress, 32));
        emitUserInstructions(cpu, thread, chunk);
        thread.opProgress -= chunk;
        if (thread.opProgress == 0)
            ++thread.pc;
        if (thread.sliceLeft == 0 && scheduler.readyCount() > 0) {
            ++yields;
            switchOut(cpu, thread, ThreadState::Ready);
        }
        return;
      }

      case BehaviorOp::Kind::TouchShared: {
        if (thread.opProgress == 0)
            thread.opProgress = std::max<std::uint32_t>(op.count, 1);
        const auto chunk =
            static_cast<unsigned>(std::min<std::uint64_t>(
                thread.opProgress, 16));
        emitTouch(cpu, thread, sharedHeapBase, cfg.sharedHeapWords,
                  chunk);
        thread.opProgress -= chunk;
        if (thread.opProgress == 0)
            ++thread.pc;
        return;
      }

      case BehaviorOp::Kind::TouchPrivate: {
        if (thread.opProgress == 0)
            thread.opProgress = std::max<std::uint32_t>(op.count, 1);
        const auto chunk =
            static_cast<unsigned>(std::min<std::uint64_t>(
                thread.opProgress, 16));
        emitTouch(cpu, thread, thread.stackBase, cfg.threadStackWords,
                  chunk);
        thread.opProgress -= chunk;
        if (thread.opProgress == 0)
            ++thread.pc;
        return;
      }

      case BehaviorOp::Kind::LockAcquire: {
        Mutex &mutex = mutexes.at(op.index);
        emitKernel(cpu, 4);
        emitInterlocked(cpu, mutex.word, 1);
        ++thread.pc;
        if (mutex.holder < 0) {
            mutex.holder = static_cast<int>(thread.id);
            ++locksAcquired;
        } else {
            ++lockContentions;
            mutex.waiters.push_back(thread.id);
            switchOut(cpu, thread, ThreadState::Blocked);
        }
        return;
      }

      case BehaviorOp::Kind::LockRelease: {
        Mutex &mutex = mutexes.at(op.index);
        if (mutex.holder != static_cast<int>(thread.id))
            warn("thread %u releases mutex it does not hold",
                 thread.id);
        emitKernel(cpu, 3);
        emitRef(cpu, {mutex.word, RefType::DataWrite, 0});
        ++thread.pc;
        if (!mutex.waiters.empty()) {
            const unsigned next = mutex.waiters.front();
            mutex.waiters.pop_front();
            mutex.holder = static_cast<int>(next);
            ++locksAcquired;  // direct handoff
            threads[next]->resumeMutex = -1;
            threads[next]->state = ThreadState::Blocked;
            // Wake without the reacquire dance (ownership granted).
            threads[next]->state = ThreadState::Ready;
            scheduler.makeReady(next, threads[next]->lastCpu);
            emitRef(cpu, {readyQueueAddr[threads[next]->lastCpu],
                          RefType::DataWrite, writeSeq++});
        } else {
            mutex.holder = -1;
        }
        return;
      }

      case BehaviorOp::Kind::Wait: {
        Condition &cond = conditions.at(op.index);
        Mutex &mutex = mutexes.at(op.index2);
        emitKernel(cpu, 5);
        emitRef(cpu, {cond.word, RefType::DataWrite, writeSeq++});
        cond.waiters.push_back(thread.id);
        thread.resumeMutex = static_cast<int>(op.index2);
        ++waits;
        ++thread.pc;

        // Atomically release the mutex.
        if (mutex.holder != static_cast<int>(thread.id))
            warn("thread %u waits on mutex it does not hold",
                 thread.id);
        emitRef(cpu, {mutex.word, RefType::DataWrite, 0});
        if (!mutex.waiters.empty()) {
            const unsigned next = mutex.waiters.front();
            mutex.waiters.pop_front();
            mutex.holder = static_cast<int>(next);
            ++locksAcquired;
            threads[next]->state = ThreadState::Ready;
            scheduler.makeReady(next, threads[next]->lastCpu);
        } else {
            mutex.holder = -1;
        }
        switchOut(cpu, thread, ThreadState::Blocked);
        return;
      }

      case BehaviorOp::Kind::Signal: {
        Condition &cond = conditions.at(op.index);
        emitKernel(cpu, 3);
        emitRef(cpu, {cond.word, RefType::DataWrite, writeSeq++});
        ++signals;
        ++thread.pc;
        if (!cond.waiters.empty()) {
            const unsigned waiter = cond.waiters.front();
            cond.waiters.pop_front();
            wake(waiter);
        }
        return;
      }

      case BehaviorOp::Kind::Broadcast: {
        Condition &cond = conditions.at(op.index);
        emitKernel(cpu, 3);
        emitRef(cpu, {cond.word, RefType::DataWrite, writeSeq++});
        ++broadcasts;
        ++thread.pc;
        while (!cond.waiters.empty()) {
            const unsigned waiter = cond.waiters.front();
            cond.waiters.pop_front();
            wake(waiter);
        }
        return;
      }

      case BehaviorOp::Kind::IncrementCounter: {
        emitKernel(cpu, 2);
        const Addr addr = counterAddr(op.index);
        emitRef(cpu, {addr, RefType::DataRead, 0});
        ports[cpu]->armIncrement(addr);
        ports[cpu]->countInstruction();
        ++thread.pc;
        return;
      }

      case BehaviorOp::Kind::Yield: {
        emitKernel(cpu, 3);
        ++yields;
        ++thread.pc;
        switchOut(cpu, thread, ThreadState::Ready);
        return;
      }

      case BehaviorOp::Kind::Fork: {
        emitKernel(cpu, 8);
        const unsigned child = addThread(op.index);
        thread.forkedChildren.push_back(child);
        // Initialising the child's TCB is real shared-memory work.
        for (unsigned i = 0; i < 8; ++i) {
            emitRef(cpu, {threads[child]->tcb + 4 * i,
                          RefType::DataWrite, writeSeq++});
        }
        ++forks;
        ++thread.pc;
        return;
      }

      case BehaviorOp::Kind::JoinAll: {
        emitKernel(cpu, 2);
        for (const unsigned child : thread.forkedChildren) {
            emitRef(cpu, {threads[child]->tcb, RefType::DataRead, 0});
            if (threads[child]->state != ThreadState::Done) {
                // Block on this child and re-run JoinAll when woken
                // (pc is left pointing at this op).
                joinWaiters[child].push_back(thread.id);
                switchOut(cpu, thread, ThreadState::Blocked);
                return;
            }
        }
        joins += thread.forkedChildren.size();
        ++thread.pc;
        return;
      }

      case BehaviorOp::Kind::Join: {
        emitKernel(cpu, 3);
        ++thread.pc;
        if (op.index >= threads.size()) {
            warn("join on unknown thread %u", op.index);
            return;
        }
        emitRef(cpu,
                {threads[op.index]->tcb, RefType::DataRead, 0});
        if (threads[op.index]->state == ThreadState::Done) {
            ++joins;
        } else {
            joinWaiters[op.index].push_back(thread.id);
            ++joins;
            switchOut(cpu, thread, ThreadState::Blocked);
        }
        return;
      }
    }
    panic("unhandled behaviour op");
}

} // namespace firefly
