/**
 * @file
 * The Topaz runtime model.
 *
 * Interprets thread behaviour programs (behavior.hh) on the simulated
 * processors.  Every runtime action - lock acquire/release, condition
 * wait/signal, context switch, fork, join, ready-queue manipulation -
 * *emits the memory references the real Taos Nub would have made*:
 * interlocked accesses to lock words, reads and writes of TCBs,
 * stacks, per-processor ready queues and the shared heap, plus
 * instruction fetches from a shared Nub code region.  Thread user
 * code runs as VAX-mix instruction bundles against the thread's own
 * code loop and stack.  All of these structures live at real
 * simulated physical addresses, so the workload exercises the
 * coherence protocol exactly the way the paper's Threads exerciser
 * exercised the hardware (Table 2).
 *
 * Synchronisation is functionally enforced by the runtime (mutual
 * exclusion is correct by construction); the *data* still flows
 * through the simulated memory system, and the lock-protected shared
 * counters are implemented with real read-modify-write references,
 * so end-to-end coherence is checkable against the counter values in
 * simulated memory.
 */

#ifndef FIREFLY_TOPAZ_RUNTIME_HH
#define FIREFLY_TOPAZ_RUNTIME_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/ref_source.hh"
#include "cpu/vax_mix.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "topaz/arena.hh"
#include "topaz/behavior.hh"
#include "topaz/scheduler.hh"

namespace firefly
{

/** Runtime configuration. */
struct TopazConfig
{
    unsigned cpus = 1;
    SchedulerPolicy policy = SchedulerPolicy::Affinity;

    /** Simulated-memory range for all runtime structures. */
    Addr arenaBase = 0x0040'0000;
    Addr arenaBytes = 8 * 1024 * 1024;

    unsigned mutexes = 8;
    unsigned conditions = 8;
    unsigned counters = 8;
    Addr sharedHeapWords = 1024;
    Addr threadStackWords = 2048;
    Addr threadCodeWords = 128;

    /** Forced yield after this many user instructions (time slice). */
    std::uint64_t sliceInstructions = 2000;

    std::uint64_t seed = 1;
};

/** The runtime: scheduler + interpreter + per-CPU reference ports. */
class TopazRuntime
{
  public:
    explicit TopazRuntime(const TopazConfig &config);
    ~TopazRuntime();

    TopazRuntime(const TopazRuntime &) = delete;
    TopazRuntime &operator=(const TopazRuntime &) = delete;

    /** Register a program so Fork ops can reference it by index. */
    unsigned registerProgram(BehaviorProgram program);

    /** Create a thread running registered program `program_id`.
     *  Returns the thread id (creation order). */
    unsigned addThread(unsigned program_id);

    /** The reference stream of processor `cpu` (attach to TraceCpu). */
    RefSource &port(unsigned cpu);

    /** True once every thread has finished. */
    bool done() const;

    /**
     * Stop scheduling onto `cpu` and requeue its running thread (if
     * any) for an online processor.  The caller is responsible for
     * fencing the simulated processor itself; this only moves the
     * Topaz-level thread state.
     */
    void offlineCpu(unsigned cpu);

    /** Simulated address of shared counter `index` (tests read the
     *  final value from simulated memory). */
    Addr counterAddr(unsigned index) const;

    const TopazConfig &config() const { return cfg; }
    StatGroup &stats() { return statGroup; }

    // Statistics, public for benches.
    Counter contextSwitches;
    Counter migrations;       ///< dispatches on a different CPU
    Counter locksAcquired;
    Counter lockContentions;  ///< acquires that had to block
    Counter waits;
    Counter signals;
    Counter broadcasts;
    Counter forks;
    Counter joins;
    Counter yields;
    Counter idleSpins;
    Counter orphanWakes;      ///< end-of-run spurious wakeups (benign)
    Counter deadlockBreaks;   ///< watchdog force-wakes (should be 0)
    Counter userInstructions;
    Counter kernelInstructions;

  private:
    friend class TopazPort;

    enum class ThreadState : std::uint8_t
    {
        Ready,
        Running,
        Blocked,
        Done,
    };

    struct Thread
    {
        unsigned id = 0;
        unsigned programId = 0;
        std::uint64_t iterationsLeft = 1;
        std::size_t pc = 0;           ///< index into program body
        std::uint64_t opProgress = 0; ///< remaining units of body[pc]
        ThreadState state = ThreadState::Ready;
        unsigned lastCpu = 0;
        bool everRan = false;

        Addr tcb = 0;
        Addr stackBase = 0;
        Addr codeBase = 0;
        Addr codePtr = 0;

        Rng rng{1};
        double computeDebt = 0.0;
        std::uint64_t sliceLeft = 0;

        /** Mutex to reacquire when woken from a condition wait. */
        int resumeMutex = -1;

        /** Threads this thread forked (for JoinAll). */
        std::vector<unsigned> forkedChildren;
    };

    struct Mutex
    {
        Addr word = 0;
        int holder = -1;
        std::deque<unsigned> waiters;
    };

    struct Condition
    {
        Addr word = 0;
        std::deque<unsigned> waiters;
    };

    // --- interpreter ---------------------------------------------------
    /** Refill `cpu`'s step queue (called by the port when empty). */
    void advance(unsigned cpu);
    void dispatch(unsigned cpu);
    void interpret(unsigned cpu, Thread &thread);
    void finishIteration(unsigned cpu, Thread &thread);
    void threadDone(unsigned cpu, Thread &thread);
    void switchOut(unsigned cpu, Thread &thread, ThreadState new_state);
    void wake(unsigned thread_id);
    void breakDeadlockIfStuck(unsigned cpu);

    // --- emission helpers (push steps to a CPU's port) ------------------
    void emitRef(unsigned cpu, const MemRef &ref);
    void emitCompute(unsigned cpu, std::uint32_t ticks);
    void emitKernel(unsigned cpu, unsigned instructions);
    void emitUserInstructions(unsigned cpu, Thread &thread,
                              unsigned instructions);
    void emitTouch(unsigned cpu, Thread &thread, Addr base, Addr words,
                   unsigned count);
    void emitInterlocked(unsigned cpu, Addr word, Word value);

    Addr heapWordAddr(unsigned word) const;

    TopazConfig cfg;
    MemoryArena arena;
    TopazScheduler scheduler;
    Rng rng;

    // Simulated-memory layout.
    Addr nubCodeBase = 0;
    static constexpr Addr nubCodeWords = 512;
    std::vector<Addr> nubPtr;          ///< per-CPU Nub fetch pointer
    std::vector<Addr> readyQueueAddr;  ///< per-CPU queue head word
    Addr sharedHeapBase = 0;
    Addr counterBase = 0;

    std::vector<BehaviorProgram> programs;
    std::vector<std::unique_ptr<Thread>> threads;
    std::vector<Mutex> mutexes;
    std::vector<Condition> conditions;
    std::vector<std::vector<unsigned>> joinWaiters;

    std::vector<int> currentThread;  ///< per CPU, -1 if idle
    std::vector<std::unique_ptr<class TopazPort>> ports;
    unsigned runningCount = 0;
    unsigned doneCount = 0;
    unsigned nextForkCpu = 0;
    Word writeSeq = 1;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_TOPAZ_RUNTIME_HH
