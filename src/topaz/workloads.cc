#include "topaz/workloads.hh"

#include "sim/logging.hh"

namespace firefly
{

std::uint64_t
buildThreadsExerciser(TopazRuntime &runtime,
                      const ExerciserParams &params)
{
    const auto &cfg = runtime.config();
    if (params.groups == 0 || params.threads == 0)
        fatal("exerciser needs threads and groups");
    if (params.groups > cfg.mutexes || params.groups > cfg.conditions ||
        params.groups > cfg.counters) {
        fatal("exerciser needs %u mutexes/conditions/counters",
              params.groups);
    }

    for (unsigned t = 0; t < params.threads; ++t) {
        const unsigned group = t % params.groups;
        BehaviorProgram prog;
        prog.name = "exerciser-" + std::to_string(t);
        prog.iterations = params.iterations;
        prog.body = {
            BehaviorOp::lockAcquire(group),
            BehaviorOp::incrementCounter(group),
            BehaviorOp::touchShared(params.sharedTouches),
            BehaviorOp::signal(group),
            BehaviorOp::wait(group, group),
            BehaviorOp::lockRelease(group),
            BehaviorOp::yield(),
            BehaviorOp::compute(params.computeInstructions),
            BehaviorOp::touchPrivate(params.privateTouches),
        };
        const unsigned prog_id = runtime.registerProgram(prog);
        runtime.addThread(prog_id);
    }
    return static_cast<std::uint64_t>(params.threads) *
           params.iterations;
}

void
buildParallelMake(TopazRuntime &runtime,
                  const ParallelMakeParams &params)
{
    if (params.jobs == 0)
        fatal("parallel make needs jobs");

    // The compilation job: compute-heavy, private data only (each
    // compiler instance reads its own source and writes its own
    // object file).
    BehaviorProgram job;
    job.name = "compile";
    job.iterations = 1;
    job.body = {
        BehaviorOp::compute(
            static_cast<std::uint32_t>(params.jobInstructions / 2)),
        BehaviorOp::touchPrivate(params.jobPrivateTouches),
        BehaviorOp::compute(
            static_cast<std::uint32_t>(params.jobInstructions / 2)),
        BehaviorOp::touchPrivate(params.jobPrivateTouches),
    };
    const unsigned job_id = runtime.registerProgram(job);

    // The coordinator (make itself): fork everything, then join.
    BehaviorProgram make;
    make.name = "make";
    make.iterations = 1;
    for (unsigned i = 0; i < params.jobs; ++i)
        make.body.push_back(BehaviorOp::fork(job_id));
    make.body.push_back(BehaviorOp::compute(100));
    make.body.push_back(BehaviorOp::joinAll());
    const unsigned make_id = runtime.registerProgram(make);
    runtime.addThread(make_id);
}

void
buildPipeline(TopazRuntime &runtime, const PipelineParams &params)
{
    const auto &cfg = runtime.config();
    if (params.stages < 2)
        fatal("pipeline needs at least two stages");
    if (params.stages > cfg.mutexes)
        fatal("pipeline needs %u mutexes", params.stages);

    // Stage i takes items from buffer i (guarded by mutex i) and
    // deposits into buffer i+1.  Signals announce deposits; the
    // workload is deliberately wait-free (signals with no waiter are
    // lost, which is fine - this models the data movement of an
    // awk|grep|sed pipe, not its flow control).
    for (unsigned s = 0; s < params.stages; ++s) {
        BehaviorProgram stage;
        stage.name = "stage-" + std::to_string(s);
        stage.iterations = params.items;
        if (s > 0) {
            stage.body.push_back(BehaviorOp::lockAcquire(s - 1));
            stage.body.push_back(BehaviorOp::touchShared(2));
            stage.body.push_back(BehaviorOp::lockRelease(s - 1));
        }
        stage.body.push_back(BehaviorOp::compute(params.workPerItem));
        if (s + 1 < params.stages) {
            stage.body.push_back(BehaviorOp::lockAcquire(s));
            stage.body.push_back(BehaviorOp::touchShared(2));
            stage.body.push_back(
                BehaviorOp::signal(s % cfg.conditions));
            stage.body.push_back(BehaviorOp::lockRelease(s));
        }
        stage.body.push_back(BehaviorOp::yield());
        runtime.addThread(runtime.registerProgram(stage));
    }
}

} // namespace firefly
