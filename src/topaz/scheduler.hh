/**
 * @file
 * The Topaz thread scheduler's ready queues.
 *
 * The paper: "the Topaz scheduler goes to some effort to avoid
 * process migration", because under conditional write-through a
 * migrated thread's writable data sits in two caches and every write
 * keeps being written through until one copy is displaced.  Two
 * policies are modelled:
 *
 *   Affinity - per-processor ready queues; a woken thread is queued
 *   on the processor it last ran on, and an idle processor steals
 *   from others only when its own queue is empty (each steal is a
 *   migration).
 *
 *   Global - one FIFO queue served by every processor; threads
 *   migrate freely.  This is the policy the paper argues against,
 *   used as the X3 ablation baseline.
 */

#ifndef FIREFLY_TOPAZ_SCHEDULER_HH
#define FIREFLY_TOPAZ_SCHEDULER_HH

#include <deque>
#include <vector>

#include "sim/stats.hh"

namespace firefly
{

/** Migration policy. */
enum class SchedulerPolicy
{
    Affinity,
    Global,
};

const char *toString(SchedulerPolicy policy);

/** Ready-queue structure shared by the simulated processors. */
class TopazScheduler
{
  public:
    TopazScheduler(unsigned cpus, SchedulerPolicy policy);

    /** Queue a runnable thread; `preferred_cpu` is its last CPU. */
    void makeReady(unsigned thread, unsigned preferred_cpu);

    /**
     * Dequeue work for `cpu`.  Returns the thread id or -1.  Under
     * Affinity, taking from another processor's queue counts as a
     * steal.
     */
    int pick(unsigned cpu);

    /** Runnable threads currently queued. */
    std::size_t readyCount() const;

    /**
     * Take `cpu` out of service: its ready queue drains to the
     * lowest-numbered online CPU, future makeReady calls preferring
     * it are redirected there, and pick() returns nothing for it.
     * At least one CPU must stay online.
     */
    void setOffline(unsigned cpu);
    bool isOffline(unsigned cpu) const { return offline.at(cpu); }

    SchedulerPolicy policy() const { return _policy; }

    Counter steals;    ///< affinity: picks from a foreign queue
    Counter enqueues;

  private:
    void traceDispatch(unsigned thread, unsigned cpu, bool migrated);
    unsigned firstOnline() const;

    SchedulerPolicy _policy;
    std::vector<std::deque<unsigned>> queues;  ///< per CPU (Affinity)
    std::deque<unsigned> globalQueue;          ///< Global policy
    std::vector<bool> offline;                 ///< fenced CPUs
};

} // namespace firefly

#endif // FIREFLY_TOPAZ_SCHEDULER_HH
