#include "topaz/arena.hh"

#include "sim/logging.hh"

namespace firefly
{

MemoryArena::MemoryArena(Addr base, Addr size_bytes)
    : _base(base), _size(size_bytes), next(base)
{
    if (base % bytesPerWord != 0)
        fatal("arena base must be longword aligned");
}

Addr
MemoryArena::allocate(Addr bytes, const std::string &label)
{
    const Addr rounded = (bytes + bytesPerWord - 1) & ~(bytesPerWord - 1);
    if (next + rounded > _base + _size) {
        fatal("Topaz arena exhausted allocating %u bytes for '%s' "
              "(used %u of %u)", rounded, label.c_str(), used(),
              _size);
    }
    const Addr result = next;
    next += rounded;
    _regions.push_back({label, result, rounded});
    return result;
}

} // namespace firefly
