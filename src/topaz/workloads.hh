/**
 * @file
 * Canned Topaz workloads.
 *
 *  - The Threads exerciser of paper Table 2: "forks a number of
 *    threads, each of which then executes and checks the results of
 *    Threads package primitives.  There is a great deal of
 *    synchronization and process migration, since the threads
 *    deliberately block and reschedule themselves."
 *
 *  - The parallel make of Section 6: a coordinator forks independent
 *    compilation jobs and joins them - coarse-grained parallelism
 *    with almost no sharing.
 *
 *  - A pipeline workload (Section 2's awk | grep | sed example):
 *    stages coupled through shared buffers guarded by mutex/condition
 *    pairs.
 */

#ifndef FIREFLY_TOPAZ_WORKLOADS_HH
#define FIREFLY_TOPAZ_WORKLOADS_HH

#include "topaz/runtime.hh"

namespace firefly
{

/** Parameters for the Table 2 Threads exerciser. */
struct ExerciserParams
{
    unsigned threads = 12;
    std::uint64_t iterations = 150;
    /** User instructions computed per iteration. */
    unsigned computeInstructions = 150;
    unsigned sharedTouches = 2;
    unsigned privateTouches = 10;
    /** Distinct mutex/condition groups threads are spread over. */
    unsigned groups = 4;
};

/**
 * Build the Threads exerciser: `threads` workers spread over
 * `groups` mutex/condition pairs.  Each iteration locks, bumps a
 * lock-protected shared counter (a real read-modify-write through
 * the coherent memory), touches shared and private data, signals and
 * waits on the group condition (deliberate blocking/rescheduling),
 * yields, and computes.
 *
 * @return the expected final sum of the shared counters, so callers
 *         can check end-to-end mutual exclusion + coherence.
 */
std::uint64_t buildThreadsExerciser(TopazRuntime &runtime,
                                    const ExerciserParams &params);

/** Parameters for the parallel make workload. */
struct ParallelMakeParams
{
    unsigned jobs = 8;
    /** Instructions per compilation job. */
    std::uint64_t jobInstructions = 4000;
    unsigned jobPrivateTouches = 64;
};

/**
 * Build the parallel make: thread 0 is the coordinator; it forks
 * `jobs` compilations and joins them all.  Compilations are compute-
 * heavy and private (the coarse-grained parallelism of Section 6).
 */
void buildParallelMake(TopazRuntime &runtime,
                       const ParallelMakeParams &params);

/** Parameters for the pipeline workload. */
struct PipelineParams
{
    unsigned stages = 3;
    std::uint64_t items = 200;
    unsigned workPerItem = 40;
};

/**
 * Build a pipeline of `stages` threads passing items through shared
 * buffers (producer/consumer with mutex+condition per link).
 */
void buildPipeline(TopazRuntime &runtime, const PipelineParams &params);

} // namespace firefly

#endif // FIREFLY_TOPAZ_WORKLOADS_HH
