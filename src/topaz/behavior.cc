#include "topaz/behavior.hh"

namespace firefly
{

BehaviorOp
BehaviorOp::compute(std::uint32_t instructions)
{
    return {Kind::Compute, 0, 0, instructions};
}

BehaviorOp
BehaviorOp::touchShared(std::uint32_t words)
{
    return {Kind::TouchShared, 0, 0, words};
}

BehaviorOp
BehaviorOp::touchPrivate(std::uint32_t words)
{
    return {Kind::TouchPrivate, 0, 0, words};
}

BehaviorOp
BehaviorOp::lockAcquire(std::uint32_t mutex)
{
    return {Kind::LockAcquire, mutex, 0, 0};
}

BehaviorOp
BehaviorOp::lockRelease(std::uint32_t mutex)
{
    return {Kind::LockRelease, mutex, 0, 0};
}

BehaviorOp
BehaviorOp::wait(std::uint32_t cond, std::uint32_t mutex)
{
    return {Kind::Wait, cond, mutex, 0};
}

BehaviorOp
BehaviorOp::signal(std::uint32_t cond)
{
    return {Kind::Signal, cond, 0, 0};
}

BehaviorOp
BehaviorOp::broadcast(std::uint32_t cond)
{
    return {Kind::Broadcast, cond, 0, 0};
}

BehaviorOp
BehaviorOp::incrementCounter(std::uint32_t counter)
{
    return {Kind::IncrementCounter, counter, 0, 0};
}

BehaviorOp
BehaviorOp::yield()
{
    return {Kind::Yield, 0, 0, 0};
}

BehaviorOp
BehaviorOp::fork(std::uint32_t program)
{
    return {Kind::Fork, program, 0, 0};
}

BehaviorOp
BehaviorOp::join(std::uint32_t thread)
{
    return {Kind::Join, thread, 0, 0};
}

BehaviorOp
BehaviorOp::joinAll()
{
    return {Kind::JoinAll, 0, 0, 0};
}

} // namespace firefly
