#include "topaz/scheduler.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

const char *
toString(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Affinity: return "affinity";
      case SchedulerPolicy::Global: return "global";
    }
    return "?";
}

TopazScheduler::TopazScheduler(unsigned cpus, SchedulerPolicy policy)
    : _policy(policy), queues(cpus), offline(cpus, false)
{
    if (cpus == 0)
        fatal("scheduler needs at least one CPU");
}

unsigned
TopazScheduler::firstOnline() const
{
    for (unsigned i = 0; i < offline.size(); ++i) {
        if (!offline[i])
            return i;
    }
    fatal("all CPUs offline");
}

void
TopazScheduler::setOffline(unsigned cpu)
{
    if (offline.at(cpu))
        return;
    offline[cpu] = true;
    firstOnline();  // fatal if this was the last online CPU
    // Redistribute the dead CPU's ready queue; the stranded threads
    // requeue on the first online CPU (steals spread them from there).
    auto &dead = queues.at(cpu);
    auto &target = queues.at(firstOnline());
    while (!dead.empty()) {
        target.push_back(dead.front());
        dead.pop_front();
    }
}

void
TopazScheduler::makeReady(unsigned thread, unsigned preferred_cpu)
{
    ++enqueues;
    // The scheduler is not Clocked, so it reads the published trace
    // clock rather than a Simulator reference.
    if (auto *ts = obs::traceSink()) {
        ts->instant(obs::traceNow(), obs::kCatSched, "sched", "ready",
                    {{"thread", std::to_string(thread)},
                     {"cpu", std::to_string(preferred_cpu)}});
    }
    if (_policy == SchedulerPolicy::Global) {
        globalQueue.push_back(thread);
        return;
    }
    if (offline.at(preferred_cpu))
        preferred_cpu = firstOnline();
    queues.at(preferred_cpu).push_back(thread);
}

int
TopazScheduler::pick(unsigned cpu)
{
    if (offline.at(cpu))
        return -1;
    if (_policy == SchedulerPolicy::Global) {
        if (globalQueue.empty())
            return -1;
        const unsigned thread = globalQueue.front();
        globalQueue.pop_front();
        traceDispatch(thread, cpu, false);
        return static_cast<int>(thread);
    }

    // Affinity: own queue first.
    auto &own = queues.at(cpu);
    if (!own.empty()) {
        const unsigned thread = own.front();
        own.pop_front();
        traceDispatch(thread, cpu, false);
        return static_cast<int>(thread);
    }
    // Steal the oldest work from the longest foreign queue.
    std::size_t best = 0, best_len = 0;
    for (std::size_t i = 0; i < queues.size(); ++i) {
        if (i != cpu && queues[i].size() > best_len) {
            best = i;
            best_len = queues[i].size();
        }
    }
    if (best_len == 0)
        return -1;
    const unsigned thread = queues[best].front();
    queues[best].pop_front();
    ++steals;
    traceDispatch(thread, cpu, true);
    return static_cast<int>(thread);
}

void
TopazScheduler::traceDispatch(unsigned thread, unsigned cpu,
                              bool migrated)
{
    auto *ts = obs::traceSink();
    if (!ts)
        return;
    ts->instant(obs::traceNow(), obs::kCatSched, "sched",
                migrated ? "migrate" : "dispatch",
                {{"thread", std::to_string(thread)},
                 {"cpu", std::to_string(cpu)}});
}

std::size_t
TopazScheduler::readyCount() const
{
    std::size_t count = globalQueue.size();
    for (const auto &queue : queues)
        count += queue.size();
    return count;
}

} // namespace firefly
