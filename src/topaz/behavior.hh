/**
 * @file
 * Thread behaviour programs.
 *
 * Topaz application threads are modelled as small behaviour programs:
 * sequences of operations (compute, touch memory, lock, wait/signal,
 * fork, join, yield) that the runtime interprets on the simulated
 * processors, emitting the memory references each operation would
 * perform.  The Threads-exerciser of paper Table 2, the parallel
 * make of Section 6, and the RPC pipelines are all expressed in this
 * vocabulary.
 */

#ifndef FIREFLY_TOPAZ_BEHAVIOR_HH
#define FIREFLY_TOPAZ_BEHAVIOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace firefly
{

/** One behaviour operation. */
struct BehaviorOp
{
    enum class Kind : std::uint8_t
    {
        /** Execute `count` instructions of user code (VAX mix against
         *  the thread's own code loop, stack and private data). */
        Compute,
        /** Read/modify/write `count` words of the shared heap. */
        TouchShared,
        /** Read/modify/write `count` words of thread-private data. */
        TouchPrivate,
        /** Acquire mutex `index` (blocking if held). */
        LockAcquire,
        /** Release mutex `index`. */
        LockRelease,
        /** Atomically release mutex `index2` and wait on condition
         *  `index`; reacquires the mutex before continuing. */
        Wait,
        /** Signal condition `index` (wake one waiter). */
        Signal,
        /** Broadcast condition `index` (wake all waiters). */
        Broadcast,
        /** Increment the shared heap counter `index` under no lock -
         *  uses the value actually read from simulated memory, so
         *  coherent mutual exclusion is end-to-end checkable. */
        IncrementCounter,
        /** Put self at the back of the ready queue. */
        Yield,
        /** Fork a new thread running registered program `index`. */
        Fork,
        /** Block until thread `index` (by creation order) is done. */
        Join,
        /** Block until every thread this thread forked is done. */
        JoinAll,
    };

    Kind kind;
    std::uint32_t index = 0;   ///< mutex/cond/program/thread index
    std::uint32_t index2 = 0;  ///< Wait: the mutex to release
    std::uint32_t count = 0;   ///< Compute/Touch amounts

    // -- convenience constructors ---------------------------------------
    static BehaviorOp compute(std::uint32_t instructions);
    static BehaviorOp touchShared(std::uint32_t words);
    static BehaviorOp touchPrivate(std::uint32_t words);
    static BehaviorOp lockAcquire(std::uint32_t mutex);
    static BehaviorOp lockRelease(std::uint32_t mutex);
    static BehaviorOp wait(std::uint32_t cond, std::uint32_t mutex);
    static BehaviorOp signal(std::uint32_t cond);
    static BehaviorOp broadcast(std::uint32_t cond);
    static BehaviorOp incrementCounter(std::uint32_t counter);
    static BehaviorOp yield();
    static BehaviorOp fork(std::uint32_t program);
    static BehaviorOp join(std::uint32_t thread);
    static BehaviorOp joinAll();
};

/** A thread's whole life: `body` repeated `iterations` times. */
struct BehaviorProgram
{
    std::string name = "thread";
    std::vector<BehaviorOp> body;
    std::uint64_t iterations = 1;
};

} // namespace firefly

#endif // FIREFLY_TOPAZ_BEHAVIOR_HH
