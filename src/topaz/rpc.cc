#include "topaz/rpc.hh"

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

RpcEngine::RpcEngine(Simulator &sim, QBus &qbus,
                     EthernetController &nic, Config config)
    : sim(sim), qbus(qbus), nic(nic), cfg(config), statGroup("rpc")
{
    if (cfg.threads == 0)
        fatal("RPC engine needs at least one call slot");
    statGroup.addCounter(&callsCompleted, "calls", "RPCs completed");
    statGroup.addCounter(&bytesTransferred, "bytes",
                         "request payload bytes transferred");
    statGroup.addCounter(&callsFailed, "calls_failed",
                         "RPCs abandoned after transmit failure");
    statGroup.addFormula("bandwidth_mbps",
                         "payload bandwidth in Mbit/s",
                         [this] { return bandwidthMbps(); });
}

Addr
RpcEngine::txBuffer(unsigned slot) const
{
    return cfg.bufferBase + slot * 4096;
}

Addr
RpcEngine::rxBuffer(unsigned slot) const
{
    return cfg.bufferBase + slot * 4096 + 2048;
}

void
RpcEngine::start()
{
    running = true;
    startCycle = sim.now();
    lastOutstandingChange = sim.now();
    for (unsigned slot = 0; slot < cfg.threads; ++slot)
        issueCall(slot);
}

void
RpcEngine::issueCall(unsigned slot)
{
    if (!running)
        return;
    outstandingIntegral +=
        static_cast<double>(outstanding) *
        (sim.now() - lastOutstandingChange);
    lastOutstandingChange = sim.now();
    ++outstanding;

    // Each slot serves one call at a time, so the call renders as a
    // slice on its own "rpc.slot<N>" track, send to reply-unmarshal.
    if (auto *ts = obs::traceSink()) {
        ts->begin(sim.now(), obs::kCatRpc,
                  "rpc.slot" + std::to_string(slot), "call",
                  {{"bytes", std::to_string(cfg.requestBytes)}});
    }

    // Client software: marshal the arguments, then hand the packet
    // to the controller (the DEQNA DMAs it out of main memory).
    sim.events().schedule(
        sim.now() + cfg.clientOverheadCycles / 2, [this, slot] {
            nic.transmit(txBuffer(slot), cfg.requestBytes,
                         [this, slot](IoStatus status) {
                             if (status != IoStatus::Ok) {
                                 abandonCall(slot);
                                 return;
                             }
                             serverAccept(slot);
                         });
        }, "rpc marshal");
}

void
RpcEngine::abandonCall(unsigned slot)
{
    // The request never made it onto the wire; give up on this call
    // and start a fresh one on the slot (Topaz RPC retransmits).
    ++callsFailed;
    if (auto *ts = obs::traceSink()) {
        ts->end(sim.now(), obs::kCatRpc,
                "rpc.slot" + std::to_string(slot));
    }
    outstandingIntegral += static_cast<double>(outstanding) *
                           (sim.now() - lastOutstandingChange);
    lastOutstandingChange = sim.now();
    --outstanding;
    issueCall(slot);
}

void
RpcEngine::serverAccept(unsigned slot)
{
    sim.events().schedule(sim.now() + cfg.serverLatencyCycles,
                          [this, slot] {
                              serverPending.push_back(slot);
                              if (!serverBusy)
                                  serverDone(serverPending.front());
                          });
}

void
RpcEngine::serverDone(unsigned slot)
{
    serverBusy = true;
    sim.events().schedule(sim.now() + cfg.serverBusyCycles, [this,
                                                             slot] {
        serverPending.pop_front();
        // Reply comes back over the wire into the client's posted
        // receive buffer (a real DMA into simulated memory).
        nic.addReceiveBuffer(rxBuffer(slot), 2048);
        nic.injectFromWire(
            std::vector<Word>((cfg.replyBytes + 3) / 4, 0xaa55aa55),
            cfg.replyBytes);
        replyDelivered(slot);
        if (!serverPending.empty())
            serverDone(serverPending.front());
        else
            serverBusy = false;
    });
}

void
RpcEngine::replyDelivered(unsigned slot)
{
    // Client unmarshal + thread wakeup, then reuse the slot.
    sim.events().schedule(
        sim.now() + cfg.clientOverheadCycles / 2, [this, slot] {
            ++callsCompleted;
            if (auto *ts = obs::traceSink()) {
                ts->end(sim.now(), obs::kCatRpc,
                        "rpc.slot" + std::to_string(slot));
            }
            bytesTransferred += cfg.requestBytes;
            outstandingIntegral +=
                static_cast<double>(outstanding) *
                (sim.now() - lastOutstandingChange);
            lastOutstandingChange = sim.now();
            --outstanding;
            issueCall(slot);
        });
}

double
RpcEngine::bandwidthMbps() const
{
    const Cycle elapsed = sim.now() - startCycle;
    if (elapsed == 0)
        return 0.0;
    const double seconds = elapsed * 100e-9;
    return bytesTransferred.value() * 8.0 / seconds / 1e6;
}

double
RpcEngine::averageOutstanding() const
{
    const Cycle elapsed = sim.now() - startCycle;
    if (elapsed == 0)
        return 0.0;
    const double integral = outstandingIntegral +
        static_cast<double>(outstanding) *
            (sim.now() - lastOutstandingChange);
    return integral / elapsed;
}

} // namespace firefly
