/**
 * @file
 * The Topaz RPC data-transfer engine.
 *
 * "Communication is implemented uniformly through the use of remote
 * procedure calls... We have found that our RPC data transfer
 * protocol, with multiple outstanding calls, achieves very high
 * performance.  The remote server can sustain a bandwidth of 4.6
 * megabits per second using an average of three concurrent threads."
 *
 * The engine models the client side faithfully on the simulated
 * machine - per-call marshalling overhead, packet DMA out of main
 * memory through the I/O processor's cache, 10 Mbit/s wire time,
 * reply DMA back in - and the remote server as a latency/throughput
 * model (per-call processing occupies the server serially; the
 * remote machine itself is not simulated).  Each "thread" is one
 * outstanding call slot, matching the paper's usage.
 */

#ifndef FIREFLY_TOPAZ_RPC_HH
#define FIREFLY_TOPAZ_RPC_HH

#include <deque>

#include "io/ethernet.hh"

namespace firefly
{

/** Pipelined RPC client + modelled remote server. */
class RpcEngine
{
  public:
    struct Config
    {
        /** Concurrent outstanding calls (the paper's "threads"). */
        unsigned threads = 3;
        unsigned requestBytes = 1500;
        unsigned replyBytes = 96;

        /** Client software per call: marshal, dispatch, unmarshal. */
        Cycle clientOverheadCycles = 14000;  // 1.4 ms
        /** Server occupancy per call (serialised; the bottleneck). */
        Cycle serverBusyCycles = 26000;      // 2.6 ms
        /** Fixed network-stack latency at the server. */
        Cycle serverLatencyCycles = 2000;    // 0.2 ms

        /** QBus address of the first per-call buffer (tx then rx,
         *  each rounded to 2 KB). */
        Addr bufferBase = 0x0020'0000;
    };

    RpcEngine(Simulator &sim, QBus &qbus, EthernetController &nic,
              Config config);

    /** Launch all call slots; they loop until stop(). */
    void start();
    void stop() { running = false; }

    /** Payload bandwidth achieved so far (request data, Mbit/s). */
    double bandwidthMbps() const;
    /** Mean outstanding calls over the run so far. */
    double averageOutstanding() const;

    StatGroup &stats() { return statGroup; }

    Counter callsCompleted;
    Counter bytesTransferred;
    /** Calls whose request transmit failed (device timeout past the
     *  NIC's retry budget); the slot reissues a fresh call. */
    Counter callsFailed;

  private:
    void issueCall(unsigned slot);
    void abandonCall(unsigned slot);
    void serverAccept(unsigned slot);
    void serverDone(unsigned slot);
    void replyDelivered(unsigned slot);
    Addr txBuffer(unsigned slot) const;
    Addr rxBuffer(unsigned slot) const;

    Simulator &sim;
    QBus &qbus;
    EthernetController &nic;
    Config cfg;

    bool running = false;
    Cycle startCycle = 0;
    unsigned outstanding = 0;
    double outstandingIntegral = 0.0;
    Cycle lastOutstandingChange = 0;

    /** Server model: calls queue and are served one at a time. */
    unsigned serverQueue = 0;
    bool serverBusy = false;
    std::deque<unsigned> serverPending;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_TOPAZ_RPC_HH
