#include "io/ethernet.hh"

#include "fault/fault_injector.hh"
#include "sim/logging.hh"

namespace firefly
{

EthernetController::EthernetController(Simulator &sim, QBus &qbus,
                                       std::string name)
    : EthernetController(sim, qbus, std::move(name), Config{})
{
}

EthernetController::EthernetController(Simulator &sim, QBus &qbus,
                                       std::string name, Config config)
    : sim(sim), qbus(qbus), cfg(config), name(std::move(name)),
      statGroup(this->name)
{
    if (cfg.lineMbps <= 0)
        fatal("Ethernet line rate must be positive");
    statGroup.addCounter(&txPackets, "tx_packets",
                         "packets transmitted");
    statGroup.addCounter(&txBytes, "tx_bytes", "bytes transmitted");
    statGroup.addCounter(&rxPackets, "rx_packets", "packets received");
    statGroup.addCounter(&rxBytes, "rx_bytes", "bytes received");
    statGroup.addCounter(&rxDropped, "rx_dropped",
                         "packets dropped for lack of a buffer");
}

Cycle
EthernetController::wireCycles(unsigned bytes) const
{
    // bits / (Mbit/s) = microseconds; 10 cycles per microsecond.
    const double bits = 8.0 * bytes + cfg.interFrameGapBits;
    return static_cast<Cycle>(bits / cfg.lineMbps * 10.0) + 1;
}

void
EthernetController::transmit(Addr qbus_addr, unsigned bytes,
                             TxCallback done)
{
    if (bytes == 0)
        fatal("cannot transmit an empty packet");
    txQueue.push_back({qbus_addr, bytes, std::move(done)});
    if (!txBusy)
        pumpTx();
}

void
EthernetController::pumpTx()
{
    if (txQueue.empty()) {
        txBusy = false;
        return;
    }
    txBusy = true;
    TxRequest req = txQueue.front();
    txQueue.pop_front();

    sim.events().schedule(
        sim.now() + cfg.setupCycles,
        [this, req = std::move(req)]() mutable {
            startTx(std::move(req));
        },
        "ethernet tx setup");
}

void
EthernetController::startTx(TxRequest req)
{
    const unsigned words = (req.bytes + 3) / 4;
    const Addr addr = req.addr;
    qbus.dmaRead(addr, words, [this, req = std::move(req)](
                                  IoStatus status,
                                  std::vector<Word> payload) mutable {
        if (status != IoStatus::Ok) {
            auto *inj = qbus.engine().faultInjector();
            ++req.attempt;
            if (inj && req.attempt < inj->config().deviceRetryBudget) {
                ++inj->deviceRetries;
                sim.events().schedule(
                    sim.now() + inj->deviceBackoff(req.attempt),
                    [this, req = std::move(req)]() mutable {
                        startTx(std::move(req));
                    },
                    "ethernet tx retry");
                return;
            }
            if (inj)
                ++inj->deviceFailures;
            warn("%s: transmit of %u bytes failed after %u attempts",
                 name.c_str(), req.bytes, req.attempt);
            if (req.done)
                req.done(IoStatus::TimedOut);
            pumpTx();
            return;
        }
        const Cycle wire = wireCycles(req.bytes);
        sim.events().schedule(
            sim.now() + wire,
            [this, req = std::move(req),
             payload = std::move(payload)]() mutable {
                ++txPackets;
                txBytes += req.bytes;
                if (peer)
                    peer->injectFromWire(std::move(payload),
                                         req.bytes);
                if (req.done)
                    req.done(IoStatus::Ok);
                pumpTx();
            },
            "ethernet wire transfer");
    });
}

void
EthernetController::addReceiveBuffer(Addr qbus_addr,
                                     unsigned capacity_bytes)
{
    rxBuffers.push_back({qbus_addr, capacity_bytes});
}

void
EthernetController::setReceiveHandler(RxHandler handler)
{
    rxHandler = std::move(handler);
}

void
EthernetController::connectTo(EthernetController *other)
{
    peer = other;
}

void
EthernetController::injectFromWire(std::vector<Word> payload,
                                   unsigned bytes)
{
    if (rxBuffers.empty()) {
        ++rxDropped;
        return;
    }
    const RxBuffer buffer = rxBuffers.front();
    if (bytes > buffer.capacity) {
        ++rxDropped;
        return;
    }
    rxBuffers.pop_front();
    const Addr addr = buffer.addr;
    qbus.dmaWrite(addr, std::move(payload),
                  [this, addr, bytes](IoStatus status) {
        if (status != IoStatus::Ok) {
            // The receive DMA hung; the packet is lost on the floor
            // exactly as on a real wire - the sender's upper layers
            // retransmit.  The posted buffer was consumed.
            ++rxDropped;
            return;
        }
        ++rxPackets;
        rxBytes += bytes;
        if (rxHandler)
            rxHandler(addr, bytes);
    });
}

} // namespace firefly
