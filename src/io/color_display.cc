#include "io/color_display.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace firefly
{

ColorFrameBuffer::ColorFrameBuffer()
    : pixels(static_cast<std::size_t>(widthPx) * heightPx, 0)
{
    // A sensible default map: index == grey level.
    for (unsigned i = 0; i < 256; ++i)
        colormap[i] = (i << 16) | (i << 8) | i;
}

std::uint8_t
ColorFrameBuffer::pixel(unsigned x, unsigned y) const
{
    if (x >= widthPx || y >= heightPx)
        return 0;
    return pixels[static_cast<std::size_t>(y) * widthPx + x];
}

void
ColorFrameBuffer::setPixel(unsigned x, unsigned y, std::uint8_t index)
{
    if (x >= widthPx || y >= heightPx)
        return;
    pixels[static_cast<std::size_t>(y) * widthPx + x] = index;
}

void
ColorFrameBuffer::clip(PixelRect &rect) const
{
    if (rect.x >= widthPx || rect.y >= heightPx) {
        rect.width = rect.height = 0;
        return;
    }
    rect.width = std::min<unsigned>(rect.width, widthPx - rect.x);
    rect.height = std::min<unsigned>(rect.height, heightPx - rect.y);
}

std::uint64_t
ColorFrameBuffer::fill(const PixelRect &rect_in, std::uint8_t index)
{
    PixelRect rect = rect_in;
    clip(rect);
    for (unsigned row = 0; row < rect.height; ++row) {
        auto *line = &pixels[static_cast<std::size_t>(rect.y + row) *
                                 widthPx + rect.x];
        std::fill(line, line + rect.width, index);
    }
    return static_cast<std::uint64_t>(rect.width) * rect.height;
}

std::uint64_t
ColorFrameBuffer::copy(const PixelRect &src_in, unsigned dst_x,
                       unsigned dst_y)
{
    PixelRect src = src_in;
    clip(src);
    if (dst_x >= widthPx || dst_y >= heightPx)
        return 0;
    const unsigned width = std::min<unsigned>(src.width, widthPx - dst_x);
    const unsigned height =
        std::min<unsigned>(src.height, heightPx - dst_y);

    const bool backward =
        dst_y > src.y || (dst_y == src.y && dst_x > src.x);
    for (unsigned row = 0; row < height; ++row) {
        const unsigned r = backward ? height - 1 - row : row;
        const auto *from =
            &pixels[static_cast<std::size_t>(src.y + r) * widthPx +
                    src.x];
        auto *to = &pixels[static_cast<std::size_t>(dst_y + r) *
                               widthPx + dst_x];
        if (backward)
            std::copy_backward(from, from + width, to + width);
        else
            std::copy(from, from + width, to);
    }
    return static_cast<std::uint64_t>(width) * height;
}

void
ColorFrameBuffer::setColor(std::uint8_t index, std::uint32_t rgb)
{
    colormap[index] = rgb & 0xffffffu;
}

std::uint32_t
ColorFrameBuffer::color(std::uint8_t index) const
{
    return colormap[index];
}

std::uint32_t
ColorFrameBuffer::rgbAt(unsigned x, unsigned y) const
{
    return colormap[pixel(x, y)];
}

std::uint64_t
ColorFrameBuffer::countIndex(const PixelRect &rect_in,
                             std::uint8_t index) const
{
    PixelRect rect = rect_in;
    clip(rect);
    std::uint64_t count = 0;
    for (unsigned row = 0; row < rect.height; ++row) {
        for (unsigned col = 0; col < rect.width; ++col)
            count += pixel(rect.x + col, rect.y + row) == index;
    }
    return count;
}

ColorDisplayController::ColorDisplayController(Simulator &sim,
                                               QBus &qbus,
                                               const Config &config)
    : sim(sim), qbus(qbus), cfg(config), statGroup("cdc")
{
    if (cfg.queueEntries == 0)
        fatal("color controller needs a non-empty work queue");
    statGroup.addCounter(&commandsExecuted, "commands",
                         "work-queue commands executed");
    statGroup.addCounter(&pixelsPainted, "pixels", "pixels painted");
    statGroup.addCounter(&polls, "polls", "work-queue polls");
    statGroup.addCounter(&busyCycles, "busy_cycles",
                         "cycles spent executing commands");
}

void
ColorDisplayController::start()
{
    if (started)
        return;
    started = true;
    sim.events().schedule(sim.now() + cfg.pollIntervalCycles,
                          [this] { poll(); });
}

std::array<Word, 8>
ColorDisplayController::encodeFill(unsigned x, unsigned y, unsigned w,
                                   unsigned h, std::uint8_t index)
{
    return {static_cast<Word>(CdcOpcode::FillColor), x, y, w, h,
            index, 0, 0};
}

std::array<Word, 8>
ColorDisplayController::encodeCopyRect(unsigned sx, unsigned sy,
                                       unsigned dx, unsigned dy,
                                       unsigned w, unsigned h)
{
    return {static_cast<Word>(CdcOpcode::CopyRect), sx, sy, dx, dy, w,
            h, 0};
}

std::array<Word, 8>
ColorDisplayController::encodeLoadColorMap(unsigned first,
                                           unsigned count,
                                           Addr qbus_addr)
{
    return {static_cast<Word>(CdcOpcode::LoadColorMap), first, count,
            qbus_addr, 0, 0, 0, 0};
}

std::array<Word, 8>
ColorDisplayController::encodePutImage(Addr qbus_addr,
                                       unsigned stride_words,
                                       unsigned dx, unsigned dy,
                                       unsigned w, unsigned h)
{
    return {static_cast<Word>(CdcOpcode::PutImage), qbus_addr,
            stride_words, dx, dy, w, h, 0};
}

void
ColorDisplayController::poll()
{
    ++polls;
    qbus.dmaRead(cfg.queueBase, 2, [this](IoStatus status,
                                          std::vector<Word> header) {
        if (status != IoStatus::Ok || header[0] == header[1]) {
            // Timed-out header read: retry at the poll cadence.
            sim.events().schedule(sim.now() + cfg.pollIntervalCycles,
                                  [this] { poll(); }, "cdc poll");
            return;
        }
        const Addr entry_addr =
            cfg.queueBase + 8 + (header[1] % cfg.queueEntries) * 32;
        qbus.dmaRead(entry_addr, 8, [this](IoStatus st,
                                           std::vector<Word> entry) {
            if (st != IoStatus::Ok) {
                // Entry unconsumed; the next poll rereads it.
                sim.events().schedule(
                    sim.now() + cfg.pollIntervalCycles,
                    [this] { poll(); }, "cdc poll");
                return;
            }
            executeEntry(std::move(entry));
        });
    });
}

void
ColorDisplayController::executeEntry(std::vector<Word> entry)
{
    ++commandsExecuted;
    Cycle busy = cfg.commandOverheadCycles;

    switch (static_cast<CdcOpcode>(entry[0])) {
      case CdcOpcode::Nop:
        break;

      case CdcOpcode::FillColor: {
        const auto pixels =
            fb.fill({entry[1], entry[2], entry[3], entry[4]},
                    static_cast<std::uint8_t>(entry[5]));
        pixelsPainted += pixels;
        busy += static_cast<Cycle>(pixels / cfg.pixelsPerCycle);
        break;
      }

      case CdcOpcode::CopyRect: {
        const auto pixels =
            fb.copy({entry[1], entry[2], entry[5], entry[6]},
                    entry[3], entry[4]);
        pixelsPainted += pixels;
        busy += static_cast<Cycle>(pixels / cfg.pixelsPerCycle);
        break;
      }

      case CdcOpcode::LoadColorMap: {
        const unsigned first = entry[1];
        const unsigned count = std::min<unsigned>(entry[2], 256);
        qbus.dmaRead(entry[3], count,
                     [this, first, count](IoStatus st,
                                          std::vector<Word> map) {
                         if (st != IoStatus::Ok) {
                             finishCommand(cfg.commandOverheadCycles);
                             return;
                         }
                         for (unsigned i = 0; i < count; ++i) {
                             fb.setColor(
                                 static_cast<std::uint8_t>(
                                     (first + i) & 0xff),
                                 map[i]);
                         }
                         finishCommand(cfg.commandOverheadCycles +
                                       count);
                     });
        return;
      }

      case CdcOpcode::PutImage: {
        const unsigned stride = entry[2];
        const unsigned dx = entry[3], dy = entry[4];
        const unsigned w = entry[5], h = entry[6];
        qbus.dmaRead(entry[1], stride * h,
                     [this, stride, dx, dy, w,
                      h](IoStatus st, std::vector<Word> data) {
                         if (st != IoStatus::Ok) {
                             finishCommand(cfg.commandOverheadCycles);
                             return;
                         }
                         std::uint64_t painted = 0;
                         for (unsigned row = 0; row < h; ++row) {
                             for (unsigned col = 0; col < w; ++col) {
                                 const Word word =
                                     data[row * stride + col / 4];
                                 const auto index =
                                     static_cast<std::uint8_t>(
                                         (word >> (8 * (col % 4))) &
                                         0xff);
                                 fb.setPixel(dx + col, dy + row,
                                             index);
                                 ++painted;
                             }
                         }
                         pixelsPainted += painted;
                         finishCommand(
                             cfg.commandOverheadCycles +
                             static_cast<Cycle>(painted /
                                                cfg.pixelsPerCycle));
                     });
        return;
      }

      default:
        warn("color controller: unknown opcode %u", entry[0]);
        break;
    }
    finishCommand(busy);
}

void
ColorDisplayController::finishCommand(Cycle busy)
{
    busyCycles += busy;
    sim.events().schedule(sim.now() + busy, [this] {
        qbus.dmaRead(cfg.queueBase, 2, [this](IoStatus status,
                                              std::vector<Word> header) {
            if (status != IoStatus::Ok) {
                // Consumer index stays put; the entry re-executes on
                // the next poll (at-least-once, as on the hardware).
                sim.events().schedule(
                    sim.now() + cfg.pollIntervalCycles,
                    [this] { poll(); }, "cdc poll");
                return;
            }
            qbus.dmaWrite(cfg.queueBase + 4, {header[1] + 1},
                          [this](IoStatus) { poll(); });
        });
    }, "cdc command finish");
}

} // namespace firefly
