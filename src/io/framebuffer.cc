#include "io/framebuffer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace firefly
{

const char *
toString(RasterOp op)
{
    switch (op) {
      case RasterOp::Copy: return "copy";
      case RasterOp::Or: return "or";
      case RasterOp::Xor: return "xor";
      case RasterOp::AndNot: return "and-not";
      case RasterOp::Set: return "set";
      case RasterOp::Clear: return "clear";
    }
    return "?";
}

FrameBuffer::FrameBuffer()
    : bits(static_cast<std::size_t>(heightPx) * wordsPerRow, 0)
{
}

bool
FrameBuffer::pixel(unsigned x, unsigned y) const
{
    if (x >= widthPx || y >= heightPx)
        return false;
    const Word word = bits[y * wordsPerRow + x / 32];
    return (word >> (31 - x % 32)) & 1;
}

void
FrameBuffer::setPixel(unsigned x, unsigned y, bool value)
{
    if (x >= widthPx || y >= heightPx)
        return;
    Word &word = bits[y * wordsPerRow + x / 32];
    const Word mask = 1u << (31 - x % 32);
    if (value)
        word |= mask;
    else
        word &= ~mask;
}

bool
FrameBuffer::combine(bool dst, bool src, RasterOp op)
{
    switch (op) {
      case RasterOp::Copy: return src;
      case RasterOp::Or: return dst || src;
      case RasterOp::Xor: return dst != src;
      case RasterOp::AndNot: return dst && !src;
      case RasterOp::Set: return true;
      case RasterOp::Clear: return false;
    }
    return dst;
}

void
FrameBuffer::clip(PixelRect &rect) const
{
    if (rect.x >= widthPx || rect.y >= heightPx) {
        rect.width = rect.height = 0;
        return;
    }
    rect.width = std::min<unsigned>(rect.width, widthPx - rect.x);
    rect.height = std::min<unsigned>(rect.height, heightPx - rect.y);
}

std::uint64_t
FrameBuffer::blt(const PixelRect &src_in, unsigned dst_x,
                 unsigned dst_y, RasterOp op)
{
    PixelRect src = src_in;
    clip(src);
    if (dst_x >= widthPx || dst_y >= heightPx)
        return 0;
    const unsigned width =
        std::min<unsigned>(src.width, widthPx - dst_x);
    const unsigned height =
        std::min<unsigned>(src.height, heightPx - dst_y);

    // Pick the scan direction so overlapping copies are correct.
    const bool backward =
        dst_y > src.y || (dst_y == src.y && dst_x > src.x);
    for (unsigned row = 0; row < height; ++row) {
        const unsigned r = backward ? height - 1 - row : row;
        for (unsigned col = 0; col < width; ++col) {
            const unsigned c = backward ? width - 1 - col : col;
            const bool s = pixel(src.x + c, src.y + r);
            const bool d = pixel(dst_x + c, dst_y + r);
            setPixel(dst_x + c, dst_y + r, combine(d, s, op));
        }
    }
    return static_cast<std::uint64_t>(width) * height;
}

std::uint64_t
FrameBuffer::bltFrom(const Word *src_bits, unsigned src_stride_words,
                     const PixelRect &src, unsigned dst_x,
                     unsigned dst_y, RasterOp op)
{
    if (dst_x >= widthPx || dst_y >= heightPx)
        return 0;
    const unsigned width =
        std::min<unsigned>(src.width, widthPx - dst_x);
    const unsigned height =
        std::min<unsigned>(src.height, heightPx - dst_y);
    for (unsigned row = 0; row < height; ++row) {
        for (unsigned col = 0; col < width; ++col) {
            const unsigned sx = src.x + col;
            const Word word =
                src_bits[(src.y + row) * src_stride_words + sx / 32];
            const bool s = (word >> (31 - sx % 32)) & 1;
            const bool d = pixel(dst_x + col, dst_y + row);
            setPixel(dst_x + col, dst_y + row, combine(d, s, op));
        }
    }
    return static_cast<std::uint64_t>(width) * height;
}

std::uint64_t
FrameBuffer::fill(const PixelRect &rect_in, RasterOp op)
{
    PixelRect rect = rect_in;
    clip(rect);
    for (unsigned row = 0; row < rect.height; ++row) {
        for (unsigned col = 0; col < rect.width; ++col) {
            const unsigned x = rect.x + col;
            const unsigned y = rect.y + row;
            setPixel(x, y, combine(pixel(x, y), true, op));
        }
    }
    return static_cast<std::uint64_t>(rect.width) * rect.height;
}

std::uint64_t
FrameBuffer::litPixels(const PixelRect &rect_in) const
{
    PixelRect rect = rect_in;
    clip(rect);
    std::uint64_t count = 0;
    for (unsigned row = 0; row < rect.height; ++row) {
        for (unsigned col = 0; col < rect.width; ++col)
            count += pixel(rect.x + col, rect.y + row);
    }
    return count;
}

std::string
FrameBuffer::ascii(const PixelRect &rect_in, unsigned step) const
{
    PixelRect rect = rect_in;
    clip(rect);
    if (step == 0)
        step = 1;
    std::string out;
    for (unsigned row = 0; row < rect.height; row += step) {
        for (unsigned col = 0; col < rect.width; col += step)
            out += pixel(rect.x + col, rect.y + row) ? '#' : '.';
        out += '\n';
    }
    return out;
}

} // namespace firefly
