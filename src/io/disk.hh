/**
 * @file
 * The disk controller (DEC RQDX3 model).
 *
 * "A buffered controller for rigid and floppy disks (RQDX3)" - a DMA
 * device on the QBus.  The model keeps real sector contents in its
 * own backing store, serves requests one at a time, and charges
 * seek + rotational + transfer time.  Rotational position is derived
 * deterministically from simulated time, so latencies are realistic
 * and reproducible.
 */

#ifndef FIREFLY_IO_DISK_HH
#define FIREFLY_IO_DISK_HH

#include <deque>
#include <functional>

#include "io/qbus.hh"
#include "mem/sparse_memory.hh"

namespace firefly
{

/** An RQDX3-like disk controller with one attached drive. */
class DiskController
{
  public:
    struct Geometry
    {
        unsigned cylinders = 1024;
        unsigned heads = 8;
        unsigned sectorsPerTrack = 17;
        unsigned bytesPerSector = 512;

        unsigned
        totalSectors() const
        {
            return cylinders * heads * sectorsPerTrack;
        }
    };

    struct Config
    {
        Geometry geometry{};
        double rpm = 3600.0;
        double seekBaseMs = 4.0;     ///< head settle
        double seekPerCylinderMs = 0.03;
        double transferKBps = 625.0; ///< media rate
    };

    /** Completion callback: Ok, or TimedOut after the DMA engine's
     *  retry budget is exhausted (the request fails gracefully). */
    using Callback = std::function<void(IoStatus)>;

    DiskController(Simulator &sim, QBus &qbus, std::string name);
    DiskController(Simulator &sim, QBus &qbus, std::string name,
                   Config config);

    /** Queue a read of `sectors` sectors at `lba` into memory. */
    void read(unsigned lba, unsigned sectors, Addr qbus_buffer,
              Callback done);

    /** Queue a write of `sectors` sectors at `lba` from memory. */
    void write(unsigned lba, unsigned sectors, Addr qbus_buffer,
               Callback done);

    // --- functional access for tests / seeding filesystem images ----
    Word peekWord(unsigned lba, unsigned word_in_sector) const;
    void pokeWord(unsigned lba, unsigned word_in_sector, Word value);

    const Config &config() const { return cfg; }
    StatGroup &stats() { return statGroup; }

    Counter reads, writes, sectorsMoved;
    Accumulator seekCylinders;
    Accumulator serviceCycles;

  private:
    struct Request
    {
        bool isWrite;
        unsigned lba;
        unsigned sectors;
        Addr buffer;
        Callback done;
        Cycle queued;
        unsigned attempt = 0;  ///< timed-out DMA transfers so far
    };

    unsigned cylinderOf(unsigned lba) const;
    double rotationFractionAt(Cycle when) const;
    Cycle mechanicalDelay(const Request &req) const;
    void pump();
    void transfer(Request req);
    /** A DMA transfer timed out: retry with backoff, or fail the
     *  request (callback with TimedOut) once the budget is spent. */
    void retryOrFail(Request req);

    Simulator &sim;
    QBus &qbus;
    Config cfg;
    SparseMemory media;
    unsigned currentCylinder = 0;
    bool busy = false;
    std::deque<Request> queue;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_IO_DISK_HH
