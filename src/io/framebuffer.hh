/**
 * @file
 * The MDC's frame buffer and BitBlt engine.
 *
 * One megapixel of video RAM, 1 bit per pixel: "Three-quarters of
 * the frame buffer holds the display bitmap, while the rest is
 * available to the display manager" - rows 0-767 are the visible
 * 1024 x 768 screen, rows 768-1023 are off-screen storage (the font
 * cache lives there).  BitBlt is the only drawing primitive, exactly
 * as on the real controller ("Because they are less generally
 * useful, the MDC provides no facilities for more complex drawing
 * primitives such as splines or conics").
 */

#ifndef FIREFLY_IO_FRAMEBUFFER_HH
#define FIREFLY_IO_FRAMEBUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace firefly
{

/** BitBlt combination rules (the Smalltalk raster ops the MDC used). */
enum class RasterOp : std::uint8_t
{
    Copy,    ///< dst = src
    Or,      ///< dst |= src (paint)
    Xor,     ///< dst ^= src (invert under mask)
    AndNot,  ///< dst &= ~src (erase)
    Set,     ///< dst = 1 (ignore src)
    Clear,   ///< dst = 0 (ignore src)
};

const char *toString(RasterOp op);

/** A rectangle in pixel coordinates. */
struct PixelRect
{
    unsigned x = 0;
    unsigned y = 0;
    unsigned width = 0;
    unsigned height = 0;
};

/** One-bit-per-pixel bitmap with BitBlt. */
class FrameBuffer
{
  public:
    static constexpr unsigned widthPx = 1024;
    static constexpr unsigned heightPx = 1024;
    static constexpr unsigned visibleRows = 768;
    static constexpr unsigned wordsPerRow = widthPx / 32;

    FrameBuffer();

    bool pixel(unsigned x, unsigned y) const;
    void setPixel(unsigned x, unsigned y, bool value);

    /**
     * Blt within the frame buffer.  Source and destination may
     * overlap (the copy direction is chosen so overlap is handled
     * correctly, as real BitBlt did).
     * @return pixels processed (for the timing model).
     */
    std::uint64_t blt(const PixelRect &src, unsigned dst_x,
                      unsigned dst_y, RasterOp op);

    /**
     * Blt from an external bitmap (rows of 32-pixel words, row
     * stride `src_stride_words`) into the frame buffer.
     */
    std::uint64_t bltFrom(const Word *src_bits,
                          unsigned src_stride_words,
                          const PixelRect &src, unsigned dst_x,
                          unsigned dst_y, RasterOp op);

    /** Fill a rectangle with a raster op (Set/Clear/Xor). */
    std::uint64_t fill(const PixelRect &rect, RasterOp op);

    /** Count of lit pixels in a rectangle (for tests). */
    std::uint64_t litPixels(const PixelRect &rect) const;

    /** Render a region as ASCII art ('#' = lit), downsampled. */
    std::string ascii(const PixelRect &rect, unsigned step = 1) const;

    const std::vector<Word> &raw() const { return bits; }

  private:
    static bool combine(bool dst, bool src, RasterOp op);
    void clip(PixelRect &rect) const;

    std::vector<Word> bits;  ///< row-major, MSB-first within a word
};

} // namespace firefly

#endif // FIREFLY_IO_FRAMEBUFFER_HH
