/**
 * @file
 * The shared DMA path from the QBus into Firefly memory.
 *
 * All QBus devices reach main memory through the I/O processor's
 * cache ("DMA references to main memory are made through the I/O
 * processor's cache (although DMA misses do not allocate)").  The
 * engine paces transfers at the QBus block-mode rate - one longword
 * per `cyclesPerWord` bus cycles (default 12 = 1.2 us, i.e. ~3.3
 * MB/s, the paper's "fully loaded QBus consumes about 30% of the
 * main memory bandwidth").  Device requests are served FIFO, one
 * word at a time, so concurrent devices share the QBus fairly.
 */

#ifndef FIREFLY_IO_DMA_ENGINE_HH
#define FIREFLY_IO_DMA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cache/cache.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace firefly
{

namespace fault
{
class FaultInjector;
}

/**
 * Completion status of an I/O request.  Devices time out when the
 * fault injector decides the operation hangs; the requester sees the
 * timeout after `deviceTimeoutCycles` and decides whether to retry.
 */
enum class IoStatus : std::uint8_t
{
    Ok,
    TimedOut,
};

const char *toString(IoStatus status);

/** Paced word-at-a-time DMA through the I/O processor's cache. */
class DmaEngine
{
  public:
    using ReadCallback = std::function<void(IoStatus, std::vector<Word>)>;
    using WriteCallback = std::function<void(IoStatus)>;

    /**
     * @param io_cache  the primary processor's cache.
     * @param io_limit  highest physical address DMA may touch (the
     *                  first 16 MB on every Firefly).
     * @param cycles_per_word  QBus pacing (12 = 3.33 MB/s).
     */
    DmaEngine(Simulator &sim, Cache &io_cache, Addr io_limit,
              Cycle cycles_per_word = 12);

    /** Read `count` longwords starting at physical `addr`. */
    void readWords(Addr addr, unsigned count, ReadCallback done);

    /** Write `data` starting at physical `addr`. */
    void writeWords(Addr addr, std::vector<Word> data,
                    WriteCallback done);

    bool idle() const { return requests.empty() && !wordInFlight; }

    Cycle cyclesPerWord() const { return pacing; }

    /**
     * Attach the fault injector (nullptr detaches).  Requests can
     * then time out: the transfer never starts and the callback fires
     * with IoStatus::TimedOut after the configured timeout, so a hung
     * device surfaces as a completion the requester can retry instead
     * of a wedged event queue.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector = inj; }
    fault::FaultInjector *faultInjector() const { return injector; }

    StatGroup &stats() { return statGroup; }

    Counter wordsRead;
    Counter wordsWritten;
    Counter requestCount;

  private:
    struct Request
    {
        bool isWrite;
        Addr addr;
        unsigned remaining;
        std::vector<Word> data;  ///< write source / read accumulator
        ReadCallback readDone;
        WriteCallback writeDone;
        bool serviceTraced = false;  ///< begin event already emitted
    };

    void pump();
    void checkAddress(Addr addr, unsigned count) const;
    /** Draw the per-request timeout fault; counts and traces it.
     *  The caller schedules the timed-out completion. */
    bool injectTimeout(Addr addr, bool is_write);

    Simulator &sim;
    Cache &ioCache;
    Addr ioLimit;
    Cycle pacing;

    std::deque<Request> requests;
    bool wordInFlight = false;
    fault::FaultInjector *injector = nullptr;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_IO_DMA_ENGINE_HH
