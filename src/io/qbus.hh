/**
 * @file
 * The DEC QBus, as used in the Firefly.
 *
 * The QBus carries all I/O.  Its 22-bit address space is mapped into
 * the Firefly's physical space by mapping registers controlled by
 * the I/O processor (paper Section 3): 8 KB pages, MicroVAX II
 * style.  Only the primary processor board connects to it, and DMA
 * can only reach the first 16 MB of physical memory - the hardware
 * asymmetry the paper spends Section 3 discussing.
 */

#ifndef FIREFLY_IO_QBUS_HH
#define FIREFLY_IO_QBUS_HH

#include <vector>

#include "io/dma_engine.hh"

namespace firefly
{

/** QBus address-space constants. */
constexpr Addr qbusAddressBits = 22;
constexpr Addr qbusSpaceBytes = 1u << qbusAddressBits;  // 4 MB
constexpr Addr qbusPageBytes = 8 * 1024;
constexpr unsigned qbusMapEntries = qbusSpaceBytes / qbusPageBytes;

/** The QBus: mapping registers + the shared DMA engine. */
class QBus
{
  public:
    /**
     * @param io_cache the primary processor's cache (the DMA path).
     * @param io_limit highest reachable physical address (16 MB).
     */
    QBus(Simulator &sim, Cache &io_cache, Addr io_limit);

    /**
     * Program mapping register `page`: QBus page -> physical page.
     * Only the I/O processor did this on the real machine.
     */
    void setMapping(unsigned page, Addr physical_page_base);

    /** Identity-map the whole QBus window onto physical 0..4 MB. */
    void identityMap();

    /** Translate a QBus address; fatal on an unmapped page. */
    Addr translate(Addr qbus_addr);

    /** The paced DMA path (QBus addresses are translated first). */
    void dmaRead(Addr qbus_addr, unsigned words,
                 DmaEngine::ReadCallback done);
    void dmaWrite(Addr qbus_addr, std::vector<Word> data,
                  DmaEngine::WriteCallback done);

    DmaEngine &engine() { return dma; }
    StatGroup &stats() { return statGroup; }

  private:
    struct MapEntry
    {
        bool valid = false;
        Addr physicalPage = 0;
    };

    DmaEngine dma;
    std::vector<MapEntry> map;
    StatGroup statGroup;
    Counter translations;
    Counter mapWrites;
};

} // namespace firefly

#endif // FIREFLY_IO_QBUS_HH
