#include "io/qbus.hh"

#include "sim/logging.hh"

namespace firefly
{

QBus::QBus(Simulator &sim, Cache &io_cache, Addr io_limit)
    : dma(sim, io_cache, io_limit), map(qbusMapEntries),
      statGroup("qbus")
{
    statGroup.addCounter(&translations, "translations",
                         "QBus address translations");
    statGroup.addCounter(&mapWrites, "map_writes",
                         "mapping register updates");
    statGroup.addChild(&dma.stats());
}

void
QBus::setMapping(unsigned page, Addr physical_page_base)
{
    if (page >= qbusMapEntries)
        fatal("QBus mapping register %u does not exist", page);
    if (physical_page_base % qbusPageBytes != 0)
        fatal("QBus mapping target 0x%x not page aligned",
              physical_page_base);
    ++mapWrites;
    map[page] = {true, physical_page_base};
}

void
QBus::identityMap()
{
    for (unsigned page = 0; page < qbusMapEntries; ++page)
        setMapping(page, page * qbusPageBytes);
}

Addr
QBus::translate(Addr qbus_addr)
{
    if (qbus_addr >= qbusSpaceBytes)
        fatal("address 0x%x beyond the 22-bit QBus space", qbus_addr);
    const MapEntry &entry = map[qbus_addr / qbusPageBytes];
    if (!entry.valid)
        fatal("DMA through unmapped QBus page 0x%x",
              qbus_addr / qbusPageBytes);
    ++translations;
    return entry.physicalPage + qbus_addr % qbusPageBytes;
}

void
QBus::dmaRead(Addr qbus_addr, unsigned words,
              DmaEngine::ReadCallback done)
{
    dma.readWords(translate(qbus_addr), words, std::move(done));
}

void
QBus::dmaWrite(Addr qbus_addr, std::vector<Word> data,
               DmaEngine::WriteCallback done)
{
    dma.writeWords(translate(qbus_addr), std::move(data),
                   std::move(done));
}

} // namespace firefly
