#include "io/mdc.hh"

#include "sim/logging.hh"

namespace firefly
{

namespace
{

/**
 * Classic 5x7 column font, ASCII 32..126.  Each glyph is five column
 * bytes, bit 0 at the top.  Rendered into the 8x16 font-cache cells
 * with a 1,4 offset, approximating the 10-point screen font.
 */
const unsigned char font5x7[95][5] = {
    {0x00,0x00,0x00,0x00,0x00}, {0x00,0x00,0x5F,0x00,0x00},
    {0x00,0x07,0x00,0x07,0x00}, {0x14,0x7F,0x14,0x7F,0x14},
    {0x24,0x2A,0x7F,0x2A,0x12}, {0x23,0x13,0x08,0x64,0x62},
    {0x36,0x49,0x55,0x22,0x50}, {0x00,0x05,0x03,0x00,0x00},
    {0x00,0x1C,0x22,0x41,0x00}, {0x00,0x41,0x22,0x1C,0x00},
    {0x08,0x2A,0x1C,0x2A,0x08}, {0x08,0x08,0x3E,0x08,0x08},
    {0x00,0x50,0x30,0x00,0x00}, {0x08,0x08,0x08,0x08,0x08},
    {0x00,0x60,0x60,0x00,0x00}, {0x20,0x10,0x08,0x04,0x02},
    {0x3E,0x51,0x49,0x45,0x3E}, {0x00,0x42,0x7F,0x40,0x00},
    {0x42,0x61,0x51,0x49,0x46}, {0x21,0x41,0x45,0x4B,0x31},
    {0x18,0x14,0x12,0x7F,0x10}, {0x27,0x45,0x45,0x45,0x39},
    {0x3C,0x4A,0x49,0x49,0x30}, {0x01,0x71,0x09,0x05,0x03},
    {0x36,0x49,0x49,0x49,0x36}, {0x06,0x49,0x49,0x29,0x1E},
    {0x00,0x36,0x36,0x00,0x00}, {0x00,0x56,0x36,0x00,0x00},
    {0x00,0x08,0x14,0x22,0x41}, {0x14,0x14,0x14,0x14,0x14},
    {0x41,0x22,0x14,0x08,0x00}, {0x02,0x01,0x51,0x09,0x06},
    {0x32,0x49,0x79,0x41,0x3E}, {0x7E,0x11,0x11,0x11,0x7E},
    {0x7F,0x49,0x49,0x49,0x36}, {0x3E,0x41,0x41,0x41,0x22},
    {0x7F,0x41,0x41,0x22,0x1C}, {0x7F,0x49,0x49,0x49,0x41},
    {0x7F,0x09,0x09,0x01,0x01}, {0x3E,0x41,0x41,0x51,0x32},
    {0x7F,0x08,0x08,0x08,0x7F}, {0x00,0x41,0x7F,0x41,0x00},
    {0x20,0x40,0x41,0x3F,0x01}, {0x7F,0x08,0x14,0x22,0x41},
    {0x7F,0x40,0x40,0x40,0x40}, {0x7F,0x02,0x04,0x02,0x7F},
    {0x7F,0x04,0x08,0x10,0x7F}, {0x3E,0x41,0x41,0x41,0x3E},
    {0x7F,0x09,0x09,0x09,0x06}, {0x3E,0x41,0x51,0x21,0x5E},
    {0x7F,0x09,0x19,0x29,0x46}, {0x46,0x49,0x49,0x49,0x31},
    {0x01,0x01,0x7F,0x01,0x01}, {0x3F,0x40,0x40,0x40,0x3F},
    {0x1F,0x20,0x40,0x20,0x1F}, {0x7F,0x20,0x18,0x20,0x7F},
    {0x63,0x14,0x08,0x14,0x63}, {0x03,0x04,0x78,0x04,0x03},
    {0x61,0x51,0x49,0x45,0x43}, {0x00,0x00,0x7F,0x41,0x41},
    {0x02,0x04,0x08,0x10,0x20}, {0x41,0x41,0x7F,0x00,0x00},
    {0x04,0x02,0x01,0x02,0x04}, {0x40,0x40,0x40,0x40,0x40},
    {0x00,0x01,0x02,0x04,0x00}, {0x20,0x54,0x54,0x54,0x78},
    {0x7F,0x48,0x44,0x44,0x38}, {0x38,0x44,0x44,0x44,0x20},
    {0x38,0x44,0x44,0x48,0x7F}, {0x38,0x54,0x54,0x54,0x18},
    {0x08,0x7E,0x09,0x01,0x02}, {0x08,0x14,0x54,0x54,0x3C},
    {0x7F,0x08,0x04,0x04,0x78}, {0x00,0x44,0x7D,0x40,0x00},
    {0x20,0x40,0x44,0x3D,0x00}, {0x00,0x7F,0x10,0x28,0x44},
    {0x00,0x41,0x7F,0x40,0x00}, {0x7C,0x04,0x18,0x04,0x78},
    {0x7C,0x08,0x04,0x04,0x78}, {0x38,0x44,0x44,0x44,0x38},
    {0x7C,0x14,0x14,0x14,0x08}, {0x08,0x14,0x14,0x18,0x7C},
    {0x7C,0x08,0x04,0x04,0x08}, {0x48,0x54,0x54,0x54,0x20},
    {0x04,0x3F,0x44,0x40,0x20}, {0x3C,0x40,0x40,0x20,0x7C},
    {0x1C,0x20,0x40,0x20,0x1C}, {0x3C,0x40,0x30,0x40,0x3C},
    {0x44,0x28,0x10,0x28,0x44}, {0x0C,0x50,0x50,0x50,0x3C},
    {0x44,0x64,0x54,0x4C,0x44}, {0x00,0x08,0x36,0x41,0x00},
    {0x00,0x00,0x7F,0x00,0x00}, {0x00,0x41,0x36,0x08,0x00},
    {0x08,0x08,0x2A,0x1C,0x08},
};

constexpr Cycle inputPeriodCycles = 166667;  // 60 Hz in 100 ns cycles

} // namespace

Mdc::Mdc(Simulator &sim, QBus &qbus, const Config &config)
    : sim(sim), qbus(qbus), cfg(config), statGroup("mdc")
{
    if (cfg.queueEntries == 0)
        fatal("MDC needs a non-empty work queue");
    statGroup.addCounter(&commandsExecuted, "commands",
                         "work-queue commands executed");
    statGroup.addCounter(&pixelsPainted, "pixels", "pixels painted");
    statGroup.addCounter(&charsPainted, "chars",
                         "characters painted from the font cache");
    statGroup.addCounter(&polls, "polls", "work-queue polls");
    statGroup.addCounter(&deposits, "deposits",
                         "60 Hz mouse/keyboard deposits");
    statGroup.addCounter(&busyCycles, "busy_cycles",
                         "cycles spent executing commands");
}

void
Mdc::start()
{
    if (started)
        return;
    started = true;
    sim.events().schedule(sim.now() + cfg.pollIntervalCycles,
                          [this] { poll(); });
    if (cfg.inputDeposits) {
        sim.events().schedule(sim.now() + inputPeriodCycles,
                              [this] { depositInput(); });
    }
}

PixelRect
Mdc::glyphRect(unsigned code)
{
    return {(code % 128) * 8, FrameBuffer::visibleRows, 8, 16};
}

void
Mdc::loadBuiltinFont()
{
    for (unsigned c = 32; c <= 126; ++c) {
        const PixelRect cell = glyphRect(c);
        for (unsigned col = 0; col < 5; ++col) {
            const unsigned char column = font5x7[c - 32][col];
            for (unsigned row = 0; row < 7; ++row) {
                if (column & (1u << row)) {
                    fb.setPixel(cell.x + 1 + col, cell.y + 4 + row,
                                true);
                }
            }
        }
    }
}

MdcCommand
Mdc::encodeFill(unsigned x, unsigned y, unsigned w, unsigned h,
                RasterOp op)
{
    return {static_cast<Word>(MdcOpcode::Fill), x, y, w, h,
            static_cast<Word>(op), 0, 0};
}

MdcCommand
Mdc::encodeCopyRect(unsigned sx, unsigned sy, unsigned dx, unsigned dy,
                    unsigned w, unsigned h, RasterOp op)
{
    return {static_cast<Word>(MdcOpcode::CopyRect), sx, sy, dx, dy, w,
            h, static_cast<Word>(op)};
}

MdcCommand
Mdc::encodePaintChars(unsigned x, unsigned y, unsigned count,
                      Addr chars_qbus_addr)
{
    return {static_cast<Word>(MdcOpcode::PaintChars), x, y, count,
            chars_qbus_addr, 0, 0, 0};
}

MdcCommand
Mdc::encodeBltFromMemory(Addr src_qbus_addr, unsigned stride_words,
                         unsigned dx, unsigned dy, unsigned w,
                         unsigned h)
{
    return {static_cast<Word>(MdcOpcode::BltFromMemory), src_qbus_addr,
            stride_words, dx, dy, w, h, 0};
}

void
Mdc::setMouse(unsigned x, unsigned y)
{
    mouseX = x;
    mouseY = y;
}

void
Mdc::keyEvent(unsigned keycode, bool down)
{
    const unsigned word = (keycode / 32) % keyBitmap.size();
    const Word mask = 1u << (keycode % 32);
    if (down)
        keyBitmap[word] |= mask;
    else
        keyBitmap[word] &= ~mask;
}

void
Mdc::depositInput()
{
    ++deposits;
    std::vector<Word> words = {mouseX, mouseY, keyBitmap[0],
                               keyBitmap[1], keyBitmap[2],
                               keyBitmap[3]};
    // A timed-out deposit just loses one input sample; the next
    // period writes fresh state.
    qbus.dmaWrite(cfg.inputBase, std::move(words), [](IoStatus) {});
    sim.events().schedule(sim.now() + inputPeriodCycles,
                          [this] { depositInput(); },
                          "mdc input deposit");
}

void
Mdc::poll()
{
    ++polls;
    qbus.dmaRead(cfg.queueBase, 2, [this](IoStatus status,
                                          std::vector<Word> header) {
        if (status != IoStatus::Ok) {
            // Queue header unreadable this time: try again at the
            // normal poll cadence rather than wedging the device.
            sim.events().schedule(sim.now() + cfg.pollIntervalCycles,
                                  [this] { poll(); }, "mdc poll");
            return;
        }
        const Word producer = header[0];
        const Word consumer = header[1];
        if (producer == consumer) {
            sim.events().schedule(sim.now() + cfg.pollIntervalCycles,
                                  [this] { poll(); }, "mdc poll");
            return;
        }
        const Addr entry_addr = cfg.queueBase + 8 +
            (consumer % cfg.queueEntries) * sizeof(MdcCommand);
        qbus.dmaRead(entry_addr, 8, [this](IoStatus st,
                                           std::vector<Word> entry) {
            if (st != IoStatus::Ok) {
                // Leave the entry unconsumed; the next poll rereads.
                sim.events().schedule(
                    sim.now() + cfg.pollIntervalCycles,
                    [this] { poll(); }, "mdc poll");
                return;
            }
            executeEntry(std::move(entry));
        });
    });
}

void
Mdc::executeEntry(std::vector<Word> entry)
{
    ++commandsExecuted;
    const auto opcode = static_cast<MdcOpcode>(entry[0]);
    Cycle busy = cfg.commandOverheadCycles;

    switch (opcode) {
      case MdcOpcode::Nop:
        finishCommand(busy);
        return;

      case MdcOpcode::Fill: {
        const auto op = static_cast<RasterOp>(entry[5]);
        const auto pixels =
            fb.fill({entry[1], entry[2], entry[3], entry[4]}, op);
        pixelsPainted += pixels;
        busy += static_cast<Cycle>(pixels / cfg.pixelsPerCycle);
        finishCommand(busy);
        return;
      }

      case MdcOpcode::CopyRect: {
        const auto op = static_cast<RasterOp>(entry[7]);
        const auto pixels =
            fb.blt({entry[1], entry[2], entry[5], entry[6]}, entry[3],
                   entry[4], op);
        pixelsPainted += pixels;
        busy += static_cast<Cycle>(pixels / cfg.pixelsPerCycle);
        finishCommand(busy);
        return;
      }

      case MdcOpcode::PaintChars: {
        const unsigned count = entry[3];
        const unsigned words = (count + 3) / 4;
        const unsigned x = entry[1], y = entry[2];
        qbus.dmaRead(entry[4], words,
                     [this, x, y, count](IoStatus st,
                                         std::vector<Word> packed) {
                         if (st != IoStatus::Ok) {
                             finishCommand(cfg.commandOverheadCycles);
                             return;
                         }
                         paintCharsFromCodes(packed, x, y, count);
                     });
        return;
      }

      case MdcOpcode::BltFromMemory: {
        const unsigned stride = entry[2];
        const unsigned w = entry[5], h = entry[6];
        const unsigned dx = entry[3], dy = entry[4];
        const unsigned words = stride * h;
        qbus.dmaRead(entry[1], words,
                     [this, stride, w, h, dx, dy](
                         IoStatus st, std::vector<Word> data) {
                         if (st != IoStatus::Ok) {
                             finishCommand(cfg.commandOverheadCycles);
                             return;
                         }
                         const auto pixels = fb.bltFrom(
                             data.data(), stride, {0, 0, w, h}, dx,
                             dy, RasterOp::Copy);
                         pixelsPainted += pixels;
                         finishCommand(
                             cfg.commandOverheadCycles +
                             static_cast<Cycle>(pixels /
                                                cfg.pixelsPerCycle));
                     });
        return;
      }
    }
    warn("MDC: unknown opcode %u", entry[0]);
    finishCommand(busy);
}

void
Mdc::paintCharsFromCodes(const std::vector<Word> &packed, unsigned x,
                         unsigned y, unsigned count)
{
    Cycle busy = cfg.commandOverheadCycles;
    for (unsigned i = 0; i < count; ++i) {
        const Word word = packed[i / 4];
        const unsigned code = (word >> (8 * (i % 4))) & 0xff;
        const auto pixels =
            fb.blt(glyphRect(code), x + 8 * i, y, RasterOp::Copy);
        pixelsPainted += pixels;
        ++charsPainted;
        busy += cfg.charOverheadCycles +
                static_cast<Cycle>(pixels / cfg.pixelsPerCycle);
    }
    finishCommand(busy);
}

void
Mdc::finishCommand(Cycle busy)
{
    busyCycles += busy;
    sim.events().schedule(sim.now() + busy, [this] {
        // Advance the consumer index, then look for more work
        // immediately (the poll interval only applies when idle).
        qbus.dmaRead(cfg.queueBase, 2, [this](IoStatus status,
                                              std::vector<Word> header) {
            if (status != IoStatus::Ok) {
                // Consumer index not advanced; the next poll rereads
                // the same entry (commands must be idempotent under
                // at-least-once execution, as on the real hardware).
                sim.events().schedule(
                    sim.now() + cfg.pollIntervalCycles,
                    [this] { poll(); }, "mdc poll");
                return;
            }
            qbus.dmaWrite(cfg.queueBase + 4, {header[1] + 1},
                          [this](IoStatus) { poll(); });
        });
    }, "mdc command finish");
}

} // namespace firefly
