#include "io/dma_engine.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

const char *
toString(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok: return "ok";
      case IoStatus::TimedOut: return "timed-out";
    }
    return "?";
}

DmaEngine::DmaEngine(Simulator &sim, Cache &io_cache, Addr io_limit,
                     Cycle cycles_per_word)
    : sim(sim), ioCache(io_cache), ioLimit(io_limit),
      pacing(cycles_per_word), statGroup("dma")
{
    if (pacing == 0)
        fatal("DMA pacing must be at least one cycle per word");
    statGroup.addCounter(&wordsRead, "words_read",
                         "longwords DMAed from memory");
    statGroup.addCounter(&wordsWritten, "words_written",
                         "longwords DMAed to memory");
    statGroup.addCounter(&requestCount, "requests", "DMA requests");
}

void
DmaEngine::checkAddress(Addr addr, unsigned count) const
{
    if (addr % bytesPerWord != 0)
        fatal("DMA address 0x%x not longword aligned", addr);
    if (addr + count * bytesPerWord > ioLimit) {
        fatal("DMA beyond the I/O processor's reach: 0x%x + %u words "
              "(limit 0x%x)", addr, count, ioLimit);
    }
}

bool
DmaEngine::injectTimeout(Addr addr, bool is_write)
{
    if (!injector || !injector->faultPlan().deviceTimeout())
        return false;
    // The transfer never starts; the requester only learns after the
    // bus timeout expires.  Completing through the event queue (with
    // TimedOut) keeps hung devices from wedging "while (!done)" loops.
    ++injector->deviceTimeouts;
    if (auto *ts = obs::traceSink()) {
        ts->instant(sim.now(), obs::kCatFault, statGroup.name(),
                    "device-timeout",
                    {{"addr", obs::hexAddr(addr)},
                     {"op", is_write ? "dma-write" : "dma-read"}});
    }
    return true;
}

void
DmaEngine::readWords(Addr addr, unsigned count, ReadCallback done)
{
    checkAddress(addr, count);
    if (count == 0) {
        done(IoStatus::Ok, {});
        return;
    }
    if (injectTimeout(addr, false)) {
        sim.events().schedule(
            sim.now() + injector->config().deviceTimeoutCycles,
            [cb = std::move(done)]() mutable {
                cb(IoStatus::TimedOut, {});
            },
            "dma timeout completion");
        return;
    }
    ++requestCount;
    Request req;
    req.isWrite = false;
    req.addr = addr;
    req.remaining = count;
    req.readDone = std::move(done);
    requests.push_back(std::move(req));
    if (!wordInFlight)
        pump();
}

void
DmaEngine::writeWords(Addr addr, std::vector<Word> data,
                      WriteCallback done)
{
    checkAddress(addr, data.size());
    if (data.empty()) {
        done(IoStatus::Ok);
        return;
    }
    if (injectTimeout(addr, true)) {
        sim.events().schedule(
            sim.now() + injector->config().deviceTimeoutCycles,
            [cb = std::move(done)]() mutable {
                cb(IoStatus::TimedOut);
            },
            "dma timeout completion");
        return;
    }
    ++requestCount;
    Request req;
    req.isWrite = true;
    req.addr = addr;
    req.remaining = data.size();
    req.data = std::move(data);
    req.writeDone = std::move(done);
    requests.push_back(std::move(req));
    if (!wordInFlight)
        pump();
}

void
DmaEngine::pump()
{
    if (requests.empty()) {
        wordInFlight = false;
        return;
    }
    wordInFlight = true;
    Request &req = requests.front();

    // Requests are served FIFO and whole, so each renders as one
    // contiguous slice on the DMA track, first word to last callback.
    if (!req.serviceTraced) {
        req.serviceTraced = true;
        if (auto *ts = obs::traceSink()) {
            ts->begin(sim.now(), obs::kCatDma, statGroup.name(),
                      req.isWrite ? "dma-write" : "dma-read",
                      {{"addr", obs::hexAddr(req.addr)},
                       {"words",
                        std::to_string(req.isWrite ? req.data.size()
                                                   : req.remaining)}});
        }
    }

    // One word now; the next word starts `pacing` cycles after this
    // one was issued (the QBus word cycle covers the transfer).
    const Cycle issued = sim.now();
    const Addr addr = req.addr;
    if (req.isWrite) {
        const Word value = req.data[req.data.size() - req.remaining];
        ioCache.dmaAccess(
            {addr, RefType::DataWrite, value}, [this, issued](Word) {
                ++wordsWritten;
                Request &front = requests.front();
                front.addr += bytesPerWord;
                if (--front.remaining == 0) {
                    auto done = std::move(front.writeDone);
                    requests.pop_front();
                    if (done)
                        done(IoStatus::Ok);
                }
                const Cycle next =
                    std::max(issued + pacing, sim.now() + 1);
                sim.events().schedule(next, [this] { pump(); },
                                      "dma word pacing");
            });
    } else {
        ioCache.dmaAccess(
            {addr, RefType::DataRead, 0}, [this, issued](Word value) {
                ++wordsRead;
                Request &front = requests.front();
                front.data.push_back(value);
                front.addr += bytesPerWord;
                if (--front.remaining == 0) {
                    auto done = std::move(front.readDone);
                    auto data = std::move(front.data);
                    requests.pop_front();
                    if (done)
                        done(IoStatus::Ok, std::move(data));
                }
                const Cycle next =
                    std::max(issued + pacing, sim.now() + 1);
                sim.events().schedule(next, [this] { pump(); },
                                      "dma word pacing");
            });
    }
}

} // namespace firefly
