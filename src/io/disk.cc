#include "io/disk.hh"

#include <cmath>

#include "fault/fault_injector.hh"
#include "sim/logging.hh"

namespace firefly
{

DiskController::DiskController(Simulator &sim, QBus &qbus,
                               std::string name)
    : DiskController(sim, qbus, std::move(name), Config{})
{
}

DiskController::DiskController(Simulator &sim, QBus &qbus,
                               std::string name, Config config)
    : sim(sim), qbus(qbus), cfg(config),
      media(static_cast<Addr>(cfg.geometry.totalSectors()) *
            (cfg.geometry.bytesPerSector / bytesPerWord)),
      statGroup(std::move(name))
{
    if (cfg.geometry.bytesPerSector % bytesPerWord != 0)
        fatal("sector size must be longword aligned");
    statGroup.addCounter(&reads, "reads", "read requests completed");
    statGroup.addCounter(&writes, "writes",
                         "write requests completed");
    statGroup.addCounter(&sectorsMoved, "sectors",
                         "sectors transferred");
    statGroup.addAccumulator(&seekCylinders, "seek_cylinders",
                             "cylinders moved per seek");
    statGroup.addAccumulator(&serviceCycles, "service_cycles",
                             "request service time (cycles)");
}

unsigned
DiskController::cylinderOf(unsigned lba) const
{
    return lba /
           (cfg.geometry.heads * cfg.geometry.sectorsPerTrack);
}

double
DiskController::rotationFractionAt(Cycle when) const
{
    const double cycles_per_rev = 60.0 / cfg.rpm * 1e7;  // 100ns units
    const double pos =
        std::fmod(static_cast<double>(when), cycles_per_rev);
    return pos / cycles_per_rev;
}

Cycle
DiskController::mechanicalDelay(const Request &req) const
{
    // Seek.
    const unsigned target = cylinderOf(req.lba);
    const unsigned distance = target > currentCylinder
        ? target - currentCylinder
        : currentCylinder - target;
    double ms = 0.0;
    if (distance > 0)
        ms += cfg.seekBaseMs + cfg.seekPerCylinderMs * distance;
    Cycle delay = static_cast<Cycle>(ms * 1e4);  // ms -> 100ns cycles

    // Rotation: wait for the target sector to come under the head.
    const double cycles_per_rev = 60.0 / cfg.rpm * 1e7;
    const double target_angle =
        static_cast<double>(req.lba % cfg.geometry.sectorsPerTrack) /
        cfg.geometry.sectorsPerTrack;
    const double angle_at_arrival =
        rotationFractionAt(sim.now() + delay);
    double wait = target_angle - angle_at_arrival;
    if (wait < 0)
        wait += 1.0;
    delay += static_cast<Cycle>(wait * cycles_per_rev);
    return delay;
}

void
DiskController::read(unsigned lba, unsigned sectors, Addr qbus_buffer,
                     Callback done)
{
    if (lba + sectors > cfg.geometry.totalSectors())
        fatal("disk access beyond media: lba %u + %u", lba, sectors);
    queue.push_back({false, lba, sectors, qbus_buffer,
                     std::move(done), sim.now()});
    if (!busy)
        pump();
}

void
DiskController::write(unsigned lba, unsigned sectors, Addr qbus_buffer,
                      Callback done)
{
    if (lba + sectors > cfg.geometry.totalSectors())
        fatal("disk access beyond media: lba %u + %u", lba, sectors);
    queue.push_back({true, lba, sectors, qbus_buffer,
                     std::move(done), sim.now()});
    if (!busy)
        pump();
}

void
DiskController::pump()
{
    if (queue.empty()) {
        busy = false;
        return;
    }
    busy = true;
    Request req = queue.front();
    queue.pop_front();

    const Cycle mech = mechanicalDelay(req);
    const unsigned target = cylinderOf(req.lba);
    seekCylinders.sample(std::abs(static_cast<int>(target) -
                                  static_cast<int>(currentCylinder)));
    currentCylinder = target;

    // Media transfer time (the DMA into memory overlaps it; the
    // controller is buffered, so we charge max(media, DMA) ~ media).
    const double bytes =
        static_cast<double>(req.sectors) * cfg.geometry.bytesPerSector;
    const Cycle media_time =
        static_cast<Cycle>(bytes / (cfg.transferKBps * 1024.0) * 1e7);

    sim.events().schedule(sim.now() + mech + media_time,
                          [this, req]() mutable { transfer(req); },
                          "disk mechanical delay");
}

void
DiskController::retryOrFail(Request req)
{
    auto *inj = qbus.engine().faultInjector();
    ++req.attempt;
    if (inj && req.attempt < inj->config().deviceRetryBudget) {
        ++inj->deviceRetries;
        sim.events().schedule(
            sim.now() + inj->deviceBackoff(req.attempt),
            [this, req]() mutable { transfer(std::move(req)); },
            "disk transfer retry");
        return;
    }
    if (inj)
        ++inj->deviceFailures;
    warn("%s: %s of %u sectors at lba %u failed after %u attempts",
         statGroup.name().c_str(), req.isWrite ? "write" : "read",
         req.sectors, req.lba, req.attempt);
    if (req.done)
        req.done(IoStatus::TimedOut);
    pump();
}

void
DiskController::transfer(Request req)
{
    const unsigned words_per_sector =
        cfg.geometry.bytesPerSector / bytesPerWord;
    const unsigned total_words = req.sectors * words_per_sector;
    const Addr media_word =
        static_cast<Addr>(req.lba) * words_per_sector;

    if (req.isWrite) {
        // DMA the data out of memory, then commit to the media.
        qbus.dmaRead(req.buffer, total_words,
                     [this, req, media_word](IoStatus status,
                                             std::vector<Word> data) {
                         if (status != IoStatus::Ok) {
                             retryOrFail(req);
                             return;
                         }
                         for (unsigned i = 0; i < data.size(); ++i)
                             media.write(media_word + i, data[i]);
                         ++writes;
                         sectorsMoved += req.sectors;
                         serviceCycles.sample(
                             static_cast<double>(sim.now() -
                                                 req.queued));
                         if (req.done)
                             req.done(IoStatus::Ok);
                         pump();
                     });
    } else {
        std::vector<Word> data(total_words);
        for (unsigned i = 0; i < total_words; ++i)
            data[i] = media.read(media_word + i);
        qbus.dmaWrite(req.buffer, std::move(data),
                      [this, req](IoStatus status) {
            if (status != IoStatus::Ok) {
                retryOrFail(req);
                return;
            }
            ++reads;
            sectorsMoved += req.sectors;
            serviceCycles.sample(
                static_cast<double>(sim.now() - req.queued));
            if (req.done)
                req.done(IoStatus::Ok);
            pump();
        });
    }
}

Word
DiskController::peekWord(unsigned lba, unsigned word_in_sector) const
{
    const unsigned words_per_sector =
        cfg.geometry.bytesPerSector / bytesPerWord;
    return media.read(static_cast<Addr>(lba) * words_per_sector +
                      word_in_sector);
}

void
DiskController::pokeWord(unsigned lba, unsigned word_in_sector,
                         Word value)
{
    const unsigned words_per_sector =
        cfg.geometry.bytesPerSector / bytesPerWord;
    media.write(static_cast<Addr>(lba) * words_per_sector +
                word_in_sector, value);
}

} // namespace firefly
