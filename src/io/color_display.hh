/**
 * @file
 * The optional high-resolution color display controller.
 *
 * "Optional hardware includes a high resolution color display" -
 * and, because display controllers are ordinary QBus work-queue
 * devices, "it is easy to plug multiple display controllers into a
 * single Firefly.  Many SRC researchers now have multiple displays."
 *
 * The color controller follows the MDC's architecture - it polls a
 * command queue in main memory via DMA - but drives an 8-bit-deep
 * 1024x768 frame buffer through a 256-entry color map.  Commands:
 * rectangle fill with a color index, rectangle copy, color-map load,
 * and image upload from main memory (four pixels per longword).
 */

#ifndef FIREFLY_IO_COLOR_DISPLAY_HH
#define FIREFLY_IO_COLOR_DISPLAY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "io/framebuffer.hh"  // PixelRect
#include "io/qbus.hh"

namespace firefly
{

/** 8-bit-deep frame buffer with a 256-entry RGB color map. */
class ColorFrameBuffer
{
  public:
    static constexpr unsigned widthPx = 1024;
    static constexpr unsigned heightPx = 768;

    ColorFrameBuffer();

    std::uint8_t pixel(unsigned x, unsigned y) const;
    void setPixel(unsigned x, unsigned y, std::uint8_t index);

    /** Fill a rectangle with a color index; returns pixels touched. */
    std::uint64_t fill(const PixelRect &rect, std::uint8_t index);

    /** Copy a rectangle (overlap-safe); returns pixels touched. */
    std::uint64_t copy(const PixelRect &src, unsigned dst_x,
                       unsigned dst_y);

    /** Color map: packed 0x00RRGGBB entries. */
    void setColor(std::uint8_t index, std::uint32_t rgb);
    std::uint32_t color(std::uint8_t index) const;

    /** Resolve a pixel through the color map. */
    std::uint32_t rgbAt(unsigned x, unsigned y) const;

    /** Pixels in `rect` whose index equals `index` (for tests). */
    std::uint64_t countIndex(const PixelRect &rect,
                             std::uint8_t index) const;

  private:
    void clip(PixelRect &rect) const;

    std::vector<std::uint8_t> pixels;
    std::array<std::uint32_t, 256> colormap{};
};

/** Color display command opcodes. */
enum class CdcOpcode : Word
{
    Nop = 0,
    /** FillColor: x, y, w, h, colorIndex. */
    FillColor = 1,
    /** CopyRect: sx, sy, dx, dy, w, h. */
    CopyRect = 2,
    /** LoadColorMap: firstIndex, count, qbusAddr of 0x00RRGGBB. */
    LoadColorMap = 3,
    /** PutImage: qbusAddr, strideWords, dx, dy, w, h (4 px/word). */
    PutImage = 4,
};

/** The color display controller: same work-queue design as the MDC. */
class ColorDisplayController
{
  public:
    struct Config
    {
        Addr queueBase = 0;
        unsigned queueEntries = 16;
        Cycle pollIntervalCycles = 2000;
        double pixelsPerCycle = 1.2;  ///< deeper pixels paint slower
        Cycle commandOverheadCycles = 300;
    };

    ColorDisplayController(Simulator &sim, QBus &qbus,
                           const Config &config);

    void start();

    ColorFrameBuffer &frameBuffer() { return fb; }

    static std::array<Word, 8> encodeFill(unsigned x, unsigned y,
                                          unsigned w, unsigned h,
                                          std::uint8_t index);
    static std::array<Word, 8> encodeCopyRect(unsigned sx, unsigned sy,
                                              unsigned dx, unsigned dy,
                                              unsigned w, unsigned h);
    static std::array<Word, 8> encodeLoadColorMap(unsigned first,
                                                  unsigned count,
                                                  Addr qbus_addr);
    static std::array<Word, 8> encodePutImage(Addr qbus_addr,
                                              unsigned stride_words,
                                              unsigned dx, unsigned dy,
                                              unsigned w, unsigned h);

    StatGroup &stats() { return statGroup; }

    Counter commandsExecuted;
    Counter pixelsPainted;
    Counter polls;
    Counter busyCycles;

  private:
    void poll();
    void executeEntry(std::vector<Word> entry);
    void finishCommand(Cycle busy);

    Simulator &sim;
    QBus &qbus;
    Config cfg;
    ColorFrameBuffer fb;
    bool started = false;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_IO_COLOR_DISPLAY_HH
