/**
 * @file
 * The Ethernet controller (DEC DEQNA model).
 *
 * A buffered DMA controller on the QBus: transmit fetches the packet
 * from main memory through the I/O processor's cache, then drives
 * the 10 Mbit/s wire; receive DMAs arriving packets into host-posted
 * buffers and raises a completion.  Two controllers can be connected
 * back to back (the RPC experiments), or a packet can be injected
 * from a modelled remote peer.
 *
 * The paper's fast path - "Any processor can enqueue work for the
 * network and then initiate the transfer by a specialized
 * interprocessor interrupt to the I/O processor" - corresponds to
 * calling transmit() from any context; the few CSR instructions are
 * modelled as a fixed setup time.
 */

#ifndef FIREFLY_IO_ETHERNET_HH
#define FIREFLY_IO_ETHERNET_HH

#include <deque>
#include <functional>

#include "io/qbus.hh"

namespace firefly
{

/** A DEQNA-like Ethernet controller. */
class EthernetController
{
  public:
    struct Config
    {
        double lineMbps = 10.0;     ///< wire rate
        Cycle setupCycles = 60;     ///< CSR pokes to start a transfer
        unsigned interFrameGapBits = 96;
    };

    /** Receive notification: physical buffer address and length. */
    using RxHandler = std::function<void(Addr qbus_addr,
                                         unsigned bytes)>;

    EthernetController(Simulator &sim, QBus &qbus, std::string name);
    EthernetController(Simulator &sim, QBus &qbus, std::string name,
                       Config config);

    /**
     * Transmit `bytes` starting at the QBus address.  The packet is
     * DMAed out of memory, serialised onto the wire, and delivered
     * to the connected peer (or dropped if none).  `done` fires when
     * the wire transfer completes - with TimedOut if the DMA fetch
     * kept timing out past the retry budget (packet never sent).
     */
    using TxCallback = std::function<void(IoStatus)>;
    void transmit(Addr qbus_addr, unsigned bytes, TxCallback done);

    /** Post a receive buffer (used in FIFO order). */
    void addReceiveBuffer(Addr qbus_addr, unsigned capacity_bytes);

    void setReceiveHandler(RxHandler handler);

    /** Connect to a peer controller (one-directional; call on both). */
    void connectTo(EthernetController *peer);

    /** A packet arrives from the wire. */
    void injectFromWire(std::vector<Word> payload, unsigned bytes);

    StatGroup &stats() { return statGroup; }

    Counter txPackets, txBytes;
    Counter rxPackets, rxBytes;
    Counter rxDropped;

  private:
    Cycle wireCycles(unsigned bytes) const;
    void pumpTx();

    struct TxRequest
    {
        Addr addr;
        unsigned bytes;
        TxCallback done;
        unsigned attempt = 0;  ///< timed-out DMA fetches so far
    };

    /** DMA the packet out of memory and put it on the wire;
     *  re-entered on retry after a DMA timeout. */
    void startTx(TxRequest req);

    struct RxBuffer
    {
        Addr addr;
        unsigned capacity;
    };

    Simulator &sim;
    QBus &qbus;
    Config cfg;
    std::string name;
    EthernetController *peer = nullptr;
    RxHandler rxHandler;

    std::deque<TxRequest> txQueue;
    bool txBusy = false;
    std::deque<RxBuffer> rxBuffers;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_IO_ETHERNET_HH
