/**
 * @file
 * The monochrome display controller (MDC).
 *
 * "The MDC periodically polls a work queue kept in Firefly main
 * memory, and executes commands from the queue... This design
 * provides fully symmetric access to the displays by any processor."
 * Commands are BitBlt operations within the frame buffer or between
 * main memory and the buffer, plus an optimised character painter
 * that blts glyphs from a font cache kept in off-screen video RAM.
 * "Sixty times per second, the controller deposits in Firefly memory
 * the current mouse position and an unencoded bitmap representing
 * the current state of the keyboard."
 *
 * Timing targets from the paper: 16 megapixels/second for large
 * areas, ~20,000 10-point characters/second, 60 Hz input deposits.
 */

#ifndef FIREFLY_IO_MDC_HH
#define FIREFLY_IO_MDC_HH

#include <array>
#include <functional>

#include "io/framebuffer.hh"
#include "io/qbus.hh"

namespace firefly
{

/** MDC command opcodes (word 0 of a queue entry). */
enum class MdcOpcode : Word
{
    Nop = 0,
    /** Fill: x, y, width, height, rasterOp. */
    Fill = 1,
    /** CopyRect within the frame buffer: sx, sy, dx, dy, w, h, op. */
    CopyRect = 2,
    /** PaintChars: x, y, count, qbusAddr of packed char codes. */
    PaintChars = 3,
    /** BltFromMemory: qbusAddr, strideWords, dx, dy, w, h. */
    BltFromMemory = 4,
};

/** One 8-word command block. */
using MdcCommand = std::array<Word, 8>;

/** The display controller. */
class Mdc
{
  public:
    struct Config
    {
        /** Work-queue ring in main memory: 2 header words (producer,
         *  consumer) then `queueEntries` 8-word blocks.  QBus addr. */
        Addr queueBase = 0;
        unsigned queueEntries = 16;
        /** Input deposit area (mouseX, mouseY, 4 keyboard words). */
        Addr inputBase = 0;

        Cycle pollIntervalCycles = 2000;      ///< 200 us idle poll
        double pixelsPerCycle = 1.6;          ///< 16 Mpixel/s
        Cycle commandOverheadCycles = 300;    ///< microcode per cmd
        Cycle charOverheadCycles = 400;       ///< per character
        bool inputDeposits = true;            ///< 60 Hz mouse/kbd
    };

    Mdc(Simulator &sim, QBus &qbus, const Config &config);

    /** Begin polling (and input deposits). */
    void start();

    FrameBuffer &frameBuffer() { return fb; }

    /**
     * Load the built-in 8x16 glyph set into the font cache (the
     * off-screen quarter of video RAM).  Glyph for code c lives at
     * ((c % 128) * 8 % 1024, 768 + 16 * ((c % 128) / 128 ... packed
     * row-major).
     */
    void loadBuiltinFont();

    /** Where glyph `code` lives in the off-screen font cache. */
    static PixelRect glyphRect(unsigned code);

    // --- host-side command encoding --------------------------------------
    static MdcCommand encodeFill(unsigned x, unsigned y, unsigned w,
                                 unsigned h, RasterOp op);
    static MdcCommand encodeCopyRect(unsigned sx, unsigned sy,
                                     unsigned dx, unsigned dy,
                                     unsigned w, unsigned h,
                                     RasterOp op);
    static MdcCommand encodePaintChars(unsigned x, unsigned y,
                                       unsigned count,
                                       Addr chars_qbus_addr);
    static MdcCommand encodeBltFromMemory(Addr src_qbus_addr,
                                          unsigned stride_words,
                                          unsigned dx, unsigned dy,
                                          unsigned w, unsigned h);

    // --- input devices ----------------------------------------------------
    void setMouse(unsigned x, unsigned y);
    void keyEvent(unsigned keycode, bool down);

    StatGroup &stats() { return statGroup; }

    Counter commandsExecuted;
    Counter pixelsPainted;
    Counter charsPainted;
    Counter polls;
    Counter deposits;
    Counter busyCycles;

  private:
    void poll();
    void executeEntry(std::vector<Word> entry);
    void finishCommand(Cycle busy_cycles);
    void depositInput();
    void paintCharsFromCodes(const std::vector<Word> &packed,
                             unsigned x, unsigned y, unsigned count);

    Simulator &sim;
    QBus &qbus;
    Config cfg;
    FrameBuffer fb;
    bool started = false;

    unsigned mouseX = 0, mouseY = 0;
    std::array<Word, 4> keyBitmap{};

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_IO_MDC_HH
