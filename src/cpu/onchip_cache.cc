#include "cpu/onchip_cache.hh"

#include "sim/logging.hh"

namespace firefly
{

OnChipCache::OnChipCache(const Config &config, std::string name)
    : cfg(config), statGroup(std::move(name))
{
    if (cfg.lineBytes < 4 || (cfg.lineBytes & (cfg.lineBytes - 1)) != 0)
        fatal("bad on-chip line size %u", cfg.lineBytes);
    if (cfg.sizeBytes % cfg.lineBytes != 0)
        fatal("on-chip size not a multiple of line size");
    entries.resize(cfg.sizeBytes / cfg.lineBytes);

    statGroup.addCounter(&hits, "hits", "accesses served on chip");
    statGroup.addCounter(&misses, "misses",
                         "cacheable accesses sent to the board cache");
    statGroup.addCounter(&staleIncidents, "stale_incidents",
                         "bus writes that hit on-chip lines (the "
                         "accesses a non-snooping data cache would "
                         "serve stale)");
}

Addr
OnChipCache::lineBaseOf(Addr addr) const
{
    return addr - addr % cfg.lineBytes;
}

OnChipCache::Entry &
OnChipCache::entryFor(Addr addr)
{
    return entries[(addr / cfg.lineBytes) % entries.size()];
}

bool
OnChipCache::access(const MemRef &ref)
{
    Entry &entry = entryFor(ref.addr);
    const bool match = entry.valid && entry.base == lineBaseOf(ref.addr);

    if (isWrite(ref.type)) {
        // Writes go to the board cache; keep the hierarchy inclusive
        // enough by dropping our copy.
        if (match)
            entry.valid = false;
        return false;
    }

    const bool cacheable = ref.type == RefType::InstrRead ||
        (ref.type == RefType::DataRead && cachesData());
    if (!cacheable)
        return false;

    if (match) {
        ++hits;
        if (checkObs)
            checkObs->onChipHit(ref, *this);
        return true;
    }
    ++misses;
    entry.valid = true;
    entry.base = lineBaseOf(ref.addr);
    if (checkObs)
        checkObs->onChipInstalled(entry.base, *this);
    return false;
}

void
OnChipCache::observeBusWrite(Addr addr, unsigned words)
{
    for (unsigned i = 0; i < words; ++i) {
        const Addr a = addr + i * bytesPerWord;
        Entry &entry = entryFor(a);
        if (entry.valid && entry.base == lineBaseOf(a)) {
            entry.valid = false;
            ++staleIncidents;
        }
    }
}

void
OnChipCache::invalidateAll()
{
    for (auto &entry : entries)
        entry.valid = false;
}

} // namespace firefly
