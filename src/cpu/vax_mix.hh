/**
 * @file
 * VAX architectural constants used throughout the paper's analysis.
 *
 * "Measurements made on the VAX [Emer & Clark] show that a typical
 * instruction does .95 instruction reads per instruction, .78 data
 * reads, and .40 data writes, for a total of 2.13 references per
 * instruction.  This is an architectural property valid across a
 * wide range of applications."
 *
 * Timing constants: the MicroVAX 78032 is an 11.9 tick-per-
 * instruction implementation with 200 ns ticks; the CVAX 78034 runs
 * 100 ns cycles and roughly half the CPI.
 */

#ifndef FIREFLY_CPU_VAX_MIX_HH
#define FIREFLY_CPU_VAX_MIX_HH

#include "sim/random.hh"

namespace firefly
{

/** Per-instruction reference rates (Emer & Clark). */
struct VaxMix
{
    double instrReads = 0.95;  ///< IR
    double dataReads = 0.78;   ///< DR
    double dataWrites = 0.40;  ///< DW

    double total() const { return instrReads + dataReads + dataWrites; }
};

/** Counts of each reference type for one instruction. */
struct InstrRefs
{
    unsigned instrReads = 0;
    unsigned dataReads = 0;
    unsigned dataWrites = 0;

    unsigned
    total() const
    {
        return instrReads + dataReads + dataWrites;
    }
};

/**
 * Draw the reference counts of one instruction so that the long-run
 * means match the mix (each count is Bernoulli(fraction) plus a
 * deterministic floor for rates above 1).
 */
InstrRefs drawInstrRefs(const VaxMix &mix, Rng &rng);

/** MicroVAX 78032: base ticks per instruction with no-wait memory. */
constexpr double microVaxBaseTpi = 11.9;

/** MicroVAX tick length in 100 ns bus cycles (200 ns ticks). */
constexpr unsigned microVaxCyclesPerTick = 2;

/**
 * CVAX 78034: base ticks (100 ns) per instruction.  Chosen so the
 * chip's raw speed advantage over the MicroVAX is ~2.5x (the paper
 * reports 2.5-3.2x in other systems and 2.0-2.5x in the Firefly
 * after bus/cache effects).
 */
constexpr double cvaxBaseTpi = 9.5;

/** CVAX tick length in bus cycles (100 ns ticks). */
constexpr unsigned cvaxCyclesPerTick = 1;

/** Ticks a cache hit occupies the processor memory interface.
 *  MicroVAX: 400 ns memory cycle = 2 ticks; CVAX: 200 ns = 2 ticks. */
constexpr unsigned hitTicks = 2;

} // namespace firefly

#endif // FIREFLY_CPU_VAX_MIX_HH
