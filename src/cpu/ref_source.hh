/**
 * @file
 * The interface between workload generators and the CPU timing model.
 *
 * A RefSource produces the architectural activity of a program: a
 * sequence of memory references (the VAX reference stream) separated
 * by compute time.  TraceCpu consumes steps and charges the timing
 * model (hit latency, miss latency via the cache/bus, compute ticks).
 */

#ifndef FIREFLY_CPU_REF_SOURCE_HH
#define FIREFLY_CPU_REF_SOURCE_HH

#include <cstdint>

#include "cache/mem_ref.hh"
#include "sim/types.hh"

namespace firefly
{

/** One step of processor activity. */
struct CpuStep
{
    enum class Kind : std::uint8_t
    {
        Ref,      ///< a memory reference
        Compute,  ///< busy for `ticks` processor ticks, no memory
        Halt,     ///< the program is finished
    };

    Kind kind = Kind::Halt;
    MemRef ref{};
    std::uint32_t ticks = 0;
    /** Override for the ticks a *hit* on this reference occupies the
     *  processor (0 = the timing model's default).  Used to model
     *  overlapped instruction prefetches. */
    std::uint8_t hitCharge = 0;

    static CpuStep
    makeRef(const MemRef &r)
    {
        CpuStep s;
        s.kind = Kind::Ref;
        s.ref = r;
        return s;
    }

    static CpuStep
    makeCompute(std::uint32_t ticks)
    {
        CpuStep s;
        s.kind = Kind::Compute;
        s.ticks = ticks;
        return s;
    }

    static CpuStep
    makeHalt()
    {
        return CpuStep{};
    }
};

/** Produces the activity stream of one processor. */
class RefSource
{
  public:
    virtual ~RefSource() = default;

    /** Next step.  Called again after Halt it must keep saying Halt. */
    virtual CpuStep next() = 0;

    /**
     * A previously issued reference completed; `data` is the value
     * actually read from the coherent memory system (0 for writes).
     * Lets a workload perform real read-modify-write sequences (the
     * Topaz runtime's lock-protected counters use this).
     */
    virtual void
    onRefCompleted(const MemRef &ref, Word data)
    {
        (void)ref;
        (void)data;
    }

    /** Instructions completed so far (for TPI accounting). */
    virtual std::uint64_t instructionsCompleted() const { return 0; }
};

} // namespace firefly

#endif // FIREFLY_CPU_REF_SOURCE_HH
