/**
 * @file
 * The processor timing model.
 *
 * A TraceCpu executes the activity stream of a RefSource against its
 * cache with the paper's timing:
 *
 *   MicroVAX 78032: 200 ns ticks (2 bus cycles); a cache hit occupies
 *   the memory interface for one 400 ns memory cycle (2 ticks); a
 *   clean miss adds one tick when the bus is free; a dirty miss adds
 *   a victim write first.  With the 11.9-TPI base workload this gives
 *   ~420 K instructions/s and ~36 % interface occupancy, matching
 *   Section 5's description.
 *
 *   CVAX 78034: 100 ns ticks; hits complete in 200 ns; misses add
 *   four CVAX cycles plus bus waiting.  An optional on-chip cache
 *   filters instruction (and, for the ablation, data) reads at
 *   one-tick occupancy.
 *
 * Tag-store contention (a snoop probe in the same cycle) costs one
 * retry tick - the analytic model's SP term.
 */

#ifndef FIREFLY_CPU_TRACE_CPU_HH
#define FIREFLY_CPU_TRACE_CPU_HH

#include <string>

#include "cache/cache.hh"
#include "cpu/onchip_cache.hh"
#include "cpu/ref_source.hh"
#include "cpu/vax_mix.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace firefly
{

/** Processor timing parameters. */
struct CpuTiming
{
    unsigned cyclesPerTick = microVaxCyclesPerTick;
    unsigned hitOccupancyTicks = hitTicks;
    /** Ticks to restart the pipeline after a miss completes.  One
     *  200 ns tick on the MicroVAX (miss adds +1 tick over a hit);
     *  two 100 ns ticks on the CVAX (miss adds +4 CVAX cycles). */
    unsigned missRestartTicks = 1;

    static CpuTiming
    microVax()
    {
        return {microVaxCyclesPerTick, hitTicks, 1};
    }

    static CpuTiming
    cvax()
    {
        return {cvaxCyclesPerTick, hitTicks, 2};
    }
};

/** One processor: consumes a RefSource, drives a Cache. */
class TraceCpu : public Clocked
{
  public:
    TraceCpu(Simulator &sim, Cache &cache, RefSource &source,
             CpuTiming timing, std::string name,
             OnChipCache *onchip = nullptr);

    void tick(Cycle now) override;
    Cycle nextWake(Cycle now) const override;

    /**
     * Fence the processor: it stops issuing new work, drains any
     * outstanding miss, then halts.  Used to offline a processor
     * mid-run; a fenced processor never resumes.
     */
    void fence() { fenced = true; }
    bool isFenced() const { return fenced; }

    bool halted() const { return _halted; }
    const std::string &name() const { return _name; }

    /** Instructions completed (delegated to the source). */
    std::uint64_t
    instructions() const
    {
        return source.instructionsCompleted();
    }

    /** Processor ticks elapsed (including wait ticks). */
    std::uint64_t ticksElapsed() const { return tickCount.value(); }

    /** Achieved ticks per instruction so far. */
    double
    tpi() const
    {
        const auto instrs = instructions();
        return instrs ? static_cast<double>(ticksElapsed()) / instrs
                      : 0.0;
    }

    StatGroup &stats() { return statGroup; }

    Counter tickCount;       ///< processor ticks elapsed
    Counter computeTickCount;///< ticks spent in non-memory compute
    Counter memWaitTicks;    ///< ticks stalled on cache misses
    Counter tagRetryTicks;   ///< ticks lost to tag-store contention
    Counter onchipServed;    ///< references filtered by on-chip cache

  private:
    void issue(Cycle now);

    Simulator &sim;
    Cache &cache;
    RefSource &source;
    CpuTiming timing;
    std::string _name;
    OnChipCache *onchip;

    /** Next cycle that is a processor tick boundary.  Kept instead of
     *  computing `now % cyclesPerTick` so the every-cycle early-out in
     *  tick() is a compare, not a division (hot: once per CPU per
     *  simulated cycle). */
    Cycle nextTickCycle = 0;

    bool _halted = false;
    bool fenced = false;
    bool waitingForMem = false;
    bool hasPending = false;
    CpuStep pending{};
    std::uint64_t computeRemaining = 0;

    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_CPU_TRACE_CPU_HH
