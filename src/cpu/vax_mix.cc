#include "cpu/vax_mix.hh"

namespace firefly
{

namespace
{

unsigned
drawCount(double mean, Rng &rng)
{
    unsigned count = static_cast<unsigned>(mean);
    const double frac = mean - count;
    if (rng.chance(frac))
        ++count;
    return count;
}

} // namespace

InstrRefs
drawInstrRefs(const VaxMix &mix, Rng &rng)
{
    InstrRefs refs;
    refs.instrReads = drawCount(mix.instrReads, rng);
    refs.dataReads = drawCount(mix.dataReads, rng);
    refs.dataWrites = drawCount(mix.dataWrites, rng);
    return refs;
}

} // namespace firefly
