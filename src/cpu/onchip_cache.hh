/**
 * @file
 * The CVAX 78034 on-chip cache.
 *
 * 1 KB, inside the processor chip, faster than the board cache.  The
 * paper: "To simplify the problem of maintaining memory coherence, we
 * have chosen to configure that cache to store only instruction
 * references, not data" - because the on-chip cache does not snoop
 * the MBus, cached *data* could go stale when another processor (or
 * DMA) writes the location.
 *
 * This model supports both configurations.  In InstructionsAndData
 * mode it registers as a bus write observer: every observed write
 * that hits an on-chip line is counted as a *stale incident* (the
 * access that real non-snooping hardware would have served with
 * stale data) and the line is invalidated so the simulation stays
 * functionally correct.  The X5 ablation uses this counter.
 */

#ifndef FIREFLY_CPU_ONCHIP_CACHE_HH
#define FIREFLY_CPU_ONCHIP_CACHE_HH

#include <string>
#include <vector>

#include "cache/coherence_observer.hh"
#include "cache/mem_ref.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace firefly
{

/** Small direct-mapped non-snooping first-level cache (tags only). */
class OnChipCache
{
  public:
    enum class DataMode
    {
        InstructionsOnly,
        InstructionsAndData,
    };

    struct Config
    {
        Addr sizeBytes = 1024;
        Addr lineBytes = 8;
        DataMode mode = DataMode::InstructionsOnly;
    };

    OnChipCache(const Config &config, std::string name);

    /**
     * Filter an access: true if served on chip (hit); on a cacheable
     * miss the tag is installed and false is returned (the access
     * proceeds to the board cache).  Writes always miss and
     * invalidate any matching on-chip line (write-through to the
     * board cache keeps the hierarchy consistent).
     */
    bool access(const MemRef &ref);

    /** Bus write observed at `addr`: invalidate and count staleness. */
    void observeBusWrite(Addr addr, unsigned words);

    void invalidateAll();

    bool cachesData() const
    {
        return cfg.mode == DataMode::InstructionsAndData;
    }

    const std::string &name() const { return statGroup.name(); }
    Addr lineBytes() const { return cfg.lineBytes; }

    /** Attach a coherence checker (nullptr detaches). */
    void setCoherenceObserver(CoherenceObserver *observer)
    {
        checkObs = observer;
    }

    StatGroup &stats() { return statGroup; }

    Counter hits;
    Counter misses;
    /** Observed writes that hit a line cached on chip: the accesses a
     *  real non-snooping on-chip data cache would have got wrong. */
    Counter staleIncidents;

  private:
    struct Entry
    {
        bool valid = false;
        Addr base = 0;
    };

    Addr lineBaseOf(Addr addr) const;
    Entry &entryFor(Addr addr);

    Config cfg;
    std::vector<Entry> entries;
    CoherenceObserver *checkObs = nullptr;
    StatGroup statGroup;
};

} // namespace firefly

#endif // FIREFLY_CPU_ONCHIP_CACHE_HH
