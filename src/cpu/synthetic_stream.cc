#include "cpu/synthetic_stream.hh"

#include "sim/logging.hh"

namespace firefly
{

SyntheticStream::SyntheticStream(const SyntheticConfig &config)
    : cfg(config), rng(config.seed)
{
    if (cfg.codeBytes < 4 || cfg.privateBytes < 4 || cfg.sharedBytes < 4)
        fatal("synthetic regions must be non-empty");
    pc = cfg.codeBase;
    loopStart = cfg.codeBase;
    reuse.reserve(cfg.reuseWindow);
}

std::uint64_t
SyntheticStream::instructionsCompleted() const
{
    return instructions;
}

Addr
SyntheticStream::freshAddr(Addr base, Addr bytes)
{
    return base + 4 * static_cast<Addr>(rng.below(bytes / 4));
}

Addr
SyntheticStream::pickDataAddr(bool is_write)
{
    // The sharing fractions apply to the whole access stream (the
    // paper's S is "a fraction S = 0.1 of the processor's writes are
    // to shared data"), so check them before the locality model.
    const double shared_frac =
        is_write ? cfg.writeSharedFrac : cfg.readSharedFrac;
    if (rng.chance(shared_frac))
        return freshAddr(cfg.sharedBase, cfg.sharedBytes);

    // Temporal locality: usually re-touch something recent.
    const double reuse_prob =
        is_write ? cfg.writeReuseProb : cfg.dataReuseProb;
    if (!reuse.empty() && rng.chance(reuse_prob))
        return reuse[rng.below(reuse.size())];

    Addr addr;
    if (lastFresh != 0 && rng.chance(cfg.dataSequentialProb) &&
        lastFresh + 4 < cfg.privateBase + cfg.privateBytes) {
        addr = lastFresh + 4;  // sequential run through private data
        lastFresh = addr;
    } else {
        addr = freshAddr(cfg.privateBase, cfg.privateBytes);
        lastFresh = addr;
    }

    if (reuse.size() < cfg.reuseWindow) {
        reuse.push_back(addr);
    } else {
        reuse[reuseNext] = addr;
        reuseNext = (reuseNext + 1) % reuse.size();
    }
    return addr;
}

void
SyntheticStream::startInstruction()
{
    ++instructions;
    const InstrRefs refs = drawInstrRefs(cfg.mix, rng);

    // Instruction fetches: sequential until a branch.
    for (unsigned i = 0; i < refs.instrReads; ++i) {
        stepQueue.push_back(
            CpuStep::makeRef({pc, RefType::InstrRead, 0}));
        pc += 4;
        if (pc >= cfg.codeBase + cfg.codeBytes)
            pc = cfg.codeBase;
    }
    if (rng.chance(cfg.branchProb)) {
        if (rng.chance(cfg.loopBranchFrac)) {
            // Loop back within the hot region.
            pc = loopStart +
                 4 * static_cast<Addr>(rng.below(cfg.loopWords));
        } else {
            // Far branch: move the hot loop somewhere cold.
            loopStart = freshAddr(cfg.codeBase,
                                  cfg.codeBytes - 4 * cfg.loopWords);
            loopStart -= loopStart % 4;
            pc = loopStart;
        }
    }

    // Data references.
    for (unsigned i = 0; i < refs.dataReads; ++i) {
        stepQueue.push_back(
            CpuStep::makeRef({pickDataAddr(false), RefType::DataRead, 0}));
    }
    for (unsigned i = 0; i < refs.dataWrites; ++i) {
        stepQueue.push_back(CpuStep::makeRef(
            {pickDataAddr(true), RefType::DataWrite, writeSeq++}));
    }

    // Non-memory compute time, dithered to hit the fractional mean.
    computeDebt += cfg.computeTicksPerInstr;
    const auto ticks = static_cast<std::uint32_t>(computeDebt);
    computeDebt -= ticks;
    if (ticks > 0)
        stepQueue.push_back(CpuStep::makeCompute(ticks));
}

CpuStep
SyntheticStream::next()
{
    if (stepQueue.empty()) {
        if (cfg.instructionLimit != 0 &&
            instructions >= cfg.instructionLimit) {
            return CpuStep::makeHalt();
        }
        startInstruction();
    }
    const CpuStep step = stepQueue.front();
    stepQueue.pop_front();
    return step;
}

} // namespace firefly
