#include "cpu/trace_cpu.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

TraceCpu::TraceCpu(Simulator &sim, Cache &cache, RefSource &source,
                   CpuTiming timing, std::string name,
                   OnChipCache *onchip)
    : sim(sim), cache(cache), source(source), timing(timing),
      _name(std::move(name)), onchip(onchip), statGroup(_name)
{
    sim.addClocked(this, Phase::Cpu);

    // First tick boundary at or after "now": keeps tick phase on
    // multiples of cyclesPerTick even for a CPU attached mid-run.
    const Cycle cpt = timing.cyclesPerTick;
    nextTickCycle = (sim.now() + cpt - 1) / cpt * cpt;

    statGroup.addCounter(&tickCount, "ticks", "processor ticks");
    statGroup.addCounter(&computeTickCount, "compute_ticks",
                         "ticks of non-memory compute");
    statGroup.addCounter(&memWaitTicks, "mem_wait_ticks",
                         "ticks stalled waiting for the cache");
    statGroup.addCounter(&tagRetryTicks, "tag_retry_ticks",
                         "ticks lost to snoop tag contention");
    statGroup.addCounter(&onchipServed, "onchip_served",
                         "references filtered by the on-chip cache");
    statGroup.addFormula("instructions", "instructions completed",
        [this] { return static_cast<double>(instructions()); });
    statGroup.addFormula("tpi", "achieved ticks per instruction",
        [this] { return tpi(); });
}

Cycle
TraceCpu::nextWake(Cycle now) const
{
    // A halted processor never acts again.  A live one acts only on
    // its tick boundary (every other bus cycle on the MicroVAX): the
    // off cycles may be skipped whenever the rest of the machine is
    // idle too.  A stalled processor still counts mem_wait_ticks per
    // tick, so it must keep waking on the boundary.
    if (_halted)
        return kNeverWakes;
    return std::max(now, nextTickCycle);
}

void
TraceCpu::tick(Cycle now)
{
    if (now < nextTickCycle || _halted)
        return;
    nextTickCycle = now + timing.cyclesPerTick;

    ++tickCount;

    if (waitingForMem) {
        ++memWaitTicks;
        return;
    }
    // Doing work (compute or issue) is watchdog progress; stalling on
    // a lost memory completion deliberately is not.
    sim.noteProgress();
    if (fenced) {
        // Outstanding state is drained (no miss in flight); stop
        // issuing and halt.  The cache may still hold dirty lines -
        // the offlining host flushes them once the bus drains too.
        _halted = true;
        sim.retireClocked(this);
        if (auto *ts = obs::traceSink())
            ts->instant(sim.now(), obs::kCatCpu, _name, "fenced");
        return;
    }
    if (computeRemaining > 0) {
        --computeRemaining;
        ++computeTickCount;
        return;
    }
    issue(now);
}

void
TraceCpu::issue(Cycle now)
{
    (void)now;
    // A step may be carried over from a tag-store retry.
    for (int guard = 0; guard < 1000; ++guard) {
        if (!hasPending) {
            pending = source.next();
            hasPending = true;
        }

        switch (pending.kind) {
          case CpuStep::Kind::Halt:
            _halted = true;
            hasPending = false;
            sim.retireClocked(this);
            if (auto *ts = obs::traceSink())
                ts->instant(sim.now(), obs::kCatCpu, _name, "halt");
            return;

          case CpuStep::Kind::Compute:
            if (pending.ticks == 0) {
                hasPending = false;
                continue;  // empty step, fetch the next one
            }
            // This tick is the first of the compute burst.
            computeRemaining = pending.ticks - 1;
            ++computeTickCount;
            hasPending = false;
            return;

          case CpuStep::Kind::Ref: {
            if (onchip && onchip->access(pending.ref)) {
                // Served on chip: one-tick occupancy, no board access.
                ++onchipServed;
                hasPending = false;
                return;
            }
            const MemRef issued = pending.ref;
            const auto result = cache.cpuAccess(
                issued, [this, issued](Word data) {
                    waitingForMem = false;
                    if (auto *ts = obs::traceSink())
                        ts->end(sim.now(), obs::kCatCpu, _name);
                    // Pipeline restart after the bus completion: +1
                    // tick on the MicroVAX (the paper's one-tick miss
                    // penalty), +2 CVAX ticks (misses add 400 ns).
                    computeRemaining += timing.missRestartTicks;
                    source.onRefCompleted(issued, data);
                });
            switch (result.outcome) {
              case Cache::AccessOutcome::Hit: {
                const unsigned charge = pending.hitCharge
                    ? pending.hitCharge
                    : timing.hitOccupancyTicks;
                computeRemaining = charge - 1;
                hasPending = false;
                source.onRefCompleted(issued, result.data);
                return;
              }
              case Cache::AccessOutcome::RetryTagBusy:
                ++tagRetryTicks;
                return;  // keep the pending step, retry next tick
              case Cache::AccessOutcome::Pending:
                waitingForMem = true;
                hasPending = false;
                // The stall renders as a slice on the CPU track from
                // issue to the cache's completion callback.
                if (auto *ts = obs::traceSink()) {
                    ts->begin(sim.now(), obs::kCatCpu, _name, "stall",
                              {{"addr", obs::hexAddr(issued.addr)},
                               {"write",
                                isWrite(issued.type) ? "1" : "0"}});
                }
                return;
            }
            return;
          }
        }
    }
    panic("%s: runaway zero-length steps from the workload source",
          _name.c_str());
}

} // namespace firefly
