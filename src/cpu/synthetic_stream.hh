/**
 * @file
 * Synthetic VAX reference stream with tunable locality and sharing.
 *
 * The paper's single-processor characterisation came from
 * trace-driven simulation (Zukowski); multiprocessor sharing was
 * "arbitrarily assumed" to be S = 0.1 of writes.  Those traces do not
 * survive, so this generator reproduces the published aggregates
 * instead:
 *
 *   - reference mix IR/DR/DW = .95/.78/.40 per instruction,
 *   - per-CPU miss rate M ~ 0.2 on a 16 KB direct-mapped cache with
 *     4-byte lines,
 *   - dirty-entry fraction D ~ 0.25,
 *   - fraction S of data writes directed at a shared region.
 *
 * The model: the I-stream fetches sequentially and branches with
 * probability `branchProb` per instruction, mostly backwards into a
 * small hot loop region (temporal locality) and occasionally far
 * (cold code).  Data accesses re-reference a recent-address window
 * with probability `dataReuseProb`, otherwise touch a fresh random
 * word of the private (or, for the sharing fraction, shared) region.
 * Defaults are calibrated by tests/synthetic_test.cc.
 */

#ifndef FIREFLY_CPU_SYNTHETIC_STREAM_HH
#define FIREFLY_CPU_SYNTHETIC_STREAM_HH

#include <deque>
#include <vector>

#include "cpu/ref_source.hh"
#include "cpu/vax_mix.hh"
#include "sim/random.hh"

namespace firefly
{

/** Parameters of the synthetic workload. */
struct SyntheticConfig
{
    VaxMix mix{};

    /** Non-memory processor ticks per instruction.  Default derived
     *  from the MicroVAX: 11.9 TPI - 2.13 refs * 2 ticks = 7.64. */
    double computeTicksPerInstr = microVaxBaseTpi - 2.13 * hitTicks;

    // Memory layout (byte addresses, longword aligned).
    Addr codeBase = 0x0010'0000;
    Addr codeBytes = 256 * 1024;
    Addr privateBase = 0x0020'0000;
    Addr privateBytes = 256 * 1024;
    Addr sharedBase = 0x0008'0000;
    /** Shared region size: small enough to stay resident in every
     *  cache, so writes to it genuinely hit shared lines. */
    Addr sharedBytes = 16 * 1024;

    /** Fraction of all data writes aimed at shared data (the paper's
     *  S = 0.1). */
    double writeSharedFrac = 0.1;
    /** Fraction of all data reads aimed at shared data. */
    double readSharedFrac = 0.05;

    /** Per-instruction branch probability (ends a sequential run). */
    double branchProb = 0.25;
    /** Branches that stay within the current hot loop; the rest move
     *  the hot loop to cold code (working-set turnover). */
    double loopBranchFrac = 0.998;
    /** Hot loop length in instructions. */
    unsigned loopWords = 96;

    /** Probability a data read re-references a recent address. */
    double dataReuseProb = 0.95;
    /** Probability a data write re-references a recent address.
     *  Lower than the read locality: fresh write misses install
     *  clean lines (the longword optimisation), which keeps the
     *  dirty-entry fraction near the paper's D ~ 0.25. */
    double writeReuseProb = 0.55;
    /** Probability a *fresh* data access continues sequentially from
     *  the previous fresh one (array walks, stack frames - the
     *  spatial locality footnote 4 says a larger line would have
     *  exploited). */
    double dataSequentialProb = 0.7;
    /** Recent-address window size.  Sized so the data working set
     *  (~16 KB) strains the MicroVAX cache but fits the CVAX's. */
    unsigned reuseWindow = 2048;

    /** Instructions to run before halting (0 = endless). */
    std::uint64_t instructionLimit = 0;

    std::uint64_t seed = 1;
};

/** Generates the synthetic stream for one processor. */
class SyntheticStream : public RefSource
{
  public:
    explicit SyntheticStream(const SyntheticConfig &config);

    CpuStep next() override;
    std::uint64_t instructionsCompleted() const override;

  private:
    void startInstruction();
    Addr pickDataAddr(bool is_write);
    Addr freshAddr(Addr base, Addr bytes);

    SyntheticConfig cfg;
    Rng rng;

    // I-stream state.
    Addr pc;        ///< next fetch address
    Addr loopStart; ///< base of the current hot loop

    // Recently used data addresses (temporal locality pool).
    std::vector<Addr> reuse;
    std::size_t reuseNext = 0;
    Addr lastFresh = 0;  ///< previous fresh data address (runs)

    // Steps queued for the current instruction.
    std::deque<CpuStep> stepQueue;
    double computeDebt = 0.0;
    std::uint64_t instructions = 0;
    Word writeSeq = 1;
};

} // namespace firefly

#endif // FIREFLY_CPU_SYNTHETIC_STREAM_HH
