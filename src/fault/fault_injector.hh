/**
 * @file
 * The fault-injection subsystem.
 *
 * One FaultInjector per simulated machine owns the FaultPlan, the
 * recovery tuning knobs (retry budgets, backoff), the fault/recovery
 * statistics, and the machine-check path.  Components that can take
 * faults (MBus, MemoryModule, DmaEngine) each hold an optional
 * pointer to the injector; with none attached every fault site is a
 * single null check and behaviour is bit-identical to a fault-free
 * build.
 *
 * Recoverable faults are handled where they land (the bus retries a
 * NACKed transaction, devices retry timed-out DMA) and every attempt
 * and recovery is visible in the flight recorder under the "Fault"
 * category.  Unrecoverable faults - a double-bit ECC error, a retry
 * budget exhausted - funnel through machineCheck(): the diagnostic is
 * deterministic, the machine-check interrupt hook fires (wired to
 * mbus/interrupts by FireflySystem), and the run ends with either a
 * MachineCheck exception (tests) or a fatal diagnostic, never a hang
 * or silent corruption.
 */

#ifndef FIREFLY_FAULT_FAULT_INJECTOR_HH
#define FIREFLY_FAULT_FAULT_INJECTOR_HH

#include <functional>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hh"
#include "sim/stats.hh"

namespace firefly::fault
{

/** Fault campaign configuration: what fires and how recovery runs. */
struct FaultConfig
{
    /** Master switch; a config with rates but enabled=false is inert
     *  (active() is what components should test). */
    bool enabled = false;
    FaultRates rates;
    std::uint64_t seed = 1;

    // --- MBus parity recovery ---------------------------------------
    /** Attempts (including the first) before a machine check. */
    unsigned parityRetryBudget = 8;
    /** Backoff before retry k is min(base << (k-1), cap) cycles. */
    Cycle parityBackoffBase = 2;
    Cycle parityBackoffCap = 64;

    // --- device timeout recovery ------------------------------------
    /** Cycles a timed-out DMA request burns before failing. */
    Cycle deviceTimeoutCycles = 2000;
    /** Transfer attempts (including the first) before giving up. */
    unsigned deviceRetryBudget = 4;
    Cycle deviceBackoffBase = 500;
    Cycle deviceBackoffCap = 8000;

    // --- wedge watchdog ----------------------------------------------
    /** Abort if no component makes progress for this many cycles
     *  (0 leaves the simulator's watchdog untouched). */
    Cycle watchdogCycles = 1'000'000;

    /** Throw MachineCheck instead of dying; tests use this to assert
     *  on the diagnostic. */
    bool throwOnMachineCheck = false;

    bool active() const { return enabled || rates.any(); }
};

/** An unrecoverable fault, surfaced as a typed exception. */
class MachineCheck : public std::runtime_error
{
  public:
    MachineCheck(std::string unit, std::string diagnostic)
        : std::runtime_error("machine check [" + unit + "]: " +
                             diagnostic),
          unit(std::move(unit)), diagnostic(std::move(diagnostic))
    {
    }

    const std::string unit;
    const std::string diagnostic;
};

/** Owns the plan, the recovery knobs, and the machine-check path. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return cfg; }
    FaultPlan &faultPlan() { return plan; }

    /** Backoff before parity retry attempt k (k >= 1). */
    Cycle parityBackoff(unsigned attempt) const;
    /** Backoff before device transfer retry attempt k (k >= 1). */
    Cycle deviceBackoff(unsigned attempt) const;

    /**
     * Delivered synchronously before the run dies; FireflySystem
     * wires this to InterruptController::raiseMachineCheck.
     */
    using MachineCheckHook =
        std::function<void(const std::string &unit,
                           const std::string &diagnostic)>;
    void setMachineCheckHook(MachineCheckHook hook)
    {
        mcHook = std::move(hook);
    }

    /**
     * An unrecoverable fault: emit the flight-recorder event, deliver
     * the machine-check interrupt, then throw MachineCheck (if
     * configured) or die with the deterministic diagnostic.
     */
    [[noreturn]] void machineCheck(const std::string &unit,
                                   const std::string &diagnostic);

    StatGroup &stats() { return statGroup; }

    // Fault and recovery counters, public like every component's.
    Counter parityErrors;     ///< bus attempts NACKed for parity
    Counter parityRetries;    ///< retries scheduled after a NACK
    Counter parityRecovered;  ///< transactions completed after >=1 NACK
    Counter eccCorrected;     ///< single-bit reads corrected+scrubbed
    Counter eccUncorrectable; ///< double-bit reads (machine check)
    Counter deviceTimeouts;   ///< DMA requests that timed out
    Counter deviceRetries;    ///< device-level transfer retries
    Counter deviceFailures;   ///< transfers failed after the budget
    Counter machineChecks;    ///< unrecoverable faults raised

  private:
    FaultConfig cfg;
    FaultPlan plan;
    MachineCheckHook mcHook;
    StatGroup statGroup;
};

} // namespace firefly::fault

#endif // FIREFLY_FAULT_FAULT_INJECTOR_HH
