/**
 * @file
 * Deterministic fault scheduling.
 *
 * A FaultPlan decides, at every potential fault site, whether a fault
 * fires there.  Like the fuzzer's reference stream (check/fuzz.hh),
 * the plan is a pure function of (seed, rates): the n-th decision of
 * a given fault stream hashes (seed ^ stream ^ n) through SplitMix64
 * and compares the resulting uniform deviate against the configured
 * rate.  Because the simulation itself is deterministic, the n-th
 * bus transaction / memory read / device request of a run is always
 * the same one, so a fault campaign replays exactly from its seed -
 * no RNG state threads through the simulator, and streams cannot
 * perturb each other no matter how components interleave.
 */

#ifndef FIREFLY_FAULT_FAULT_PLAN_HH
#define FIREFLY_FAULT_FAULT_PLAN_HH

#include <cstdint>

#include "sim/types.hh"

namespace firefly::fault
{

/** Per-site fault probabilities (0.0 disables a stream). */
struct FaultRates
{
    /** P(parity error) per bus transaction attempt, drawn as the
     *  transaction enters its data cycle.  Retries draw again. */
    double busParity = 0.0;
    /** P(correctable single-bit flip) per timed memory-module read. */
    double eccSingle = 0.0;
    /** P(uncorrectable double-bit error) per timed module read. */
    double eccDouble = 0.0;
    /** P(request-level hang) per DMA request issued to the engine. */
    double deviceTimeout = 0.0;

    bool
    any() const
    {
        return busParity > 0.0 || eccSingle > 0.0 || eccDouble > 0.0 ||
               deviceTimeout > 0.0;
    }
};

/** Counter-hash fault schedule: pure function of seed + rates. */
class FaultPlan
{
  public:
    FaultPlan(std::uint64_t seed, const FaultRates &rates)
        : seed(seed), rates(rates)
    {
    }

    /** One draw per bus transaction attempt. */
    bool
    busParityError()
    {
        return draw(kStreamParity, parityCount++) < rates.busParity;
    }

    enum class EccOutcome : std::uint8_t
    {
        Ok,
        Corrected,      ///< single-bit flip, corrected and scrubbed
        Uncorrectable,  ///< double-bit error, machine check
    };

    /** One draw per timed memory-module read; `addr` salts which
     *  outcome a firing draw produces, not whether it fires. */
    EccOutcome
    eccOnRead(Addr addr)
    {
        const double u = draw(kStreamEcc, eccCount++);
        // Double-bit errors claim the bottom of the deviate range so
        // raising eccSingle never converts scheduled uncorrectables
        // into correctables.
        if (u < rates.eccDouble)
            return EccOutcome::Uncorrectable;
        if (u < rates.eccDouble + rates.eccSingle) {
            (void)addr;
            return EccOutcome::Corrected;
        }
        return EccOutcome::Ok;
    }

    /** One draw per DMA request handed to the engine. */
    bool
    deviceTimeout()
    {
        return draw(kStreamDevice, deviceCount++) < rates.deviceTimeout;
    }

  private:
    static constexpr std::uint64_t kStreamParity = 0x9d2c'5681'0000'0001ULL;
    static constexpr std::uint64_t kStreamEcc = 0x9d2c'5681'0000'0002ULL;
    static constexpr std::uint64_t kStreamDevice = 0x9d2c'5681'0000'0003ULL;

    static std::uint64_t
    splitMix64(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    /** Uniform deviate in [0, 1) for decision `n` of `stream`. */
    double
    draw(std::uint64_t stream, std::uint64_t n) const
    {
        const std::uint64_t h = splitMix64(seed ^ stream ^ (n * 0x2545f4914f6cdd1dULL));
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    }

    std::uint64_t seed;
    FaultRates rates;
    std::uint64_t parityCount = 0;
    std::uint64_t eccCount = 0;
    std::uint64_t deviceCount = 0;
};

} // namespace firefly::fault

#endif // FIREFLY_FAULT_FAULT_PLAN_HH
