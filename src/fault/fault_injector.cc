#include "fault/fault_injector.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly::fault
{

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg(config), plan(config.seed, config.rates), statGroup("faults")
{
    if (cfg.parityRetryBudget == 0 || cfg.deviceRetryBudget == 0)
        fatal("fault retry budgets must allow at least one attempt");

    statGroup.addCounter(&parityErrors, "parity_errors",
                         "bus transaction attempts NACKed for parity");
    statGroup.addCounter(&parityRetries, "parity_retries",
                         "bus retries scheduled after a parity NACK");
    statGroup.addCounter(&parityRecovered, "parity_recovered",
                         "transactions completed after >=1 NACK");
    statGroup.addCounter(&eccCorrected, "ecc_corrected",
                         "single-bit memory errors corrected on read");
    statGroup.addCounter(&eccUncorrectable, "ecc_uncorrectable",
                         "double-bit memory errors detected");
    statGroup.addCounter(&deviceTimeouts, "device_timeouts",
                         "DMA requests that timed out");
    statGroup.addCounter(&deviceRetries, "device_retries",
                         "device transfer retries after a timeout");
    statGroup.addCounter(&deviceFailures, "device_failures",
                         "transfers failed after the retry budget");
    statGroup.addCounter(&machineChecks, "machine_checks",
                         "unrecoverable faults raised");
}

Cycle
FaultInjector::parityBackoff(unsigned attempt) const
{
    if (attempt == 0)
        return 0;
    const unsigned shift = std::min(attempt - 1, 30u);
    return std::min<Cycle>(cfg.parityBackoffBase << shift,
                           cfg.parityBackoffCap);
}

Cycle
FaultInjector::deviceBackoff(unsigned attempt) const
{
    if (attempt == 0)
        return 0;
    const unsigned shift = std::min(attempt - 1, 30u);
    return std::min<Cycle>(cfg.deviceBackoffBase << shift,
                           cfg.deviceBackoffCap);
}

void
FaultInjector::machineCheck(const std::string &unit,
                            const std::string &diagnostic)
{
    ++machineChecks;
    if (auto *ts = obs::traceSink()) {
        ts->instant(obs::traceNow(), obs::kCatFault, "faults",
                    "machine-check",
                    {{"unit", unit}, {"diag", diagnostic}});
    }
    if (mcHook)
        mcHook(unit, diagnostic);
    if (cfg.throwOnMachineCheck)
        throw MachineCheck(unit, diagnostic);
    fatal("machine check [%s]: %s", unit.c_str(), diagnostic.c_str());
}

} // namespace firefly::fault
