#include "analytic/queueing_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace firefly
{

QueueingModel::QueueingModel(const QueueModelParams &params)
    : p(params)
{
    if (p.missRate < 0 || p.missRate > 1 || p.baseTpi <= 0 ||
        p.ticksPerBusOp <= 0) {
        fatal("nonsensical queueing model parameters");
    }
}

double
QueueingModel::sm(double load) const
{
    return p.mix.total() * p.missRate * (1.0 + p.dirtyFraction) *
           p.ticksPerBusOp / (1.0 - load);
}

double
QueueingModel::sw(double load) const
{
    return p.mix.dataWrites * p.sharedWriteFrac * p.ticksPerBusOp /
           (1.0 - load);
}

double
QueueingModel::sp(double load) const
{
    return p.mix.total() * (1.0 - p.missRate) * load / p.ticksPerBusOp;
}

double
QueueingModel::tpi(double load) const
{
    return p.baseTpi + sm(load) + sw(load) + sp(load);
}

double
QueueingModel::relativePerformance(double load) const
{
    return p.baseTpi / tpi(load);
}

double
QueueingModel::busOpsPerInstruction() const
{
    return p.missRate * p.mix.total() * (1.0 + p.dirtyFraction) +
           p.mix.dataWrites * p.sharedWriteFrac;
}

double
QueueingModel::processorsForLoad(double load) const
{
    // NP = (L/N) / (busOpsPerInstruction / TPI).
    return load * tpi(load) / (p.ticksPerBusOp * busOpsPerInstruction());
}

double
QueueingModel::totalPerformance(double load) const
{
    return relativePerformance(load) * processorsForLoad(load);
}

double
QueueingModel::loadForProcessors(double processors) const
{
    if (processors <= 0)
        return 0.0;
    double lo = 0.0, hi = 1.0 - 1e-9;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (processorsForLoad(mid) < processors)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

PerformanceRow
QueueingModel::rowForProcessors(double processors) const
{
    const double load = loadForProcessors(processors);
    return {processors, load, tpi(load), relativePerformance(load),
            totalPerformance(load)};
}

std::vector<PerformanceRow>
QueueingModel::table1() const
{
    std::vector<PerformanceRow> rows;
    for (int np = 2; np <= 12; np += 2)
        rows.push_back(rowForProcessors(np));
    return rows;
}

PerformanceRow
QueueingModel::closedRowForProcessors(unsigned processors) const
{
    // One bus operation takes s = N ticks of service; between bus
    // operations a processor "thinks" for the rest of its
    // instruction time: Z = baseTpi / (ops per instruction).
    const double ops_per_instr = busOpsPerInstruction();
    const double s = p.ticksPerBusOp;
    const double z = p.baseTpi / ops_per_instr;

    // Exact MVA on the single bus station.
    double queue = 0.0;
    double throughput = 0.0;  // bus ops per tick, whole system
    for (unsigned k = 1; k <= processors; ++k) {
        const double response = s * (1.0 + queue);
        throughput = k / (z + response);
        queue = throughput * response;
    }

    const double load = throughput * s;
    // Ticks per instruction: each processor completes
    // throughput/NP ops per tick = (throughput/NP)/ops_per_instr
    // instructions per tick; add the tag-probe interference term the
    // open model also charges.
    double tpi = processors * ops_per_instr / throughput;
    tpi += sp(load);
    const double rp = p.baseTpi / tpi;
    return {static_cast<double>(processors), load, tpi, rp,
            rp * processors};
}

double
QueueingModel::saturationProcessors(double threshold) const
{
    double prev_tp = totalPerformance(loadForProcessors(1.0));
    for (double np = 2.0; np < 64.0; np += 1.0) {
        const double tp = totalPerformance(loadForProcessors(np));
        if (tp - prev_tp < threshold)
            return np - 1.0;  // the last worthwhile processor count
        prev_tp = tp;
    }
    return 64.0;
}

} // namespace firefly
