/**
 * @file
 * The paper's back-of-the-envelope performance model (Section 5.2).
 *
 * A single processor's cache behaviour (miss rate M, dirty fraction
 * D) plus the VAX reference mix feed an open queueing model of the
 * MBus: an operation takes N ticks plus N*L/(1-L) of queueing at bus
 * load L.  Three terms inflate the base 11.9 TPI:
 *
 *   SM (misses)        = TR * M * (1+D) * N/(1-L)
 *   SW (write-through) = DW * S * N/(1-L)
 *   SP (tag probes)    = TR * (1-M) * (1/N) * L
 *
 * From TPI(L) follow the relative per-processor performance
 * RP = TPI0/TPI, the processor count that generates the load
 * NP = L*TPI / (N*(M*TR*(1+D) + DW*S)), and total performance
 * TP = RP*NP.  Table 1 tabulates these for NP = 2..12.
 */

#ifndef FIREFLY_ANALYTIC_QUEUEING_MODEL_HH
#define FIREFLY_ANALYTIC_QUEUEING_MODEL_HH

#include <vector>

#include "cpu/vax_mix.hh"

namespace firefly
{

/** Inputs to the Section 5.2 model, defaulted to the paper's values. */
struct QueueModelParams
{
    VaxMix mix{};
    double missRate = 0.2;         ///< M, per-CPU cache miss rate
    double dirtyFraction = 0.25;   ///< D, dirty cache entries
    double sharedWriteFrac = 0.1;  ///< S, writes to shared data
    double baseTpi = microVaxBaseTpi;  ///< no-wait-state TPI
    double ticksPerBusOp = 2.0;    ///< N, MBus op duration in ticks
};

/** One row of Table 1. */
struct PerformanceRow
{
    double processors;   ///< NP
    double busLoad;      ///< L
    double tpi;          ///< TPI
    double relativePerf; ///< RP
    double totalPerf;    ///< TP
};

/** The Section 5.2 open queueing model. */
class QueueingModel
{
  public:
    explicit QueueingModel(const QueueModelParams &params = {});

    const QueueModelParams &params() const { return p; }

    /** Ticks per instruction added by miss service at load L. */
    double sm(double load) const;
    /** Ticks added by shared write-throughs. */
    double sw(double load) const;
    /** Ticks lost to snoop probes of the tag store. */
    double sp(double load) const;

    /** Total ticks per instruction at bus load L. */
    double tpi(double load) const;
    /** Per-processor performance relative to no-wait-state memory. */
    double relativePerformance(double load) const;
    /** MBus operations issued per instruction by one processor. */
    double busOpsPerInstruction() const;
    /** Number of processors that would produce bus load L. */
    double processorsForLoad(double load) const;
    /** System performance (in single-no-wait-processor units). */
    double totalPerformance(double load) const;

    /** Invert processorsForLoad by bisection. */
    double loadForProcessors(double processors) const;

    /** All five Table 1 quantities for a processor count. */
    PerformanceRow rowForProcessors(double processors) const;

    /** The paper's Table 1: NP = 2, 4, 6, 8, 10, 12. */
    std::vector<PerformanceRow> table1() const;

    /**
     * Smallest processor count whose marginal total-performance gain
     * per added processor falls below `threshold` (the paper: "the
     * Firefly MBus can support perhaps nine processors before the
     * marginal improvement ... becomes unattractive").
     */
    double saturationProcessors(double threshold = 0.5) const;

    /**
     * Closed-network refinement.  The paper's open model charges
     * every bus operation N/(1-L) ticks and admits "this is not
     * accurate at high loads, since the number of caches requesting
     * service is bounded".  This variant treats the machine as a
     * closed queueing network - NP customers cycling between a think
     * stage (compute between bus operations) and the bus - solved by
     * exact Mean Value Analysis, so the bounded population is
     * honoured and the predicted load never reaches 1.
     */
    PerformanceRow closedRowForProcessors(unsigned processors) const;

  private:
    QueueModelParams p;
};

} // namespace firefly

#endif // FIREFLY_ANALYTIC_QUEUEING_MODEL_HH
