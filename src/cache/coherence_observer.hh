/**
 * @file
 * Hook interface for a coherence correctness checker.
 *
 * The cache engine and the on-chip cache call these hooks at the
 * simulated instants that matter for coherence:
 *
 *  - writeSerialized(): a store became globally visible.  For silent
 *    write-back hits that is the write instant itself (the line is
 *    exclusive, so local visibility is global visibility); for
 *    ownership-acquiring writes (MInvalidate, MReadOwned) it is the
 *    commit of the acquiring bus transaction.  Bus MWrites serialize
 *    on the bus and are observed there, not here (mbus.hh
 *    addCommitObserver).
 *  - loadObserved(): a load bound its return value - fast-path hits,
 *    fill completions, DMA reads.
 *  - onChipInstalled()/onChipHit(): the tags-only CVAX on-chip cache
 *    installed a line / served an access from it.  The on-chip cache
 *    stores no data, so the checker validates it by snapshotting the
 *    oracle at install time and comparing on every hit: a divergence
 *    means the non-snooping structure would have served stale data.
 *
 * Implementations live in src/check/; everything below that layer
 * sees only this interface.  All hooks are called with the observer
 * attached explicitly (never a global), so independent simulations on
 * harness worker threads do not share checker state.
 */

#ifndef FIREFLY_CACHE_COHERENCE_OBSERVER_HH
#define FIREFLY_CACHE_COHERENCE_OBSERVER_HH

#include "cache/mem_ref.hh"
#include "sim/types.hh"

namespace firefly
{

class Cache;
class OnChipCache;

/** Checker-side interface for coherence-relevant instants. */
class CoherenceObserver
{
  public:
    virtual ~CoherenceObserver() = default;

    /**
     * A store to `addr` became the globally-visible value.  `how`
     * names the serialization point ("write-hit", "read-owned",
     * "invalidate") for diagnostics.
     */
    virtual void writeSerialized(Addr addr, Word value, const Cache &by,
                                 const char *how) = 0;

    /** A load of `addr` bound `value` as its result. */
    virtual void loadObserved(Addr addr, Word value, const Cache &by,
                              const char *how) = 0;

    /** The on-chip cache installed the line containing `addr`. */
    virtual void onChipInstalled(Addr line_base, const OnChipCache &by) = 0;

    /** The on-chip cache served `ref` without consulting the board
     *  cache. */
    virtual void onChipHit(const MemRef &ref, const OnChipCache &by) = 0;
};

} // namespace firefly

#endif // FIREFLY_CACHE_COHERENCE_OBSERVER_HH
