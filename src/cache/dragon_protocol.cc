#include "cache/dragon_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
DragonProtocol::writeHit(const CacheLine &line) const
{
    switch (line.state) {
      case LineState::Valid:
      case LineState::Dirty:
        return WriteHitAction::Silent;  // E -> M, M -> M
      case LineState::Shared:
      case LineState::SharedDirty:
        // Bus update: other caches merge the word; memory does not.
        return WriteHitAction::Update;
      default:
        panic("Dragon write hit in state %s", toString(line.state));
    }
}

WriteMissAction
DragonProtocol::writeMiss(unsigned) const
{
    // Dragon always fills on a write miss, then performs the
    // write-hit action (which broadcasts an update if shared).
    return WriteMissAction::FillThenWriteHit;
}

LineState
DragonProtocol::fillState(bool mshared) const
{
    return mshared ? LineState::Shared : LineState::Valid;  // Sc / E
}

LineState
DragonProtocol::afterWriteThrough(bool mshared) const
{
    // After a bus update: if anyone still shares, we own the line as
    // Sm (memory is stale); if not, we hold it modified-exclusive.
    return mshared ? LineState::SharedDirty : LineState::Dirty;
}

SnoopReply
DragonProtocol::snoopProbe(const CacheLine &line,
                           const MBusTransaction &txn) const
{
    SnoopReply reply;
    reply.shared = true;

    switch (txn.type) {
      case MBusOpType::MRead:
        // The owner (M or Sm) supplies; memory may be stale.  Clean
        // holders let memory answer (their copy matches it only if
        // no owner exists; when an owner exists the owner responds).
        reply.supply = needsWriteback(line.state);
        break;
      case MBusOpType::MWrite:
        break;
      default:
        panic("Dragon cache snooped %s", toString(txn.type));
    }
    return reply;
}

void
DragonProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                           unsigned line_words) const
{
    switch (txn.type) {
      case MBusOpType::MRead:
        // Another cache took a copy.  M -> Sm (we still own it and
        // memory is stale); E -> Sc; Sc/Sm unchanged.
        if (line.state == LineState::Dirty)
            line.state = LineState::SharedDirty;
        else if (line.state == LineState::Valid)
            line.state = LineState::Shared;
        break;

      case MBusOpType::MWrite: {
        for (unsigned i = 0; i < txn.words; ++i) {
            const Addr a = txn.addr + i * bytesPerWord;
            if (a >= line.base &&
                a < line.base + line_words * bytesPerWord) {
                line.data[(a - line.base) / bytesPerWord] = txn.data[i];
            }
        }
        if (txn.kind == MBusOpKind::Update) {
            // The writer is the new owner (Sm); we demote to Sc.
            line.state = LineState::Shared;
        } else if (txn.updatesMemory) {
            // DMA write or foreign victim write: memory now holds the
            // written words.  If it covered the whole line our copy
            // matches memory again - clean, write-back duty gone.  A
            // partial write leaves us owing the untouched words, but
            // never with an exclusive claim: the writer kept a copy.
            const bool covered =
                txn.addr <= line.base &&
                txn.addr + txn.words * bytesPerWord >=
                    line.base + line_words * bytesPerWord;
            if (covered || !needsWriteback(line.state))
                line.state = LineState::Shared;
            else
                line.state = LineState::SharedDirty;
        }
        break;
      }

      default:
        panic("Dragon cache snooped %s", toString(txn.type));
    }
}

} // namespace firefly
