/**
 * @file
 * MESI (Illinois-style) invalidation protocol.
 *
 * The textbook write-back invalidation protocol, included so the
 * protocol-comparison experiments cover the design space the paper
 * discusses (Archibald & Baer's survey).  On a snooped read a
 * modified owner supplies the data and memory captures it
 * (Illinois-style write-back on supply), so shared copies are always
 * clean.  Writes to shared lines invalidate other copies (BusUpgr,
 * modelled as MInvalidate); write misses fetch with intent to modify
 * (BusRdX, modelled as MReadOwned).
 */

#ifndef FIREFLY_CACHE_MESI_PROTOCOL_HH
#define FIREFLY_CACHE_MESI_PROTOCOL_HH

#include "cache/protocol.hh"

namespace firefly
{

/** MESI/Illinois invalidation protocol. */
class MesiProtocol : public CoherenceProtocol
{
  public:
    const char *name() const override { return "MESI"; }

    WriteHitAction writeHit(const CacheLine &line) const override;
    WriteMissAction writeMiss(unsigned line_words) const override;
    LineState fillState(bool mshared) const override;
    LineState afterWriteThrough(bool mshared) const override;
    bool fillsUpdateMemory() const override { return true; }

    SnoopReply snoopProbe(const CacheLine &line,
                          const MBusTransaction &txn) const override;
    void snoopApply(CacheLine &line, const MBusTransaction &txn,
                    unsigned line_words) const override;
};

} // namespace firefly

#endif // FIREFLY_CACHE_MESI_PROTOCOL_HH
