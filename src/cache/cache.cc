#include "cache/cache.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace firefly
{

Cache::Cache(Simulator &sim, MBus &bus,
             std::unique_ptr<CoherenceProtocol> protocol, Geometry geom,
             std::string name)
    : sim(sim), bus(bus), proto(std::move(protocol)),
      _name(std::move(name)), statGroup(_name)
{
    if (geom.lineBytes < bytesPerWord ||
        (geom.lineBytes & (geom.lineBytes - 1)) != 0 ||
        geom.lineBytes > bytesPerWord * maxBurstWords) {
        fatal("unsupported cache line size %u", geom.lineBytes);
    }
    if (geom.cacheBytes % geom.lineBytes != 0 ||
        geom.cacheBytes < geom.lineBytes) {
        fatal("cache size %u not a multiple of line size %u",
              geom.cacheBytes, geom.lineBytes);
    }
    _lineWords = geom.lineBytes / bytesPerWord;
    lineBytes = geom.lineBytes;
    lines.resize(geom.cacheBytes / geom.lineBytes);

    bus.attach(this);

    statGroup.addCounter(&refsInstr, "refs_instr", "instruction reads");
    statGroup.addCounter(&refsRead, "refs_read", "data reads");
    statGroup.addCounter(&refsWrite, "refs_write", "data writes");
    statGroup.addCounter(&readHits, "read_hits", "read hits");
    statGroup.addCounter(&readMisses, "read_misses", "read misses");
    statGroup.addCounter(&writeHits, "write_hits", "write hits");
    statGroup.addCounter(&writeMisses, "write_misses", "write misses");
    statGroup.addCounter(&fills, "fills", "MBus reads issued");
    statGroup.addCounter(&wtMshared, "wt_mshared",
                         "write-throughs that received MShared");
    statGroup.addCounter(&wtNoMshared, "wt_no_mshared",
                         "write-throughs that did not receive MShared");
    statGroup.addCounter(&victimWrites, "victim_writes",
                         "dirty victim write-backs");
    statGroup.addCounter(&updatesSent, "updates_sent",
                         "cache-to-cache updates issued (Dragon)");
    statGroup.addCounter(&invalidatesSent, "invalidates_sent",
                         "invalidate ops issued");
    statGroup.addCounter(&tagBusyRetries, "tag_busy_retries",
                         "CPU accesses delayed by snoop tag probes");
    statGroup.addCounter(&invalidationsReceived, "invals_received",
                         "lines invalidated by snooped traffic");
    statGroup.addCounter(&updatesReceived, "updates_received",
                         "lines updated in place by snooped writes");
    statGroup.addCounter(&dmaReads, "dma_reads", "DMA reads via cache");
    statGroup.addCounter(&dmaWrites, "dma_writes",
                         "DMA writes via cache");
    statGroup.addCounter(&dmaReadMisses, "dma_read_misses",
                         "DMA reads that went to the bus");
    statGroup.addFormula("miss_rate", "(read+write misses)/refs",
        [this] {
            const double refs =
                static_cast<double>(refsInstr.value() + refsRead.value() +
                                    refsWrite.value());
            if (refs == 0)
                return 0.0;
            return static_cast<double>(readMisses.value() +
                                       writeMisses.value()) / refs;
        });
    statGroup.addFormula("mbus_read_ratio",
        "MBus reads per processor reference (paper's M in Table 2)",
        [this] {
            const double refs =
                static_cast<double>(refsInstr.value() + refsRead.value() +
                                    refsWrite.value());
            if (refs == 0)
                return 0.0;
            return static_cast<double>(fills.value()) / refs;
        });
    statGroup.addFormula("dirty_fraction",
        "fraction of valid lines needing write-back (paper's D)",
        [this] { return dirtyFraction(); });
}

const CacheLine &
Cache::lineAt(Addr byte_addr) const
{
    return lineFor(byte_addr);
}

bool
Cache::holds(Addr byte_addr) const
{
    const CacheLine &line = lineFor(byte_addr);
    return line.valid() && tagMatch(line, byte_addr);
}

void
Cache::writeWord(CacheLine &line, Addr byte_addr, Word value)
{
    line.data[(byte_addr - line.base) / bytesPerWord] = value;
}

double
Cache::dirtyFraction() const
{
    std::size_t valid = 0;
    std::size_t dirty = 0;
    for (const auto &line : lines) {
        if (line.valid()) {
            ++valid;
            if (needsWriteback(line.state))
                ++dirty;
        }
    }
    return valid ? static_cast<double>(dirty) / valid : 0.0;
}

double
Cache::validFraction() const
{
    const auto valid = std::count_if(lines.begin(), lines.end(),
        [](const CacheLine &l) { return l.valid(); });
    return static_cast<double>(valid) / lines.size();
}

double
Cache::sharedFraction() const
{
    std::size_t valid = 0;
    std::size_t shared = 0;
    for (const auto &line : lines) {
        if (line.valid()) {
            ++valid;
            if (line.state == LineState::Shared ||
                line.state == LineState::SharedDirty) {
                ++shared;
            }
        }
    }
    return valid ? static_cast<double>(shared) / valid : 0.0;
}

void
Cache::traceLine(Addr line_base, LineState old_state,
                 LineState new_state, const char *cause)
{
    if (old_state == new_state)
        return;
    if (auto *ts = obs::traceSink()) {
        ts->instant(sim.now(), obs::kCatCache, _name,
                    std::string(toString(old_state)) + "->" +
                        toString(new_state),
                    {{"addr", obs::hexAddr(line_base)},
                     {"cause", cause}});
    }
}

bool
Cache::tryFastPath(const MemRef &ref, Word &out)
{
    CacheLine &line = lineFor(ref.addr);
    const bool hit = line.valid() && tagMatch(line, ref.addr);
    if (!hit)
        return false;

    if (!isWrite(ref.type)) {
        countRef(ref, true);
        out = readWord(line, ref.addr);
        if (checkObs)
            checkObs->loadObserved(ref.addr, out, *this, "hit");
        return true;
    }
    if (proto->writeHit(line) == WriteHitAction::Silent) {
        countRef(ref, true);
        writeWord(line, ref.addr, ref.value);
        const LineState old = line.state;
        line.state = LineState::Dirty;
        traceLine(line.base, old, line.state, "write-hit");
        // The line is exclusive (a silent write requires it), so the
        // local write instant is the global serialization instant.
        if (checkObs)
            checkObs->writeSerialized(ref.addr, ref.value, *this,
                                      "write-hit");
        out = 0;
        return true;
    }
    return false;
}

Cache::AccessResult
Cache::cpuAccessSlow(const MemRef &ref, Callback cb)
{
    if (ref.addr % bytesPerWord != 0)
        panic("%s: unaligned reference 0x%x", _name.c_str(), ref.addr);

    if (tagBusyCycle == sim.now()) {
        ++tagBusyRetries;
        return {AccessOutcome::RetryTagBusy, 0};
    }

    if (queue.empty() && !engineBusy) {
        Word out = 0;
        if (tryFastPath(ref, out))
            return {AccessOutcome::Hit, out};
    }

    queue.push_back(PendingAccess{ref, false, std::move(cb),
                                  Stage::Start, false});
    if (!engineBusy && queue.size() == 1)
        startHead();
    return {AccessOutcome::Pending, 0};
}

void
Cache::dmaAccess(const MemRef &ref, Callback cb)
{
    if (ref.addr % bytesPerWord != 0)
        panic("%s: unaligned DMA to 0x%x", _name.c_str(), ref.addr);

    queue.push_back(PendingAccess{ref, true, std::move(cb),
                                  Stage::Start, false});
    if (!engineBusy && queue.size() == 1)
        startHead();
}

void
Cache::startHead()
{
    dispatchHead();
}

void
Cache::dispatchHead()
{
    PendingAccess &p = queue.front();
    CacheLine &line = lineFor(p.ref.addr);
    const bool hit = line.valid() && tagMatch(line, p.ref.addr);

    if (p.isDma) {
        if (isWrite(p.ref.type)) {
            ++dmaWrites;
            issueWriteThrough(p.ref, true, Stage::DmaWrite,
                              MBusOpKind::DmaWrite);
        } else {
            ++dmaReads;
            if (hit) {
                const Word value = readWord(line, p.ref.addr);
                if (checkObs)
                    checkObs->loadObserved(p.ref.addr, value, *this,
                                           "dma-hit");
                finishHead(value);
            } else {
                ++dmaReadMisses;
                MBusTransaction txn;
                txn.type = MBusOpType::MRead;
                txn.kind = MBusOpKind::DmaRead;
                txn.addr = p.ref.addr;
                txn.words = 1;  // DMA misses do not allocate
                txn.updatesMemory = proto->fillsUpdateMemory();
                txn.initiator = this;
                p.stage = Stage::DmaRead;
                engineBusy = true;
                bus.request(txn);
            }
        }
        return;
    }

    if (p.stage == Stage::Start) {
        // Count the reference exactly once (restarts after victim
        // writes or lost invalidation races must not recount).
        if (!p.counted) {
            countRef(p.ref, hit);
            p.counted = true;
        }
    }

    if (!isWrite(p.ref.type)) {
        if (hit) {
            const Word value = readWord(line, p.ref.addr);
            if (checkObs)
                checkObs->loadObserved(p.ref.addr, value, *this, "hit");
            finishHead(value);
            return;
        }
        if (line.valid() && needsWriteback(line.state)) {
            issueVictimWriteFor(p.ref.addr);
            return;
        }
        issueFill(p.ref.addr, Stage::Fill);
        return;
    }

    // Processor write.
    if (hit) {
        applyWriteHit(line, p.ref);
        return;
    }

    switch (proto->writeMiss(_lineWords)) {
      case WriteMissAction::WriteThroughAllocate:
        if (_lineWords != 1)
            panic("WriteThroughAllocate requires one-word lines");
        if (line.valid() && needsWriteback(line.state)) {
            issueVictimWriteFor(p.ref.addr);
            return;
        }
        p.installOnWriteThrough = true;
        issueWriteThrough(p.ref, true, Stage::WriteThrough,
                          MBusOpKind::WriteThrough);
        return;

      case WriteMissAction::WriteThroughNoAllocate:
        issueWriteThrough(p.ref, true, Stage::WriteThrough,
                          MBusOpKind::WriteThrough);
        return;

      case WriteMissAction::FillThenWriteHit:
        if (line.valid() && needsWriteback(line.state)) {
            issueVictimWriteFor(p.ref.addr);
            return;
        }
        issueFill(p.ref.addr, Stage::Fill);
        return;

      case WriteMissAction::ReadOwned:
        if (line.valid() && needsWriteback(line.state)) {
            issueVictimWriteFor(p.ref.addr);
            return;
        }
        issueFill(p.ref.addr, Stage::ReadOwned);
        return;
    }
}

void
Cache::applyWriteHit(CacheLine &line, const MemRef &ref)
{
    switch (proto->writeHit(line)) {
      case WriteHitAction::Silent: {
        writeWord(line, ref.addr, ref.value);
        const LineState old = line.state;
        line.state = LineState::Dirty;
        traceLine(line.base, old, line.state, "write-hit");
        if (checkObs)
            checkObs->writeSerialized(ref.addr, ref.value, *this,
                                      "write-hit");
        finishHead(0);
        break;
      }
      case WriteHitAction::WriteThrough:
        issueWriteThrough(ref, true, Stage::WriteThrough,
                          MBusOpKind::WriteThrough);
        break;
      case WriteHitAction::Update:
        issueWriteThrough(ref, false, Stage::Update, MBusOpKind::Update);
        break;
      case WriteHitAction::Invalidate:
        issueInvalidate(ref.addr);
        break;
    }
}

void
Cache::finishHead(Word data)
{
    Callback cb = std::move(queue.front().cb);
    queue.pop_front();
    engineBusy = false;
    if (cb)
        cb(data);
    if (!queue.empty() && !engineBusy)
        startHead();
}

void
Cache::issueVictimWriteFor(Addr target_addr)
{
    CacheLine &victim = lineFor(target_addr);
    MBusTransaction txn;
    txn.type = MBusOpType::MWrite;
    txn.kind = MBusOpKind::VictimWrite;
    txn.addr = victim.base;
    txn.words = _lineWords;
    for (unsigned i = 0; i < _lineWords; ++i)
        txn.data[i] = victim.data[i];
    txn.updatesMemory = true;
    txn.initiator = this;
    queue.front().stage = Stage::VictimWrite;
    engineBusy = true;
    bus.request(txn);
}

void
Cache::issueFill(Addr byte_addr, Stage stage)
{
    MBusTransaction txn;
    txn.type = stage == Stage::ReadOwned ? MBusOpType::MReadOwned
                                         : MBusOpType::MRead;
    txn.kind = MBusOpKind::Fill;
    txn.addr = lineBaseOf(byte_addr);
    txn.words = _lineWords;
    txn.updatesMemory = proto->fillsUpdateMemory();
    txn.initiator = this;
    queue.front().stage = stage;
    engineBusy = true;
    bus.request(txn);
}

void
Cache::issueWriteThrough(const MemRef &ref, bool updates_memory,
                         Stage stage, MBusOpKind kind)
{
    MBusTransaction txn;
    txn.type = MBusOpType::MWrite;
    txn.kind = kind;
    txn.addr = ref.addr;
    txn.words = 1;
    txn.data[0] = ref.value;
    txn.updatesMemory = updates_memory;
    txn.initiator = this;
    queue.front().stage = stage;
    engineBusy = true;
    bus.request(txn);
}

void
Cache::issueInvalidate(Addr byte_addr)
{
    MBusTransaction txn;
    txn.type = MBusOpType::MInvalidate;
    txn.kind = MBusOpKind::Invalidate;
    txn.addr = byte_addr;
    txn.words = 1;
    txn.updatesMemory = false;
    txn.initiator = this;
    queue.front().stage = Stage::Invalidate;
    engineBusy = true;
    bus.request(txn);
}

SnoopReply
Cache::snoopProbe(const MBusTransaction &txn)
{
    tagBusyCycle = sim.now();
    const CacheLine &line = lineFor(txn.addr);
    if (!line.valid() || !tagMatch(line, txn.addr))
        return SnoopReply{};
    return proto->snoopProbe(line, txn);
}

void
Cache::snoopSupplyData(const MBusTransaction &txn, Word *out)
{
    const CacheLine &line = lineFor(txn.addr);
    if (!line.valid() || !tagMatch(line, txn.addr))
        panic("%s asked to supply a line it does not hold",
              _name.c_str());
    for (unsigned i = 0; i < txn.words; ++i) {
        const Addr a = txn.addr + i * bytesPerWord;
        out[i] = line.data[(a - line.base) / bytesPerWord];
    }
}

void
Cache::snoopComplete(const MBusTransaction &txn)
{
    CacheLine &line = lineFor(txn.addr);
    if (!line.valid() || !tagMatch(line, txn.addr))
        return;
    // A DMA read installs no cached copy anywhere, so no snoop
    // transition is warranted: in particular a dirty owner must NOT
    // demote to clean-shared, because the bus captured only the
    // word(s) the engine asked for - the rest of the line would be
    // orphaned dirty with nobody left owing the write-back.
    if (txn.type == MBusOpType::MRead && txn.kind == MBusOpKind::DmaRead)
        return;
    const bool was_valid = line.valid();
    const LineState old = line.state;
    proto->snoopApply(line, txn, _lineWords);
    static const char *snoop_causes[4] = {
        "snoop-read", "snoop-write", "snoop-read-owned",
        "snoop-invalidate"
    };
    traceLine(line.base, old, line.state,
              snoop_causes[static_cast<int>(txn.type)]);
    if (was_valid && !line.valid()) {
        ++invalidationsReceived;
    } else if (txn.type == MBusOpType::MWrite && line.valid()) {
        ++updatesReceived;
    }
}

void
Cache::refreshWriteData(MBusTransaction &txn)
{
    if (txn.kind != MBusOpKind::VictimWrite)
        return;
    // The victim's data is driven in the bus write-data cycle, not
    // latched at request time.  A snooped write that merged into the
    // line while this request waited for the bus (a DMA write - the
    // I/O cache outranks us in arbitration) must be part of what we
    // write back, or memory ends up holding pre-DMA data.
    CacheLine &line = lineFor(txn.addr);
    if (line.valid() && line.base == txn.addr) {
        for (unsigned i = 0; i < txn.words; ++i)
            txn.data[i] = line.data[i];
    } else {
        // The line was invalidated while the write-back waited (a
        // full-line overwrite snooped by an invalidation protocol):
        // drive nothing, or we would overwrite the newer data.
        txn.updatesMemory = false;
    }
}

void
Cache::transactionDone(const MBusTransaction &txn)
{
    if (queue.empty())
        panic("%s: bus completion with no pending access",
              _name.c_str());
    engineBusy = false;
    PendingAccess &p = queue.front();

    switch (p.stage) {
      case Stage::VictimWrite: {
        ++victimWrites;
        CacheLine &victim = lineFor(p.ref.addr);
        const LineState old = victim.state;
        victim.state = LineState::Invalid;
        traceLine(victim.base, old, victim.state, "victim-writeback");
        p.stage = Stage::Start;
        dispatchHead();
        break;
      }

      case Stage::Fill: {
        ++fills;
        CacheLine &line = lineFor(p.ref.addr);
        if (line.valid() && line.base != lineBaseOf(p.ref.addr))
            traceLine(line.base, line.state, LineState::Invalid,
                      "evicted-clean");
        line.base = lineBaseOf(p.ref.addr);
        for (unsigned i = 0; i < _lineWords; ++i)
            line.data[i] = txn.data[i];
        line.state = proto->fillState(txn.mshared);
        traceLine(line.base, LineState::Invalid, line.state, "fill");
        if (!isWrite(p.ref.type)) {
            const Word value = readWord(line, p.ref.addr);
            if (checkObs)
                checkObs->loadObserved(p.ref.addr, value, *this, "fill");
            finishHead(value);
        } else {
            applyWriteHit(line, p.ref);
        }
        break;
      }

      case Stage::ReadOwned: {
        ++fills;
        CacheLine &line = lineFor(p.ref.addr);
        if (line.valid() && line.base != lineBaseOf(p.ref.addr))
            traceLine(line.base, line.state, LineState::Invalid,
                      "evicted-clean");
        line.base = lineBaseOf(p.ref.addr);
        for (unsigned i = 0; i < _lineWords; ++i)
            line.data[i] = txn.data[i];
        writeWord(line, p.ref.addr, p.ref.value);
        line.state = proto->ownedState();
        traceLine(line.base, LineState::Invalid, line.state,
                  "read-owned");
        // The write serializes at the commit of the MReadOwned that
        // carried it (other copies died in its snoop).
        if (checkObs)
            checkObs->writeSerialized(p.ref.addr, p.ref.value, *this,
                                      "read-owned");
        finishHead(0);
        break;
      }

      case Stage::WriteThrough: {
        if (txn.mshared)
            ++wtMshared;
        else
            ++wtNoMshared;
        CacheLine &line = lineFor(p.ref.addr);
        if (p.installOnWriteThrough) {
            if (line.valid() && line.base != lineBaseOf(p.ref.addr))
                traceLine(line.base, line.state, LineState::Invalid,
                          "evicted-clean");
            line.base = lineBaseOf(p.ref.addr);
            line.data.fill(0);
            writeWord(line, p.ref.addr, p.ref.value);
            line.state = proto->afterWriteThrough(txn.mshared);
            traceLine(line.base, LineState::Invalid, line.state,
                      "write-allocate-through");
        } else if (line.valid() && tagMatch(line, p.ref.addr)) {
            writeWord(line, p.ref.addr, p.ref.value);
            const LineState old = line.state;
            line.state = proto->afterWriteThrough(txn.mshared);
            traceLine(line.base, old, line.state, "write-through");
        }
        finishHead(0);
        break;
      }

      case Stage::Update: {
        ++updatesSent;
        CacheLine &line = lineFor(p.ref.addr);
        if (line.valid() && tagMatch(line, p.ref.addr)) {
            writeWord(line, p.ref.addr, p.ref.value);
            const LineState old = line.state;
            line.state = proto->afterWriteThrough(txn.mshared);
            traceLine(line.base, old, line.state, "update");
        }
        finishHead(0);
        break;
      }

      case Stage::Invalidate: {
        ++invalidatesSent;
        CacheLine &line = lineFor(p.ref.addr);
        if (line.valid() && tagMatch(line, p.ref.addr)) {
            writeWord(line, p.ref.addr, p.ref.value);
            const LineState old = line.state;
            line.state = proto->ownedState();
            traceLine(line.base, old, line.state, "invalidate");
            if (checkObs)
                checkObs->writeSerialized(p.ref.addr, p.ref.value,
                                          *this, "invalidate");
            finishHead(0);
        } else {
            // We lost an ownership race: another cache invalidated
            // our copy while our MInvalidate waited for the bus.
            // Restart as a write miss (will use MReadOwned).
            p.stage = Stage::Start;
            dispatchHead();
        }
        break;
      }

      case Stage::DmaRead:
        if (checkObs)
            checkObs->loadObserved(p.ref.addr, txn.data[0], *this,
                                   "dma-fill");
        finishHead(txn.data[0]);
        break;

      case Stage::DmaWrite: {
        CacheLine &line = lineFor(p.ref.addr);
        if (line.valid() && tagMatch(line, p.ref.addr)) {
            writeWord(line, p.ref.addr, p.ref.value);
            // A partial DMA write into a line we own (Dirty, or
            // SharedDirty under Berkeley/Dragon) must not launder the
            // ownership state: memory received only the DMA word, so
            // we still owe it the others.  Otherwise memory now holds
            // everything we do, so the copy is clean - the same state
            // a fresh fill would install, NOT afterWriteThrough(),
            // whose Dragon meaning (update: writer becomes owner,
            // memory unchanged) would claim ownership a snooping
            // owner never gave up.
            if (!(needsWriteback(line.state) && _lineWords > 1)) {
                const LineState old = line.state;
                line.state = proto->fillState(txn.mshared);
                traceLine(line.base, old, line.state, "dma-write");
            }
        }
        finishHead(0);
        break;
      }

      case Stage::Start:
        panic("%s: bus completion in Stage::Start", _name.c_str());
    }
}

void
Cache::flushFunctional()
{
    MainMemory &memory = bus.memorySystem();
    for (auto &line : lines) {
        if (line.valid() && needsWriteback(line.state)) {
            for (unsigned i = 0; i < _lineWords; ++i)
                memory.write(line.base + i * bytesPerWord, line.data[i]);
        }
        line.state = LineState::Invalid;
    }
}

} // namespace firefly
