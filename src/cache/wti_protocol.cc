#include "cache/wti_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
WtiProtocol::writeHit(const CacheLine &line) const
{
    if (line.state != LineState::Valid)
        panic("WTI write hit in state %s", toString(line.state));
    return WriteHitAction::WriteThrough;  // every write goes to the bus
}

WriteMissAction
WtiProtocol::writeMiss(unsigned) const
{
    return WriteMissAction::WriteThroughNoAllocate;
}

LineState
WtiProtocol::fillState(bool) const
{
    return LineState::Valid;
}

LineState
WtiProtocol::afterWriteThrough(bool) const
{
    return LineState::Valid;
}

SnoopReply
WtiProtocol::snoopProbe(const CacheLine &, const MBusTransaction &) const
{
    // WTI ignores MShared, but asserting it is harmless and keeps the
    // bus-side bookkeeping uniform.
    SnoopReply reply;
    reply.shared = true;
    return reply;
}

void
WtiProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                        unsigned) const
{
    // The defining rule: observed writes invalidate our copy.
    if (txn.type == MBusOpType::MWrite)
        line.state = LineState::Invalid;
}

} // namespace firefly
