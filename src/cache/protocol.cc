#include "cache/protocol.hh"

#include "cache/berkeley_protocol.hh"
#include "cache/dragon_protocol.hh"
#include "cache/firefly_protocol.hh"
#include "cache/mesi_protocol.hh"
#include "cache/wti_protocol.hh"
#include "sim/logging.hh"

namespace firefly
{

const char *
toString(LineState state)
{
    switch (state) {
      case LineState::Invalid: return "Invalid";
      case LineState::Valid: return "Valid";
      case LineState::Dirty: return "Dirty";
      case LineState::Shared: return "Shared";
      case LineState::SharedDirty: return "SharedDirty";
    }
    return "?";
}

const char *
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Firefly: return "Firefly";
      case ProtocolKind::Dragon: return "Dragon";
      case ProtocolKind::WriteThroughInvalidate: return "WTI";
      case ProtocolKind::Berkeley: return "Berkeley";
      case ProtocolKind::Mesi: return "MESI";
    }
    return "?";
}

std::unique_ptr<CoherenceProtocol>
makeProtocol(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Firefly:
        return std::make_unique<FireflyProtocol>();
      case ProtocolKind::Dragon:
        return std::make_unique<DragonProtocol>();
      case ProtocolKind::WriteThroughInvalidate:
        return std::make_unique<WtiProtocol>();
      case ProtocolKind::Berkeley:
        return std::make_unique<BerkeleyProtocol>();
      case ProtocolKind::Mesi:
        return std::make_unique<MesiProtocol>();
    }
    panic("unknown protocol kind");
}

} // namespace firefly
