/**
 * @file
 * Coherence protocol abstraction.
 *
 * The cache engine (cache.hh) owns the mechanics - lookup, victim
 * write-back, bus sequencing, data movement - and consults a
 * CoherenceProtocol for every policy decision.  Five protocols are
 * provided:
 *
 *   - Firefly (the paper's contribution): update-based, conditional
 *     write-through, dynamic sharing detection via MShared;
 *   - Dragon (Xerox; the paper cites it as the closest relative):
 *     update-based with a dirty-sharing owner, memory not updated;
 *   - write-through with invalidation (the paper's strawman);
 *   - Berkeley Ownership (cited baseline): invalidation + ownership;
 *   - MESI/Illinois: the textbook invalidation protocol.
 *
 * The five LineState values are shared across protocols with
 * per-protocol meaning (documented on each enumerator).
 */

#ifndef FIREFLY_CACHE_PROTOCOL_HH
#define FIREFLY_CACHE_PROTOCOL_HH

#include <array>
#include <memory>
#include <string>

#include "mbus/mbus.hh"
#include "sim/types.hh"

namespace firefly
{

/** Coherence state of one cache line. */
enum class LineState : std::uint8_t
{
    Invalid,
    /** Clean, believed exclusive.  Firefly "Valid"; MESI E; Dragon E;
     *  WTI valid.  Unused by Berkeley. */
    Valid,
    /** Modified, exclusive.  Firefly/Berkeley "Dirty"; MESI M;
     *  Dragon M. */
    Dirty,
    /** Clean (w.r.t. the current owner), possibly in other caches.
     *  Firefly "Shared"; MESI S; Dragon Sc; Berkeley unowned-shared. */
    Shared,
    /** Modified and possibly shared; this cache owns the line.
     *  Berkeley owned-shared; Dragon Sm.  Unused by the others. */
    SharedDirty,
};

const char *toString(LineState state);

/** True if victimising a line in this state requires a write-back. */
constexpr bool
needsWriteback(LineState state)
{
    return state == LineState::Dirty || state == LineState::SharedDirty;
}

/** One direct-mapped cache line. */
struct CacheLine
{
    LineState state = LineState::Invalid;
    Addr base = 0;  ///< byte address of the first word of the line
    std::array<Word, maxBurstWords> data{};

    bool valid() const { return state != LineState::Invalid; }
};

/** What to do on a processor write that hits. */
enum class WriteHitAction : std::uint8_t
{
    Silent,        ///< write into the line, mark Dirty, no bus op
    WriteThrough,  ///< MWrite updating memory and sharing caches
    Update,        ///< MWrite updating caches only (Dragon)
    Invalidate,    ///< MInvalidate, then write locally as Dirty
};

/** What to do on a processor write that misses. */
enum class WriteMissAction : std::uint8_t
{
    /** Firefly longword optimisation: write through and install the
     *  line clean, skipping the fill read (only if the write covers
     *  the whole line, i.e. 4-byte lines). */
    WriteThroughAllocate,
    /** Write through without allocating (write-through-invalidate). */
    WriteThroughNoAllocate,
    /** Fill first, then apply the write-hit policy. */
    FillThenWriteHit,
    /** Read with intent to modify (MReadOwned), install Dirty. */
    ReadOwned,
};

/** Identifiers for the factory. */
enum class ProtocolKind : std::uint8_t
{
    Firefly,
    Dragon,
    WriteThroughInvalidate,
    Berkeley,
    Mesi,
};

const char *toString(ProtocolKind kind);

/** Policy object consulted by the cache engine. */
class CoherenceProtocol
{
  public:
    virtual ~CoherenceProtocol() = default;

    virtual const char *name() const = 0;

    // --- processor-side policy -----------------------------------------
    virtual WriteHitAction writeHit(const CacheLine &line) const = 0;
    virtual WriteMissAction writeMiss(unsigned line_words) const = 0;

    /** State a line is installed in after an MRead fill. */
    virtual LineState fillState(bool mshared) const = 0;

    /** State after a write-through/update completes, given MShared. */
    virtual LineState afterWriteThrough(bool mshared) const = 0;

    /** State after MReadOwned or MInvalidate completes. */
    virtual LineState ownedState() const { return LineState::Dirty; }

    /**
     * Should main memory capture cache-supplied fill data?  True for
     * protocols whose shared copies are always clean (Firefly, MESI/
     * Illinois, WTI); false where an owner retains responsibility
     * (Berkeley, Dragon).
     */
    virtual bool fillsUpdateMemory() const = 0;

    // --- snoop-side policy ---------------------------------------------
    /**
     * Tag probe for another agent's transaction; `line` is tag
     * matched and valid.  Must not mutate state.
     */
    virtual SnoopReply snoopProbe(const CacheLine &line,
                                  const MBusTransaction &txn) const = 0;

    /**
     * Apply the committed transaction to our matching line: merge
     * update data, change state, or invalidate.  `line_words` is the
     * cache's line size in longwords.
     */
    virtual void snoopApply(CacheLine &line, const MBusTransaction &txn,
                            unsigned line_words) const = 0;
};

/** Instantiate a protocol by kind. */
std::unique_ptr<CoherenceProtocol> makeProtocol(ProtocolKind kind);

} // namespace firefly

#endif // FIREFLY_CACHE_PROTOCOL_HH
