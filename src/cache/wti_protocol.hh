/**
 * @file
 * Write-through with invalidation - the paper's strawman baseline.
 *
 * "The simplest protocol is write-through with invalidation, in
 * which all writes are sent to the main memory bus.  Whenever a
 * cache observes a write directed to a line it contains, it
 * invalidates its copy.  This is not a practical protocol for more
 * than a few processors."  Lines are only ever Invalid or Valid;
 * memory is always current, so victims are never written back and
 * reads are always answered by memory.
 */

#ifndef FIREFLY_CACHE_WTI_PROTOCOL_HH
#define FIREFLY_CACHE_WTI_PROTOCOL_HH

#include "cache/protocol.hh"

namespace firefly
{

/** Write-through-invalidate baseline. */
class WtiProtocol : public CoherenceProtocol
{
  public:
    const char *name() const override { return "WTI"; }

    WriteHitAction writeHit(const CacheLine &line) const override;
    WriteMissAction writeMiss(unsigned line_words) const override;
    LineState fillState(bool mshared) const override;
    LineState afterWriteThrough(bool mshared) const override;
    bool fillsUpdateMemory() const override { return true; }

    SnoopReply snoopProbe(const CacheLine &line,
                          const MBusTransaction &txn) const override;
    void snoopApply(CacheLine &line, const MBusTransaction &txn,
                    unsigned line_words) const override;
};

} // namespace firefly

#endif // FIREFLY_CACHE_WTI_PROTOCOL_HH
