#include "cache/mesi_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
MesiProtocol::writeHit(const CacheLine &line) const
{
    switch (line.state) {
      case LineState::Valid:   // E -> M silently
      case LineState::Dirty:   // M -> M
        return WriteHitAction::Silent;
      case LineState::Shared:  // S: invalidate other copies first
        return WriteHitAction::Invalidate;
      default:
        panic("MESI write hit in state %s", toString(line.state));
    }
}

WriteMissAction
MesiProtocol::writeMiss(unsigned) const
{
    return WriteMissAction::ReadOwned;  // BusRdX
}

LineState
MesiProtocol::fillState(bool mshared) const
{
    return mshared ? LineState::Shared : LineState::Valid;  // S / E
}

LineState
MesiProtocol::afterWriteThrough(bool) const
{
    // Only reachable through DMA writes routed via this cache; the
    // write updated memory, leaving the copy clean.
    return LineState::Shared;
}

SnoopReply
MesiProtocol::snoopProbe(const CacheLine &line,
                         const MBusTransaction &txn) const
{
    SnoopReply reply;
    reply.shared = true;

    switch (txn.type) {
      case MBusOpType::MRead:
      case MBusOpType::MReadOwned:
        // A modified owner supplies; memory captures the data
        // (Illinois write-back-on-supply), so S copies stay clean.
        reply.supply = line.state == LineState::Dirty;
        break;
      case MBusOpType::MWrite:
      case MBusOpType::MInvalidate:
        break;
    }
    return reply;
}

void
MesiProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                         unsigned line_words) const
{
    switch (txn.type) {
      case MBusOpType::MRead:
        line.state = LineState::Shared;  // M/E/S -> S
        break;
      case MBusOpType::MReadOwned:
      case MBusOpType::MInvalidate:
        line.state = LineState::Invalid;
        break;
      case MBusOpType::MWrite:
        // DMA write or foreign victim write: invalidate, as MESI has
        // no update path - except a *partial* write into a line we
        // hold Modified.  Memory received only the written word(s);
        // invalidating would lose the rest of our dirty data with no
        // owner left, so merge and keep ownership instead.
        if (!txn.updatesMemory)
            break;
        if (line.state == LineState::Dirty && txn.words < line_words) {
            for (unsigned i = 0; i < txn.words; ++i) {
                const Addr a = txn.addr + i * bytesPerWord;
                if (a >= line.base &&
                    a < line.base + line_words * bytesPerWord) {
                    line.data[(a - line.base) / bytesPerWord] =
                        txn.data[i];
                }
            }
        } else {
            line.state = LineState::Invalid;
        }
        break;
    }
}

} // namespace firefly
