#include "cache/mesi_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
MesiProtocol::writeHit(const CacheLine &line) const
{
    switch (line.state) {
      case LineState::Valid:   // E -> M silently
      case LineState::Dirty:   // M -> M
        return WriteHitAction::Silent;
      case LineState::Shared:  // S: invalidate other copies first
        return WriteHitAction::Invalidate;
      default:
        panic("MESI write hit in state %s", toString(line.state));
    }
}

WriteMissAction
MesiProtocol::writeMiss(unsigned) const
{
    return WriteMissAction::ReadOwned;  // BusRdX
}

LineState
MesiProtocol::fillState(bool mshared) const
{
    return mshared ? LineState::Shared : LineState::Valid;  // S / E
}

LineState
MesiProtocol::afterWriteThrough(bool) const
{
    // Only reachable through DMA writes routed via this cache; the
    // write updated memory, leaving the copy clean.
    return LineState::Shared;
}

SnoopReply
MesiProtocol::snoopProbe(const CacheLine &line,
                         const MBusTransaction &txn) const
{
    SnoopReply reply;
    reply.shared = true;

    switch (txn.type) {
      case MBusOpType::MRead:
      case MBusOpType::MReadOwned:
        // A modified owner supplies; memory captures the data
        // (Illinois write-back-on-supply), so S copies stay clean.
        reply.supply = line.state == LineState::Dirty;
        break;
      case MBusOpType::MWrite:
      case MBusOpType::MInvalidate:
        break;
    }
    return reply;
}

void
MesiProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                         unsigned) const
{
    switch (txn.type) {
      case MBusOpType::MRead:
        line.state = LineState::Shared;  // M/E/S -> S
        break;
      case MBusOpType::MReadOwned:
      case MBusOpType::MInvalidate:
        line.state = LineState::Invalid;
        break;
      case MBusOpType::MWrite:
        // DMA write or foreign victim write: invalidate, as MESI has
        // no update path.
        if (txn.updatesMemory)
            line.state = LineState::Invalid;
        break;
    }
}

} // namespace firefly
