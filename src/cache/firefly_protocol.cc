#include "cache/firefly_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
FireflyProtocol::writeHit(const CacheLine &line) const
{
    switch (line.state) {
      case LineState::Valid:
      case LineState::Dirty:
        // Non-shared: pure write-back, no bus traffic.
        return WriteHitAction::Silent;
      case LineState::Shared:
        // Shared: conditional write-through updates the other caches
        // and main memory in one bus write.
        return WriteHitAction::WriteThrough;
      default:
        panic("Firefly write hit in state %s", toString(line.state));
    }
}

WriteMissAction
FireflyProtocol::writeMiss(unsigned line_words) const
{
    // The longword optimisation applies when the write covers the
    // whole line (the real machine's lines were one longword).  With
    // larger experimental lines the cache must fill first.
    return line_words == 1 ? WriteMissAction::WriteThroughAllocate
                           : WriteMissAction::FillThenWriteHit;
}

LineState
FireflyProtocol::fillState(bool mshared) const
{
    return mshared ? LineState::Shared : LineState::Valid;
}

LineState
FireflyProtocol::afterWriteThrough(bool mshared) const
{
    // A write-through that receives no MShared means we are the last
    // holder: clear the Shared tag and revert to write-back.  Either
    // way the line is clean (memory was just updated).
    return mshared ? LineState::Shared : LineState::Valid;
}

SnoopReply
FireflyProtocol::snoopProbe(const CacheLine &line,
                            const MBusTransaction &txn) const
{
    (void)line;  // every valid holder responds, regardless of state
    SnoopReply reply;
    reply.shared = true;  // we hold the line: assert MShared

    switch (txn.type) {
      case MBusOpType::MRead:
        // Every holder drives the data; the protocol guarantees all
        // copies are identical (shared copies are clean, and a dirty
        // copy is exclusive).  Memory is inhibited.
        reply.supply = true;
        break;
      case MBusOpType::MWrite:
        // Write-through (or DMA/victim write): we will merge the data
        // in snoopApply; nothing to supply.
        break;
      default:
        panic("Firefly cache snooped %s", toString(txn.type));
    }
    return reply;
}

void
FireflyProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                            unsigned line_words) const
{
    switch (txn.type) {
      case MBusOpType::MRead:
        // Someone else now holds a copy.  A dirty owner's data was
        // just captured by memory during the supply, so the line is
        // clean again; everyone drops to Shared.
        line.state = LineState::Shared;
        break;

      case MBusOpType::MWrite: {
        // Update our copy in place with the written word(s).
        for (unsigned i = 0; i < txn.words; ++i) {
            const Addr a = txn.addr + i * bytesPerWord;
            if (a >= line.base &&
                a < line.base + line_words * bytesPerWord) {
                line.data[(a - line.base) / bytesPerWord] = txn.data[i];
            }
        }
        // The writer updated memory too, so our copy is clean -
        // unless this was a partial write into a line we hold dirty
        // (only possible via DMA), in which case the unwritten words
        // are still our responsibility.
        if (line.state == LineState::Dirty && txn.words < line_words) {
            // keep Dirty: we still owe memory the other words
        } else {
            line.state = LineState::Shared;
        }
        break;
      }

      default:
        panic("Firefly cache snooped %s", toString(txn.type));
    }
}

} // namespace firefly
