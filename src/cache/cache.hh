/**
 * @file
 * The direct-mapped snoopy cache engine.
 *
 * One Cache sits between a processor (or the DMA path, for the I/O
 * processor's cache) and the MBus.  It owns the mechanics - lookup,
 * victim write-back ordering, bus transaction sequencing, data
 * movement, tag-store contention - and defers every coherence policy
 * decision to its CoherenceProtocol.
 *
 * Geometry matches the paper: 16 KB with 4-byte lines (4096 lines) on
 * the MicroVAX boards, 64 KB (16384 lines) on the CVAX boards, always
 * direct mapped.  Line sizes above 4 bytes are supported for the
 * footnote-4 ablation.
 *
 * Timing notes:
 *  - The tag store is single ported: a snoop probe in bus cycle C
 *    makes a CPU access attempted in C retry one processor tick later
 *    (the paper's SP term).
 *  - The cache handles one access at a time; misses occupy it until
 *    the bus sequence completes.  DMA accesses queue behind CPU
 *    accesses and vice versa.
 */

#ifndef FIREFLY_CACHE_CACHE_HH
#define FIREFLY_CACHE_CACHE_HH

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/coherence_observer.hh"
#include "cache/mem_ref.hh"
#include "cache/protocol.hh"
#include "mbus/mbus.hh"
#include "sim/simulator.hh"
#include "sim/small_function.hh"
#include "sim/stats.hh"

namespace firefly
{

/** A direct-mapped coherent cache on the MBus. */
class Cache : public MBusClient
{
  public:
    /** Cache geometry. */
    struct Geometry
    {
        Addr cacheBytes = 16 * 1024;  ///< total data capacity
        Addr lineBytes = 4;           ///< line size (power of two)
    };

    /** Completion callback; receives the read data (0 for writes).
     *  A SmallFunction so the common captures (a `this` pointer plus
     *  a MemRef) never heap-allocate on the per-reference path. */
    using Callback = SmallFunction<void(Word), 48>;

    enum class AccessOutcome
    {
        Hit,           ///< satisfied synchronously
        Pending,       ///< callback will fire when done
        RetryTagBusy,  ///< tag store taken by a snoop; retry next tick
    };

    struct AccessResult
    {
        AccessOutcome outcome;
        Word data = 0;
    };

    Cache(Simulator &sim, MBus &bus,
          std::unique_ptr<CoherenceProtocol> protocol, Geometry geom,
          std::string name);

    /**
     * Processor access.  Hits are satisfied synchronously; anything
     * needing the bus returns Pending and fires `cb` on completion.
     * Defined inline below: the read-hit case is the single hottest
     * path in the simulator and completes without an out-of-line
     * call.
     */
    AccessResult cpuAccess(const MemRef &ref, Callback cb);

    /**
     * DMA access through this cache (I/O processor path).  Always
     * asynchronous; misses never allocate (paper Section 5).
     */
    void dmaAccess(const MemRef &ref, Callback cb);

    /**
     * Write all dirty lines to memory and invalidate everything,
     * bypassing timing.  Used by tests and end-of-run verification.
     */
    void flushFunctional();

    // --- introspection --------------------------------------------------
    /** No queued CPU/DMA accesses and no bus operation in flight.
     *  Used when draining a processor for offlining. */
    bool idle() const { return queue.empty() && !engineBusy; }
    const std::string &name() const { return _name; }
    CoherenceProtocol &protocol() { return *proto; }
    unsigned lineWords() const { return _lineWords; }
    unsigned numLines() const { return lines.size(); }

    /** The line the address maps to (valid or not). */
    const CacheLine &lineAt(Addr byte_addr) const;
    /** Every line, for whole-cache scans (src/check/). */
    const std::vector<CacheLine> &allLines() const { return lines; }
    /**
     * Attach a coherence checker (nullptr detaches).  The observer
     * is called at every load value binding and write serialization
     * point; with none attached every hook site is a null check.
     */
    void setCoherenceObserver(CoherenceObserver *observer)
    {
        checkObs = observer;
    }
    /** True if the address is present in a valid line. */
    bool holds(Addr byte_addr) const;
    /** Fraction of valid lines that need write-back (paper's D). */
    double dirtyFraction() const;
    /** Fraction of lines that are valid. */
    double validFraction() const;
    /** Fraction of valid lines in Shared/SharedDirty state. */
    double sharedFraction() const;

    StatGroup &stats() { return statGroup; }

    // --- MBusClient -----------------------------------------------------
    std::string busClientName() const override { return _name; }
    SnoopReply snoopProbe(const MBusTransaction &txn) override;
    void snoopSupplyData(const MBusTransaction &txn, Word *out) override;
    void snoopComplete(const MBusTransaction &txn) override;
    void transactionDone(const MBusTransaction &txn) override;
    void refreshWriteData(MBusTransaction &txn) override;

    // Statistics counters, public so benches can read them directly.
    Counter refsInstr, refsRead, refsWrite;
    Counter readHits, readMisses, writeHits, writeMisses;
    Counter fills;             ///< MBus reads issued (incl. MReadOwned)
    Counter wtMshared;         ///< write-throughs that received MShared
    Counter wtNoMshared;       ///< write-throughs that did not
    Counter victimWrites;
    Counter updatesSent;       ///< Dragon cache-to-cache updates
    Counter invalidatesSent;   ///< MInvalidate ops issued
    Counter tagBusyRetries;
    Counter invalidationsReceived;
    Counter updatesReceived;
    Counter dmaReads, dmaWrites, dmaReadMisses;

  private:
    /** Stage of the in-flight access's bus sequence. */
    enum class Stage
    {
        Start,
        VictimWrite,
        Fill,
        ReadOwned,
        WriteThrough,
        Update,
        Invalidate,
        DmaRead,
        DmaWrite,
    };

    struct PendingAccess
    {
        MemRef ref;
        bool isDma = false;
        Callback cb;
        Stage stage = Stage::Start;
        /** Firefly write-allocate-through pending install. */
        bool installOnWriteThrough = false;
        /** Reference already counted in the stats. */
        bool counted = false;
    };

    Addr lineBaseOf(Addr byte_addr) const;
    CacheLine &lineFor(Addr byte_addr);
    const CacheLine &lineFor(Addr byte_addr) const;
    bool tagMatch(const CacheLine &line, Addr byte_addr) const;

    Word readWord(const CacheLine &line, Addr byte_addr) const;
    void writeWord(CacheLine &line, Addr byte_addr, Word value);

    /** Record a CPU reference in the stat counters. */
    void countRef(const MemRef &ref, bool hit);

    /** Everything cpuAccess's inline fast path cannot handle: writes,
     *  misses, tag contention, queueing behind earlier accesses. */
    AccessResult cpuAccessSlow(const MemRef &ref, Callback cb);

    /** Emit a line state-transition trace event (old -> new, cause).
     *  A no-op unless a sink is attached and the state changed. */
    void traceLine(Addr line_base, LineState old_state,
                   LineState new_state, const char *cause);

    /** Try to satisfy a CPU access without the bus.  True if done. */
    bool tryFastPath(const MemRef &ref, Word &out);

    /** Begin processing the queue head (engine must be idle). */
    void startHead();
    /** Dispatch the head access from scratch (Stage::Start). */
    void dispatchHead();
    void finishHead(Word data);

    void issueVictimWriteFor(Addr target_addr);
    void issueFill(Addr byte_addr, Stage stage);
    void issueWriteThrough(const MemRef &ref, bool updates_memory,
                           Stage stage, MBusOpKind kind);
    void issueInvalidate(Addr byte_addr);

    /** Apply the write-hit policy to a resident line (head access). */
    void applyWriteHit(CacheLine &line, const MemRef &ref);

    Simulator &sim;
    MBus &bus;
    std::unique_ptr<CoherenceProtocol> proto;
    std::string _name;

    unsigned _lineWords;
    Addr lineBytes;
    std::vector<CacheLine> lines;

    std::deque<PendingAccess> queue;
    bool engineBusy = false;  ///< head of queue has a bus op in flight

    CoherenceObserver *checkObs = nullptr;

    Cycle tagBusyCycle = ~Cycle{0};

    StatGroup statGroup;
};

inline Addr
Cache::lineBaseOf(Addr byte_addr) const
{
    return byte_addr - byte_addr % lineBytes;
}

inline CacheLine &
Cache::lineFor(Addr byte_addr)
{
    return lines[(byte_addr / lineBytes) % lines.size()];
}

inline const CacheLine &
Cache::lineFor(Addr byte_addr) const
{
    return lines[(byte_addr / lineBytes) % lines.size()];
}

inline bool
Cache::tagMatch(const CacheLine &line, Addr byte_addr) const
{
    return line.base == lineBaseOf(byte_addr);
}

inline Word
Cache::readWord(const CacheLine &line, Addr byte_addr) const
{
    return line.data[(byte_addr - line.base) / bytesPerWord];
}

inline void
Cache::countRef(const MemRef &ref, bool hit)
{
    switch (ref.type) {
      case RefType::InstrRead: ++refsInstr; break;
      case RefType::DataRead: ++refsRead; break;
      case RefType::DataWrite: ++refsWrite; break;
    }
    if (isWrite(ref.type)) {
        if (hit) ++writeHits; else ++writeMisses;
    } else {
        if (hit) ++readHits; else ++readMisses;
    }
}

inline Cache::AccessResult
Cache::cpuAccess(const MemRef &ref, Callback cb)
{
    // The fast path handles exactly the aligned read hit on an idle
    // engine; the checks mirror cpuAccessSlow's, in the same order,
    // so counting and behaviour are identical on both routes.
    if (ref.addr % bytesPerWord == 0 && tagBusyCycle != sim.now() &&
        queue.empty() && !engineBusy && !isWrite(ref.type)) {
        const CacheLine &line = lineFor(ref.addr);
        if (line.valid() && tagMatch(line, ref.addr)) {
            countRef(ref, true);
            const Word out = readWord(line, ref.addr);
            if (checkObs)
                checkObs->loadObserved(ref.addr, out, *this, "hit");
            return {AccessOutcome::Hit, out};
        }
    }
    return cpuAccessSlow(ref, std::move(cb));
}

} // namespace firefly

#endif // FIREFLY_CACHE_CACHE_HH
