/**
 * @file
 * Berkeley Ownership protocol (Katz et al., cited by the paper as the
 * canonical ownership/invalidation design).
 *
 * A cache must acquire *ownership* of a line before writing it;
 * acquiring ownership invalidates all other copies.  The owner is
 * responsible for supplying the line to readers (becoming owned-
 * shared, SharedDirty here) and for the eventual write-back; main
 * memory is not updated while an owner exists.  States: Invalid,
 * unowned-Shared, owned-exclusive (Dirty), owned-shared
 * (SharedDirty).  There is no exclusive-clean state: fills always
 * install unowned-Shared.
 */

#ifndef FIREFLY_CACHE_BERKELEY_PROTOCOL_HH
#define FIREFLY_CACHE_BERKELEY_PROTOCOL_HH

#include "cache/protocol.hh"

namespace firefly
{

/** Invalidation protocol with explicit ownership. */
class BerkeleyProtocol : public CoherenceProtocol
{
  public:
    const char *name() const override { return "Berkeley"; }

    WriteHitAction writeHit(const CacheLine &line) const override;
    WriteMissAction writeMiss(unsigned line_words) const override;
    LineState fillState(bool mshared) const override;
    LineState afterWriteThrough(bool mshared) const override;
    bool fillsUpdateMemory() const override { return false; }

    SnoopReply snoopProbe(const CacheLine &line,
                          const MBusTransaction &txn) const override;
    void snoopApply(CacheLine &line, const MBusTransaction &txn,
                    unsigned line_words) const override;
};

} // namespace firefly

#endif // FIREFLY_CACHE_BERKELEY_PROTOCOL_HH
