/**
 * @file
 * The Xerox Dragon protocol (the paper's closest relative).
 *
 * Like Firefly, Dragon is update-based and uses dynamic sharing
 * detection; unlike Firefly, a write to a shared line updates only
 * the other *caches*, not main memory.  One cache - the last writer -
 * owns the line in state Sm (SharedDirty here) and is responsible
 * for writing it back; memory may be stale while a line is shared.
 * States: E (Valid), Sc (Shared), Sm (SharedDirty), M (Dirty).
 */

#ifndef FIREFLY_CACHE_DRAGON_PROTOCOL_HH
#define FIREFLY_CACHE_DRAGON_PROTOCOL_HH

#include "cache/protocol.hh"

namespace firefly
{

/** Update protocol with a dirty-sharing owner. */
class DragonProtocol : public CoherenceProtocol
{
  public:
    const char *name() const override { return "Dragon"; }

    WriteHitAction writeHit(const CacheLine &line) const override;
    WriteMissAction writeMiss(unsigned line_words) const override;
    LineState fillState(bool mshared) const override;
    LineState afterWriteThrough(bool mshared) const override;
    bool fillsUpdateMemory() const override { return false; }

    SnoopReply snoopProbe(const CacheLine &line,
                          const MBusTransaction &txn) const override;
    void snoopApply(CacheLine &line, const MBusTransaction &txn,
                    unsigned line_words) const override;
};

} // namespace firefly

#endif // FIREFLY_CACHE_DRAGON_PROTOCOL_HH
