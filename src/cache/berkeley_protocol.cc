#include "cache/berkeley_protocol.hh"

#include "sim/logging.hh"

namespace firefly
{

WriteHitAction
BerkeleyProtocol::writeHit(const CacheLine &line) const
{
    switch (line.state) {
      case LineState::Dirty:
        return WriteHitAction::Silent;  // already exclusive owner
      case LineState::SharedDirty:
      case LineState::Shared:
        // Must (re)acquire exclusive ownership before writing.
        return WriteHitAction::Invalidate;
      default:
        panic("Berkeley write hit in state %s", toString(line.state));
    }
}

WriteMissAction
BerkeleyProtocol::writeMiss(unsigned) const
{
    return WriteMissAction::ReadOwned;
}

LineState
BerkeleyProtocol::fillState(bool) const
{
    // Berkeley has no exclusive-clean state; reads install
    // unowned-shared regardless of MShared.
    return LineState::Shared;
}

LineState
BerkeleyProtocol::afterWriteThrough(bool) const
{
    // Only reachable through DMA writes routed via this cache: the
    // write updated memory, leaving our copy clean and unowned.
    return LineState::Shared;
}

SnoopReply
BerkeleyProtocol::snoopProbe(const CacheLine &line,
                             const MBusTransaction &txn) const
{
    SnoopReply reply;
    reply.shared = true;

    switch (txn.type) {
      case MBusOpType::MRead:
      case MBusOpType::MReadOwned:
        // The owner supplies the data (memory may be stale).
        reply.supply = needsWriteback(line.state);
        break;
      case MBusOpType::MWrite:
      case MBusOpType::MInvalidate:
        break;
    }
    return reply;
}

void
BerkeleyProtocol::snoopApply(CacheLine &line, const MBusTransaction &txn,
                             unsigned line_words) const
{
    switch (txn.type) {
      case MBusOpType::MRead:
        // A reader took a copy; an exclusive owner becomes
        // owned-shared and keeps write-back responsibility.
        if (line.state == LineState::Dirty)
            line.state = LineState::SharedDirty;
        break;

      case MBusOpType::MReadOwned:
      case MBusOpType::MInvalidate:
        line.state = LineState::Invalid;
        break;

      case MBusOpType::MWrite:
        // DMA write or foreign victim write updated memory behind
        // our back: drop the copy rather than merge (Berkeley has no
        // update path) - unless it is a *partial* write into a line
        // we own.  Memory received only the written word(s), so
        // dropping our copy would orphan the other dirty words;
        // merge and keep ownership instead.
        if (!txn.updatesMemory)
            break;
        if (needsWriteback(line.state) && txn.words < line_words) {
            for (unsigned i = 0; i < txn.words; ++i) {
                const Addr a = txn.addr + i * bytesPerWord;
                if (a >= line.base &&
                    a < line.base + line_words * bytesPerWord) {
                    line.data[(a - line.base) / bytesPerWord] =
                        txn.data[i];
                }
            }
        } else {
            line.state = LineState::Invalid;
        }
        break;
    }
}

} // namespace firefly
