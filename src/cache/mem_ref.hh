/**
 * @file
 * Processor memory references.
 *
 * The Firefly evaluation works at the level of the VAX architectural
 * reference stream: instruction reads, data reads and data writes
 * (Emer & Clark's 0.95 / 0.78 / 0.40 per instruction).  A MemRef is
 * one aligned longword access.
 */

#ifndef FIREFLY_CACHE_MEM_REF_HH
#define FIREFLY_CACHE_MEM_REF_HH

#include <cstdint>

#include "sim/types.hh"

namespace firefly
{

/** Kind of processor reference. */
enum class RefType : std::uint8_t
{
    InstrRead,
    DataRead,
    DataWrite,
};

constexpr bool
isWrite(RefType type)
{
    return type == RefType::DataWrite;
}

constexpr const char *
toString(RefType type)
{
    switch (type) {
      case RefType::InstrRead: return "I";
      case RefType::DataRead: return "R";
      case RefType::DataWrite: return "W";
    }
    return "?";
}

/** One aligned longword reference. */
struct MemRef
{
    Addr addr = 0;       ///< byte address, longword aligned
    RefType type = RefType::DataRead;
    Word value = 0;      ///< data for writes
};

} // namespace firefly

#endif // FIREFLY_CACHE_MEM_REF_HH
