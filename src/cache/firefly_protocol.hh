/**
 * @file
 * The Firefly coherence protocol (the paper's primary contribution).
 *
 * Each line carries Dirty and Shared tag bits (paper Figure 3, giving
 * states Invalid / Valid / Dirty / Shared here).  The key idea is
 * *conditional write-through*: writes to non-shared lines use
 * write-back (no bus traffic until victimisation); writes to shared
 * lines are written through, simultaneously updating main memory and
 * every other cache holding the line.  Sharing is detected
 * dynamically: every bus operation returns the wired-OR MShared
 * signal, and the initiator sets its Shared tag from it - including
 * on write-throughs, so when a datum stops being shared the last
 * write-through clears the Shared tag and the cache reverts to
 * write-back ("last-sharer reversion").
 *
 * Distinctive properties, all exercised by the tests:
 *  - no prearranged ownership: any processor may write a shared
 *    location at any time;
 *  - shared lines are always clean, so multiple caches may drive
 *    identical read data simultaneously;
 *  - a dirty line is always exclusive; when another cache reads it,
 *    the owner supplies the data, memory captures it, and the owner's
 *    state drops to Shared;
 *  - longword write misses skip the fill read: the cache simply
 *    writes through and installs the line clean (4-byte lines make
 *    the write cover the whole line).
 */

#ifndef FIREFLY_CACHE_FIREFLY_PROTOCOL_HH
#define FIREFLY_CACHE_FIREFLY_PROTOCOL_HH

#include "cache/protocol.hh"

namespace firefly
{

/** Conditional write-through update protocol (paper Section 5.1). */
class FireflyProtocol : public CoherenceProtocol
{
  public:
    const char *name() const override { return "Firefly"; }

    WriteHitAction writeHit(const CacheLine &line) const override;
    WriteMissAction writeMiss(unsigned line_words) const override;
    LineState fillState(bool mshared) const override;
    LineState afterWriteThrough(bool mshared) const override;
    bool fillsUpdateMemory() const override { return true; }

    SnoopReply snoopProbe(const CacheLine &line,
                          const MBusTransaction &txn) const override;
    void snoopApply(CacheLine &line, const MBusTransaction &txn,
                    unsigned line_words) const override;
};

} // namespace firefly

#endif // FIREFLY_CACHE_FIREFLY_PROTOCOL_HH
