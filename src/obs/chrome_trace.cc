#include "obs/chrome_trace.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace firefly::obs
{

namespace
{

using firefly::jsonEscape;

/** One cycle is 100 ns = 0.1 us; render "ts" exactly as cycles/10. */
std::string
microseconds(Cycle cycles)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%" PRIu64, cycles / 10,
                  cycles % 10);
    return buf;
}

} // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : out(&os)
{
    *out << "[\n";
}

ChromeTraceSink::ChromeTraceSink(const std::string &path)
    : owned(path), out(&owned)
{
    if (!owned)
        fatal("cannot open trace output file '%s'", path.c_str());
    *out << "[\n";
}

ChromeTraceSink::~ChromeTraceSink()
{
    close();
}

unsigned
ChromeTraceSink::trackId(const std::string &track)
{
    const auto it = tracks.find(track);
    if (it != tracks.end())
        return it->second;
    const unsigned tid = tracks.size();
    tracks.emplace(track, tid);
    // Name the track so Perfetto shows "cache0" instead of a number.
    if (count++)
        *out << ",\n";
    *out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,"
         << "\"pid\":0,\"tid\":" << tid << ",\"args\":{\"name\":\""
         << jsonEscape(track) << "\"}}";
    return tid;
}

void
ChromeTraceSink::event(const TraceEvent &ev)
{
    if (closed)
        return;
    // A new simulated machine restarts its clock at zero; append its
    // events after everything already written so per-track timestamps
    // stay nondecreasing.
    if (ev.when + offset < lastWhen)
        offset = lastWhen - ev.when;
    const Cycle shifted = ev.when + offset;
    lastWhen = shifted;
    writeRecord(ev, shifted);
}

void
ChromeTraceSink::writeRecord(const TraceEvent &ev, Cycle shifted)
{
    const unsigned tid = trackId(ev.track);
    if (count++)
        *out << ",\n";
    *out << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"cat\":\""
         << jsonEscape(ev.category) << "\",\"ph\":\""
         << static_cast<char>(ev.kind) << "\",\"ts\":"
         << microseconds(shifted) << ",\"pid\":0,\"tid\":" << tid;
    if (ev.kind == EventKind::Instant)
        *out << ",\"s\":\"t\"";  // thread-scoped instant
    if (!ev.args.empty()) {
        *out << ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : ev.args) {
            if (!first)
                *out << ",";
            first = false;
            *out << "\"" << jsonEscape(key) << "\":\""
                 << jsonEscape(value) << "\"";
        }
        *out << "}";
    }
    *out << "}";
}

void
ChromeTraceSink::flush()
{
    out->flush();
}

void
ChromeTraceSink::close()
{
    if (closed)
        return;
    closed = true;
    *out << "\n]\n";
    out->flush();
}

} // namespace firefly::obs
