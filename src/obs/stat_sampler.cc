#include "obs/stat_sampler.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace firefly::obs
{

StatSampler::StatSampler(Simulator &sim, Cycle period)
    : _period(period)
{
    if (period == 0)
        fatal("StatSampler period must be at least one cycle");
    sim.addClocked(this, Phase::Device);
}

void
StatSampler::addStat(const StatGroup &group, const std::string &stat,
                     Mode mode, std::string label)
{
    if (!group.has(stat)) {
        fatal("StatSampler: no stat '%s' in group '%s'", stat.c_str(),
              group.name().c_str());
    }
    if (label.empty())
        label = group.name() + "." + stat;
    addProbe(std::move(label),
             [&group, stat] { return group.get(stat); }, mode);
}

void
StatSampler::addProbe(std::string label, std::function<double()> fn,
                      Mode mode)
{
    if (!times.empty())
        fatal("StatSampler: add channels before the simulation runs");
    channels.push_back({std::move(label), std::move(fn), mode, 0.0, {}});
}

Cycle
StatSampler::nextWake(Cycle now) const
{
    // Samples land on period boundaries only.
    const Cycle rem = now % _period;
    return rem == 0 ? now : now + (_period - rem);
}

void
StatSampler::tick(Cycle now)
{
    if (now % _period != 0)
        return;
    times.push_back(now);
    for (auto &ch : channels) {
        const double value = ch.fn();
        if (ch.mode == Mode::Delta) {
            ch.values.push_back(value - ch.previous);
            ch.previous = value;
        } else {
            ch.values.push_back(value);
        }
    }
}

const std::vector<double> &
StatSampler::series(std::size_t channel) const
{
    return channels.at(channel).values;
}

void
StatSampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &ch : channels)
        os << "," << ch.label;
    os << "\n";
    for (std::size_t row = 0; row < times.size(); ++row) {
        os << times[row];
        for (const auto &ch : channels)
            os << "," << statNumber(ch.values[row]);
        os << "\n";
    }
}

void
StatSampler::writeJson(std::ostream &os) const
{
    os << "{\"period\":" << _period << ",\"cycles\":[";
    for (std::size_t i = 0; i < times.size(); ++i)
        os << (i ? "," : "") << times[i];
    os << "],\"series\":{";
    for (std::size_t c = 0; c < channels.size(); ++c) {
        if (c)
            os << ",";
        os << jsonQuote(channels[c].label) << ":[";
        const auto &values = channels[c].values;
        for (std::size_t i = 0; i < values.size(); ++i)
            os << (i ? "," : "") << statNumber(values[i]);
        os << "]";
    }
    os << "}}\n";
}

} // namespace firefly::obs
