/**
 * @file
 * Periodic stat sampling: time series the end-of-run dump cannot show.
 *
 * The end-of-run StatGroup dump answers "how much, in total" - the
 * paper's Table 2.  The sampler answers "when": registered as a
 * Clocked in Phase::Device, it snapshots selected stats every
 * `period` cycles into an in-memory series, from which CSV (one row
 * per sample, ready for any plotting tool) or JSON (columnar) can be
 * written.  Bus-utilisation-vs-time and miss-rate-vs-time plots fall
 * out directly.
 *
 * Channels are either a (StatGroup, stat-name) pair - counters and
 * formulas both work, so "load" and "miss_rate" are one-liners - or
 * an arbitrary std::function<double()>.  Most cumulative counters are
 * more useful as per-interval deltas (bus busy cycles per sample
 * window = utilisation-vs-time); Mode::Delta does that subtraction.
 *
 * Sampling only reads; it cannot perturb simulated behaviour.  The
 * cadence tradeoff: a small period gives fine-grained curves but a
 * sample every period cycles (memory grows linearly); 10k cycles
 * (1 ms simulated) gives 120 points for the standard 0.12 s runs.
 */

#ifndef FIREFLY_OBS_STAT_SAMPLER_HH
#define FIREFLY_OBS_STAT_SAMPLER_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace firefly::obs
{

/** Snapshots selected stats every `period` cycles. */
class StatSampler : public Clocked
{
  public:
    enum class Mode
    {
        Level,  ///< record the stat's current value
        Delta,  ///< record the change since the previous sample
    };

    StatSampler(Simulator &sim, Cycle period);

    /** Sample `group.get(stat)`; label defaults to "group.stat". */
    void addStat(const StatGroup &group, const std::string &stat,
                 Mode mode = Mode::Level, std::string label = {});

    /** Sample an arbitrary probe. */
    void addProbe(std::string label, std::function<double()> fn,
                  Mode mode = Mode::Level);

    void tick(Cycle now) override;
    Cycle nextWake(Cycle now) const override;

    Cycle period() const { return _period; }
    std::size_t sampleCount() const { return times.size(); }
    std::size_t channelCount() const { return channels.size(); }
    const std::vector<Cycle> &sampleTimes() const { return times; }
    const std::vector<double> &series(std::size_t channel) const;

    /** One row per sample: "cycle,label1,label2,...". */
    void writeCsv(std::ostream &os) const;
    /** Columnar: {"period":N,"cycles":[...],"series":{label:[...]}}. */
    void writeJson(std::ostream &os) const;

  private:
    struct Channel
    {
        std::string label;
        std::function<double()> fn;
        Mode mode;
        double previous = 0.0;
        std::vector<double> values;
    };

    Cycle _period;
    std::vector<Channel> channels;
    std::vector<Cycle> times;
};

} // namespace firefly::obs

#endif // FIREFLY_OBS_STAT_SAMPLER_HH
