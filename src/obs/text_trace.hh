/**
 * @file
 * Human-readable text sink, gated by the debug-trace flags.
 *
 * This is what finally drives the sim/logging.hh flag machinery: an
 * event is printed only if its category's flag is enabled (via
 * setDebugFlags("MBus,Cache"), a bench's --debug-flags option, or the
 * FIREFLY_DEBUG environment variable).  Output looks like
 *
 *     [Cache] 1204 cache0: line 0x1f40 Shared->Dirty (write-hit)
 *
 * i.e. flag, cycle, track, event, detail - greppable and diffable.
 */

#ifndef FIREFLY_OBS_TEXT_TRACE_HH
#define FIREFLY_OBS_TEXT_TRACE_HH

#include <ostream>

#include "obs/trace.hh"

namespace firefly::obs
{

/** Prints flag-enabled events as text lines (default: stderr). */
class TextTraceSink : public TraceSink
{
  public:
    /** Write to stderr. */
    TextTraceSink();
    /** Write to a caller-owned stream. */
    explicit TextTraceSink(std::ostream &os);

    void event(const TraceEvent &ev) override;
    void flush() override;

    std::uint64_t linesPrinted() const { return lines; }

  private:
    std::ostream *out;  ///< nullptr = stderr via std::fputs
    std::uint64_t lines = 0;
};

} // namespace firefly::obs

#endif // FIREFLY_OBS_TEXT_TRACE_HH
