/**
 * @file
 * Chrome trace-event JSON sink.
 *
 * Writes the attached event stream in the Chrome/Perfetto trace-event
 * JSON array format: open the file at https://ui.perfetto.dev (or
 * chrome://tracing) and every component's track - one per CPU, cache,
 * the bus, each device - renders as its own timeline with duration
 * slices (B/E pairs) and instant markers.
 *
 * Timestamps: the trace-event "ts" field is microseconds; one MBus
 * cycle is 100 ns, so ts = cycle / 10.  Events must be written in
 * nondecreasing timestamp order per track; simulation time only moves
 * forward, so that holds naturally within one run.  When several
 * simulated machines share one sink (a bench sweeping configurations)
 * each new machine's cycle counter restarts at zero; the sink detects
 * time going backwards and concatenates the runs on the output
 * timeline instead of interleaving them.
 */

#ifndef FIREFLY_OBS_CHROME_TRACE_HH
#define FIREFLY_OBS_CHROME_TRACE_HH

#include <fstream>
#include <map>
#include <ostream>
#include <string>

#include "obs/trace.hh"

namespace firefly::obs
{

/** Streams events to a trace-event JSON array. */
class ChromeTraceSink : public TraceSink
{
  public:
    /** Write to a caller-owned stream (tests). */
    explicit ChromeTraceSink(std::ostream &os);
    /** Write to a file; fatal() if it cannot be opened. */
    explicit ChromeTraceSink(const std::string &path);
    ~ChromeTraceSink() override;

    void event(const TraceEvent &ev) override;
    void flush() override;

    /** Finalise the JSON array.  Implied by destruction. */
    void close();

    std::uint64_t eventCount() const { return count; }

  private:
    unsigned trackId(const std::string &track);
    void writeRecord(const TraceEvent &ev, Cycle shifted);

    std::ofstream owned;
    std::ostream *out;
    bool closed = false;
    std::uint64_t count = 0;

    /** track name -> trace-event tid, in order of first appearance. */
    std::map<std::string, unsigned> tracks;

    /** Concatenation of multiple simulator lifetimes (see above). */
    Cycle offset = 0;
    Cycle lastWhen = 0;
};

} // namespace firefly::obs

#endif // FIREFLY_OBS_CHROME_TRACE_HH
