#include "obs/text_trace.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace firefly::obs
{

TextTraceSink::TextTraceSink() : out(nullptr)
{
}

TextTraceSink::TextTraceSink(std::ostream &os) : out(&os)
{
}

void
TextTraceSink::event(const TraceEvent &ev)
{
    if (!debugFlagSet(ev.category))
        return;
    ++lines;

    std::ostringstream line;
    line << "[" << ev.category << "] " << ev.when << " " << ev.track
         << ": ";
    if (ev.kind == EventKind::Begin)
        line << "begin ";
    else if (ev.kind == EventKind::End)
        line << (ev.name.empty() ? "end" : "end ");
    line << ev.name;
    if (!ev.args.empty()) {
        line << " (";
        bool first = true;
        for (const auto &[key, value] : ev.args) {
            if (!first)
                line << " ";
            first = false;
            line << key << "=" << value;
        }
        line << ")";
    }
    line << "\n";

    if (out)
        *out << line.str();
    else
        std::fputs(line.str().c_str(), stderr);
}

void
TextTraceSink::flush()
{
    if (out)
        out->flush();
}

} // namespace firefly::obs
