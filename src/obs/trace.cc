#include "obs/trace.hh"

#include <cstdio>

namespace firefly::obs
{

TraceSink::~TraceSink() = default;

void
TraceSink::begin(Cycle when, const char *category, std::string track,
                 std::string name, TraceEvent::Args args)
{
    event({when, EventKind::Begin, category, std::move(track),
           std::move(name), std::move(args)});
}

void
TraceSink::end(Cycle when, const char *category, std::string track,
               std::string name)
{
    event({when, EventKind::End, category, std::move(track),
           std::move(name), {}});
}

void
TraceSink::instant(Cycle when, const char *category, std::string track,
                   std::string name, TraceEvent::Args args)
{
    event({when, EventKind::Instant, category, std::move(track),
           std::move(name), std::move(args)});
}

void
TeeSink::event(const TraceEvent &ev)
{
    for (auto *sink : sinks)
        sink->event(ev);
}

void
TeeSink::flush()
{
    for (auto *sink : sinks)
        sink->flush();
}

std::string
hexAddr(Addr addr)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", addr);
    return buf;
}

} // namespace firefly::obs
