/**
 * @file
 * Structured event tracing: the flight recorder's front end.
 *
 * Components emit typed, timestamped TraceEvents into a TraceSink.
 * Exactly one (possibly compound) sink is attached per *thread*;
 * emission sites are written as
 *
 *     if (auto *ts = obs::traceSink())
 *         ts->instant(sim.now(), obs::kCatMBus, "mbus", "MShared");
 *
 * so that with no sink attached the whole site compiles to a single
 * inlined null-check and none of the event's strings are ever built.
 * Sinks are pure observers - they receive copies of simulator state
 * and can feed nothing back - so attaching one cannot perturb
 * simulated behaviour (the determinism regression runs with and
 * without a sink and must produce identical statistics).
 *
 * The sink pointer (and the published timestamp below) is
 * thread_local: each simulation thread observes only the sink it
 * attached itself, so independent simulations on harness worker
 * threads (src/harness/) neither share nor race on observability
 * state.  A freshly spawned worker starts with no sink - the
 * zero-cost case - and sink objects themselves are not thread-safe,
 * so a sink must only ever be attached on the thread that uses it.
 *
 * Event categories double as the debug-trace flag names understood by
 * sim/logging.hh (and the FIREFLY_DEBUG environment variable); the
 * text sink filters on them, the Chrome sink records them as "cat".
 *
 * Components that have no Simulator reference (the Topaz scheduler)
 * timestamp events with obs::traceNow(), which the Simulator
 * publishes at the start of every cycle.
 */

#ifndef FIREFLY_OBS_TRACE_HH
#define FIREFLY_OBS_TRACE_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace firefly::obs
{

/** Event categories == debug-flag names (see sim/logging.hh). */
inline constexpr const char *kCatMBus = "MBus";
inline constexpr const char *kCatCache = "Cache";
inline constexpr const char *kCatCpu = "Cpu";
inline constexpr const char *kCatDma = "Dma";
inline constexpr const char *kCatSched = "Sched";
inline constexpr const char *kCatRpc = "Rpc";
inline constexpr const char *kCatCheck = "Check";
inline constexpr const char *kCatFault = "Fault";

/** Event shape, following the Chrome trace-event phases. */
enum class EventKind : char
{
    Begin = 'B',    ///< start of a duration slice on a track
    End = 'E',      ///< end of the innermost open slice on a track
    Instant = 'i',  ///< a point event
};

/** One structured event. */
struct TraceEvent
{
    using Args = std::vector<std::pair<std::string, std::string>>;

    Cycle when = 0;              ///< bus cycle of the event
    EventKind kind = EventKind::Instant;
    const char *category = "";   ///< kCat* / debug-flag name
    std::string track;           ///< one timeline per component
    std::string name;            ///< what happened
    Args args;                   ///< key/value detail
};

/** Where events go.  Implementations must not mutate simulator state. */
class TraceSink
{
  public:
    virtual ~TraceSink();

    virtual void event(const TraceEvent &ev) = 0;
    virtual void flush() {}

    // Convenience emitters (build the TraceEvent and forward it).
    void begin(Cycle when, const char *category, std::string track,
               std::string name, TraceEvent::Args args = {});
    void end(Cycle when, const char *category, std::string track,
             std::string name = {});
    void instant(Cycle when, const char *category, std::string track,
                 std::string name, TraceEvent::Args args = {});
};

/** Broadcasts every event to several sinks (e.g. Chrome + text). */
class TeeSink : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks.push_back(sink); }

    void event(const TraceEvent &ev) override;
    void flush() override;

  private:
    std::vector<TraceSink *> sinks;
};

namespace detail
{
inline thread_local TraceSink *g_sink = nullptr;
inline thread_local Cycle g_now = 0;
} // namespace detail

/** This thread's attached sink, or nullptr (the zero-cost case). */
inline TraceSink *
traceSink()
{
    return detail::g_sink;
}

/** Attach (or with nullptr detach) this thread's sink. */
inline void
setTraceSink(TraceSink *sink)
{
    detail::g_sink = sink;
}

/** Timestamp source for components without a Simulator reference. */
inline Cycle
traceNow()
{
    return detail::g_now;
}

/** Called by the Simulator at the start of every cycle. */
inline void
publishTraceNow(Cycle now)
{
    detail::g_now = now;
}

/** RAII attachment; restores the previous sink on destruction. */
class ScopedTraceSink
{
  public:
    explicit ScopedTraceSink(TraceSink *sink) : prev(traceSink())
    {
        setTraceSink(sink);
    }

    ~ScopedTraceSink()
    {
        if (TraceSink *s = traceSink())
            s->flush();
        setTraceSink(prev);
    }

    ScopedTraceSink(const ScopedTraceSink &) = delete;
    ScopedTraceSink &operator=(const ScopedTraceSink &) = delete;

  private:
    TraceSink *prev;
};

/** Render an address the way every sink and test expects ("0x1a4"). */
std::string hexAddr(Addr addr);

} // namespace firefly::obs

#endif // FIREFLY_OBS_TRACE_HH
